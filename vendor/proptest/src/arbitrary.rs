//! `any::<T>()` — default strategies for primitive types.

use core::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

// Floats are drawn from raw bits so NaN, infinities, and subnormals all
// occur — matching real proptest's any::<f32>() coverage of edge cases.
impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u32())
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::from_raw(rng.next_u64())
    }
}
