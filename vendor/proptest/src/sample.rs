//! Index and selection strategies (`prop::sample`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An index into a runtime-sized collection: drawn as raw entropy, mapped
/// into `0..len` on use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Index(u64);

impl Index {
    /// Wraps raw entropy.
    pub fn from_raw(raw: u64) -> Self {
        Index(raw)
    }

    /// Maps this index into `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.0 % len as u64) as usize
    }
}

/// Uniformly selects one of the given options.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "cannot select from an empty list");
    Select { options }
}

/// The strategy returned by [`select`].
#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].clone()
    }
}
