//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API the PNM workspace uses —
//! [`Strategy`], [`arbitrary::any`], range/tuple/collection strategies,
//! `prop_oneof!`, `prop::sample`, and the [`proptest!`] test-runner macro —
//! on top of a deterministic internal RNG. Unlike real proptest there is
//! **no shrinking**: a failing case reports its case number and RNG stream
//! so it can be re-run, but is not minimized. Case streams are
//! deterministic per (test path, case index), so failures reproduce across
//! runs.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{
        Config as ProptestConfig, TestCaseError, TestCaseResult, TestRng,
    };
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced access mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Rejects the current case (it is re-drawn, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let test_path = concat!(module_path!(), "::", stringify!($name));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            let mut stream: u64 = 0;
            while passed < config.cases {
                let mut rng = $crate::test_runner::TestRng::deterministic(test_path, stream);
                stream += 1;
                $(let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);)+
                let outcome: $crate::test_runner::TestCaseResult = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(why),
                    ) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.cases.saturating_mul(16) + 1024,
                            "proptest `{test_path}`: too many rejected cases ({why})"
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest `{test_path}` failed at case {passed} \
                             (rng stream {}): {msg}",
                            stream - 1
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()); $($rest)*);
    };
}
