//! Collection strategies (`proptest::collection`).

use core::ops::{Range, RangeInclusive};
use std::collections::BTreeSet;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification for generated collections (inclusive bounds).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo {
            return self.lo;
        }
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates `Vec`s of `element` values with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generates `BTreeSet`s of `element` values with a target size drawn from
/// `size`. If the element domain is too small to reach the target size, the
/// set is as large as the domain permits.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_set`].
#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * 50 + 100 {
            out.insert(self.element.new_value(rng));
            attempts += 1;
        }
        out
    }
}
