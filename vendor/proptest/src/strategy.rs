//! The [`Strategy`] trait and combinators (map, union, ranges, tuples).

use core::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Generates random values of an output type. Object safe, so strategies
/// can be boxed for heterogeneous unions (`prop_oneof!`).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as f64;
                let hi = self.end as f64;
                (lo + rng.unit_f64() * (hi - lo)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                assert!(lo <= hi, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                (lo + unit * (hi - lo)) as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
