//! Deterministic case generation and the error vocabulary of `proptest!`.

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's assumptions did not hold; draw a fresh case instead.
    Reject(&'static str),
    /// An assertion failed; the whole property fails.
    Fail(String),
}

/// Result type of one property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of passing cases required.
    pub cases: u32,
}

impl Config {
    /// A configuration requiring `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// The RNG driving value generation: SplitMix64 seeded from the test path
/// and case stream, so every case is reproducible without stored state.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for a given test path and case stream index.
    pub fn deterministic(test_path: &str, stream: u64) -> Self {
        // FNV-1a over the path, mixed with the stream index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw below `n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
