//! Offline stand-in for the `rand` crate.
//!
//! The PNM workspace is built in environments without network access to a
//! crates registry, so the subset of `rand`'s API the workspace actually
//! uses is provided here: [`Rng`] (`next_u32`/`next_u64`), [`RngExt`]
//! (`random_range`, `fill`), [`SeedableRng::seed_from_u64`], and a
//! deterministic [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64).
//!
//! Streams are deterministic in the seed, which is all the simulations
//! require; no claim of crypto-strength randomness is made (the workspace
//! derives key material through HMAC, not through this RNG).

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit words. Object safe (`&mut dyn Rng`).
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Types that can be sampled uniformly from a range by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Per-type uniform sampling. The single blanket [`SampleRange`] impl below
/// ties a range's element type to the sampled type, which is what lets float
/// literals in expressions like `x + rng.random_range(-6.0..6.0)` infer `f32`
/// from context (mirroring upstream rand's `SampleUniform` design).
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Draws uniformly from `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

#[inline]
fn sample_u64_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift bounded sampling (Lemire); bias is at most 2^-64 per
    // draw, negligible for simulation workloads.
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(sample_u64_below(rng, span) as $t)
            }

            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(sample_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (lo as f64 + unit * (hi as f64 - lo as f64)) as $t
            }

            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                // 2^53 equally spaced points including both endpoints.
                let unit =
                    (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                (lo as f64 + unit * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Byte buffers fillable by [`RngExt::fill`].
pub trait Fill {
    /// Fills `self` with random data from `rng`.
    fn fill_from<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let mut chunks = self.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let last = rng.next_u64().to_le_bytes();
            rest.copy_from_slice(&last[..rest.len()]);
        }
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.as_mut_slice().fill_from(rng);
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Samples a value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Fills `dest` with random bytes.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256**.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, the expansion recommended by
            // the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3u16..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0usize..=4);
            assert!(w <= 4);
            let f = rng.random_range(-6.0f64..6.0);
            assert!((-6.0..6.0).contains(&f));
        }
    }

    #[test]
    fn fill_covers_buffer() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 16];
        rng.fill(&mut buf);
        assert_ne!(buf, [0u8; 16]);
        let mut slice = vec![0u8; 13];
        rng.fill(&mut slice[..]);
        assert!(slice.iter().any(|&b| b != 0));
    }

    #[test]
    fn dyn_rng_usable() {
        let mut rng = StdRng::seed_from_u64(3);
        let dynr: &mut dyn Rng = &mut rng;
        let _ = dynr.next_u64();
        let _ = dynr.next_u32();
    }
}
