//! Offline stand-in for `serde_derive`.
//!
//! Emits placeholder impls of the stub `serde` traits (whose methods all
//! have default bodies), so `#[derive(Serialize, Deserialize)]` compiles
//! without the real proc-macro stack (`syn`/`quote` are unavailable in the
//! registry-less build environment). Only non-generic types are supported,
//! which covers every derived type in the workspace.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the type a derive is attached to.
///
/// Walks past outer attributes and visibility to the `struct`/`enum`
/// keyword; the next identifier is the type name. Panics (a compile error
/// in the deriving crate) on generic types, which this stub does not
/// support.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                        panic!(
                            "the vendored serde_derive stub cannot derive for generic type `{name}`"
                        );
                    }
                    return name.to_string();
                }
                panic!("expected a type name after `{kw}`");
            }
        }
    }
    panic!("derive input contained no struct/enum definition");
}

/// Derives the stub `serde::Serialize` (placeholder impl).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("#[automatically_derived] impl ::serde::ser::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derives the stub `serde::Deserialize` (placeholder impl).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("#[automatically_derived] impl<'de> ::serde::de::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
