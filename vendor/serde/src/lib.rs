//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its result and
//! scenario types and provides a few manual byte-oriented impls, but no
//! crate in the tree performs format serialization (there is no
//! `serde_json` dependency). This stub provides exactly the trait surface
//! those impls and derives need to compile in a registry-less build
//! environment: blanket-defaulted `Serialize`/`Deserialize` methods, a
//! byte/scalar `Serializer` contract, and `de::Error::custom`.
//!
//! If a future PR adds real persistence it should either vendor full serde
//! or extend this stub with a concrete serializer.

#![forbid(unsafe_code)]

use core::fmt::Display;

/// Serialization backends.
pub mod ser {
    use super::Display;

    /// Errors produced by a [`Serializer`].
    pub trait Error: Sized {
        /// Builds an error from a display-able message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A minimal serializer contract: enough for the workspace's manual
    /// byte-oriented impls and for derived placeholder impls.
    pub trait Serializer: Sized {
        /// Output of a successful serialization.
        type Ok;
        /// Error type.
        type Error: Error;

        /// Serializes a byte string.
        fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;

        /// Serializes a unit value (the derived-impl placeholder).
        fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Types that can be serialized.
    ///
    /// The default method body serializes a unit placeholder; `#[derive(Serialize)]`
    /// from the companion `serde_derive` stub emits an empty impl that keeps
    /// this default, while manual impls (e.g. `MacTag`) override it.
    pub trait Serialize {
        /// Serializes `self` into `serializer`.
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_unit()
        }
    }

    impl<T: Serialize + ?Sized> Serialize for &T {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            (**self).serialize(serializer)
        }
    }

    impl Serialize for Vec<u8> {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_bytes(self)
        }
    }
}

/// Deserialization backends.
pub mod de {
    use super::Display;

    /// Errors produced by a [`Deserializer`].
    pub trait Error: Sized {
        /// Builds an error from a display-able message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A minimal deserializer contract.
    pub trait Deserializer<'de>: Sized {
        /// Error type.
        type Error: Error;
    }

    /// Types that can be deserialized.
    ///
    /// The default method body reports "unsupported": no workspace code
    /// path actually drives deserialization (there is no format crate);
    /// the bound only needs to typecheck.
    pub trait Deserialize<'de>: Sized {
        /// Deserializes a value from `deserializer`.
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            let _ = deserializer;
            Err(D::Error::custom(
                "deserialization is not supported by the vendored serde stub",
            ))
        }
    }

    impl<'de, T> Deserialize<'de> for Vec<T> {}
}

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
