//! Offline stand-in for the `criterion` statistical benchmark harness.
//!
//! The container image has no crates-io access, so this crate provides the
//! subset of criterion's API the workspace benches use: `criterion_group!`/
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups with
//! `sample_size`/`throughput`/`bench_with_input`, and `Bencher::iter`/
//! `iter_batched`. Timing is a plain wall-clock mean over a calibrated
//! iteration count — no warm-up statistics, outlier analysis, or HTML
//! reports. `--test` (what CI passes via `cargo bench -- --test`) runs each
//! routine once without timing, exactly like upstream.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one timed measurement.
const TARGET_MEASURE: Duration = Duration::from_millis(40);

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo/criterion pass that change nothing here.
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                other if !other.starts_with('-') => filter = Some(other.to_string()),
                _ => {}
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    fn wants(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }

    fn run_one(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if !self.wants(id) {
            return;
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            mean_ns: 0.0,
        };
        f(&mut b);
        if self.test_mode {
            println!("test {id} ... ok");
        } else {
            println!("{id:<56} time: {:>12.1} ns/iter", b.mean_ns);
        }
    }

    /// Benchmarks a single routine.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        self.run_one(&id.0, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing a prefix and settings.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness calibrates iteration
    /// counts by time instead of a fixed sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput rates are not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks a routine under `group/id`.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id().0);
        self.c.run_one(&id, &mut f);
        self
    }

    /// Benchmarks a routine that borrows a fixed input.
    pub fn bench_with_input<I, In, F>(&mut self, id: I, input: &In, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        In: ?Sized,
        F: FnMut(&mut Bencher, &In),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id().0);
        self.c.run_one(&id, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Just the parameter (the group provides the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion accepted by `bench_function`-style methods (`&str` or
/// [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Units for [`BenchmarkGroup::throughput`].
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Items processed per iteration.
    Elements(u64),
}

/// How `iter_batched` groups setup outputs; all variants behave alike here.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to benchmark closures to time the routine.
pub struct Bencher {
    test_mode: bool,
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, keeping its output alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Calibrate: grow the iteration count until one measurement takes
        // long enough to dominate timer overhead.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_MEASURE || iters >= 1 << 24 {
                self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            iters = iters.saturating_mul(if elapsed.is_zero() {
                16
            } else {
                (TARGET_MEASURE.as_nanos() / elapsed.as_nanos().max(1) + 1) as u64
            });
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_MEASURE || iters >= 1 << 20 {
                self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            iters = iters.saturating_mul(if elapsed.is_zero() {
                16
            } else {
                (TARGET_MEASURE.as_nanos() / elapsed.as_nanos().max(1) + 1) as u64
            });
        }
    }
}

/// Collects benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
