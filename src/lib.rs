//! # PNM — Catching "Moles" in Sensor Networks
//!
//! A from-scratch Rust reproduction of *Catching "Moles" in Sensor
//! Networks* (Ye, Yang, Liu — ICDCS 2007): the **Probabilistic Nested
//! Marking** traceback scheme that locates colluding compromised sensor
//! nodes ("moles") injecting bogus traffic, plus every substrate the paper
//! depends on.
//!
//! This umbrella crate re-exports the workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`crypto`] | `pnm-crypto` | SHA-256, HMAC, truncated MACs, key store, anonymous IDs |
//! | [`wire`] | `pnm-wire` | reports `M = E\|L\|T`, marks, packets, canonical encodings |
//! | [`net`] | `pnm-net` | topologies, routing, Mica2 radio/energy, discrete-event simulator |
//! | [`core`] | `pnm-core` | the five marking schemes, sink verification, route reconstruction, mole locator |
//! | [`adversary`] | `pnm-adversary` | the seven colluding attacks, source/forwarding moles |
//! | [`analysis`] | `pnm-analysis` | the §6.1 analytical model and statistics |
//! | [`sim`] | `pnm-sim` | figure regeneration, attack matrix, latency experiments |
//! | [`service`] | `pnm-service` | sharded concurrent sink service: backpressure, drain, supervision |
//! | [`gateway`] | `pnm-gateway` | multi-tenant TCP/UDS ingestion front-end over the wire format |
//!
//! # Quickstart
//!
//! ```
//! use pnm::core::{MoleLocator, NodeContext, ProbabilisticNestedMarking, MarkingScheme, VerifyMode};
//! use pnm::crypto::KeyStore;
//! use pnm::wire::{Location, NodeId, Packet, Report};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // A 20-hop forwarding path; a source mole injects bogus reports.
//! let keys = KeyStore::derive_from_master(b"deployment", 20);
//! let scheme = ProbabilisticNestedMarking::paper_default(20);
//! let mut sink = MoleLocator::new(keys.clone(), VerifyMode::Nested);
//! let mut rng = StdRng::seed_from_u64(1);
//!
//! for seq in 0..200u64 {
//!     let report = Report::new(format!("bogus-{seq}").into_bytes(), Location::new(0.0, 0.0), seq);
//!     let mut pkt = Packet::new(report);
//!     for hop in 0..20u16 {
//!         let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
//!         scheme.mark(&ctx, &mut pkt, &mut rng);
//!     }
//!     sink.ingest(&pkt);
//! }
//! // The sink pins the most-upstream forwarder: the mole is its neighbor.
//! assert_eq!(sink.unequivocal_source(), Some(NodeId(0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pnm_adversary as adversary;
pub use pnm_analysis as analysis;
pub use pnm_baselines as baselines;
pub use pnm_core as core;
pub use pnm_crypto as crypto;
pub use pnm_filter as filter;
pub use pnm_gateway as gateway;
pub use pnm_net as net;
pub use pnm_service as service;
pub use pnm_sim as sim;
pub use pnm_wire as wire;
