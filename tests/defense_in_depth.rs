//! The full defensive stack in one scenario: SEF en-route filtering +
//! traffic classification + PNM traceback + replay defense + quarantine.
//!
//! This is the system a downstream user would actually deploy; the test
//! asserts every layer does its job and the layers compose.

use pnm::core::{
    quarantine_set, DuplicateSuppressor, IsolationPolicy, MarkingScheme, MoleLocator, NodeContext,
    ProbabilisticNestedMarking, QuarantineFilter, VerifyMode,
};
use pnm::crypto::KeyStore;
use pnm::filter::{en_route_check, forge_report, sink_check, FilterDecision, KeyPool, KeyRing};
use pnm::wire::{Location, NodeId, Packet, Report};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: u16 = 10;
const T: usize = 5;

#[test]
fn layered_defense_end_to_end() {
    // --- provisioning ---
    let keys = KeyStore::derive_from_master(b"did-deployment", N + 1);
    let pool = KeyPool::new(b"did-sef", 10, 8);
    let rings: Vec<KeyRing> = (0..N).map(|i| pool.assign_ring(3000 + i, 4)).collect();
    let scheme = ProbabilisticNestedMarking::paper_default(N as usize);
    let mut rng = StdRng::seed_from_u64(99);

    // The mole compromised one node (one partition) plus its PNM key; it
    // sits just upstream of forwarder 0 and injects forged reports.
    let mole_ring = pool.assign_ring(4000, 4);
    let mole_pnm_id = NodeId(N);

    let mut sink_locator = MoleLocator::new(keys.clone(), VerifyMode::Nested);
    let mut dup = DuplicateSuppressor::new(512);

    let mut filtered = 0usize;
    let mut replay_suppressed = 0usize;
    let mut delivered = 0usize;
    let injections = 600usize;

    let mut last_report: Option<Report> = None;
    for seq in 0..injections {
        // Every 10th injection is a lazy replay of the previous report —
        // the replay layer must stop it at the first hop.
        let report = if seq % 10 == 9 {
            last_report.clone().expect("previous exists")
        } else {
            let r = Report::new(
                format!("forged-{seq}").into_bytes(),
                Location::new(500.0, 500.0),
                seq as u64,
            );
            last_report = Some(r.clone());
            r
        };
        let endorsed = forge_report(&report, &[&mole_ring], T, 10, &mut rng);

        // Hop 0 runs duplicate suppression (en-route replay defense).
        if !dup.observe(&report.to_bytes()) {
            replay_suppressed += 1;
            continue;
        }

        let mut pkt = Packet::new(report);
        let mut dropped = false;
        for hop in 0..N {
            // Layer 1: SEF endorsement check.
            if en_route_check(&rings[hop as usize], &endorsed, T) == FilterDecision::DropForged {
                filtered += 1;
                dropped = true;
                break;
            }
            // Layer 2: PNM marking.
            let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
            scheme.mark(&ctx, &mut pkt, &mut rng);
        }
        if dropped {
            continue;
        }
        delivered += 1;
        // Layer 3: the sink flags the forgery (exhaustive SEF check) and
        // feeds traceback.
        assert!(!sink_check(&pool, &endorsed, T), "forgery must not pass");
        sink_locator.ingest(&pkt);
    }

    // Every layer did real work.
    assert!(
        replay_suppressed >= injections / 10 - 1,
        "{replay_suppressed}"
    );
    assert!(filtered > delivered, "filtering carried most of the load");
    assert!(delivered > 10, "but survivors exist for traceback");

    // Layer 4: traceback pinned the mole's first forwarder…
    let loc = sink_locator.localize();
    assert_eq!(
        sink_locator.unequivocal_source(),
        Some(NodeId(0)),
        "localization: {loc:?}"
    );

    // …and layer 5 quarantines the neighborhood containing the true mole.
    let q = quarantine_set(&loc, IsolationPolicy::OneHopNeighborhood, |c| {
        let mut v = Vec::new();
        if c == NodeId(0) {
            v.push(mole_pnm_id);
            v.push(NodeId(1));
        } else if c.raw() < N {
            v.push(NodeId(c.raw() - 1));
            if c.raw() + 1 < N {
                v.push(NodeId(c.raw() + 1));
            }
        }
        v
    });
    assert!(
        q.contains(&mole_pnm_id),
        "quarantine covers the mole: {q:?}"
    );
    let mut filter = QuarantineFilter::new();
    filter.quarantine(q);
    assert!(!filter.permits(mole_pnm_id));
    // Innocent nodes far from the mole keep service.
    assert!(filter.permits(NodeId(7)));
}
