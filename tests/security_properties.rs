//! The paper's security theorems (§5), operationalized as executable
//! properties across the crates.

use pnm::core::{
    MarkingConfig, MarkingScheme, NestedMarking, NodeContext, ProbabilisticNestedMarking,
    SinkVerifier, StopReason, VerifyMode,
};
use pnm::crypto::KeyStore;
use pnm::wire::{Location, NodeId, Packet, Report};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn keys(n: u16) -> KeyStore {
    KeyStore::derive_from_master(b"theorem-tests", n)
}

fn report(tag: u64) -> Report {
    Report::new(
        format!("evt-{tag}").into_bytes(),
        Location::new(1.0, 1.0),
        tag,
    )
}

/// Marks a packet honestly over hops `0..n` with the nested scheme.
fn nested_packet(ks: &KeyStore, n: u16, tag: u64) -> Packet {
    let scheme = NestedMarking::new(MarkingConfig::default());
    let mut rng = StdRng::seed_from_u64(tag);
    let mut pkt = Packet::new(report(tag));
    for i in 0..n {
        let ctx = NodeContext::new(NodeId(i), *ks.key(i).unwrap());
        scheme.mark(&ctx, &mut pkt, &mut rng);
    }
    pkt
}

/// Theorem 2 (consecutive traceability): if the sink traced to V, it can
/// always trace one hop further to V's legitimate predecessor — for every
/// suffix of an honest chain.
#[test]
fn theorem2_consecutive_traceability() {
    let ks = keys(20);
    let pkt = nested_packet(&ks, 20, 1);
    let verifier = SinkVerifier::new(ks);
    let chain = verifier.verify(&pkt, VerifyMode::Nested);
    // The full chain verifies: every consecutive pair was traceable.
    assert!(chain.fully_verified());
    assert_eq!(chain.nodes.len(), 20);
    for (i, node) in chain.nodes.iter().enumerate() {
        assert_eq!(node.raw() as usize, i);
    }
}

/// Theorem 1/2 corollary (one-hop precision): wherever a tamperer strikes
/// in an honest chain, the backward walk stops either at the tamper point
/// or downstream of it — never tracing "past" the manipulation to frame an
/// upstream innocent.
#[test]
fn corollary_tamper_never_extends_upstream() {
    let ks = keys(12);
    for victim in 0..11u16 {
        // Tamper with mark `victim` after the chain is complete.
        let mut pkt = nested_packet(&ks, 12, victim as u64);
        let mac = pkt.marks[victim as usize].mac.unwrap();
        pkt.marks[victim as usize].mac = Some(mac.corrupted());
        let verifier = SinkVerifier::new(ks.clone());
        let chain = verifier.verify(&pkt, VerifyMode::Nested);
        // All marks downstream of the victim covered the *original* bytes,
        // so the first backward check already fails: nothing verifies, or
        // verification stops strictly downstream of the victim.
        match chain.stop {
            StopReason::InvalidMac { mark_index } => {
                assert!(
                    mark_index >= victim as usize,
                    "victim {victim}: stopped at {mark_index}"
                );
            }
            other => panic!("victim {victim}: unexpected stop {other:?}"),
        }
    }
}

/// Theorem 3 (necessity): a scheme protecting fewer fields — extended AMS,
/// whose MAC omits upstream marks — is not consecutive traceable: the §3
/// removal attack yields a *fully verifying* chain that nonetheless
/// starts at an innocent node.
#[test]
fn theorem3_ams_counterexample() {
    let ks = keys(8);
    let cfg = MarkingConfig::builder().marking_probability(1.0).build();
    let scheme = pnm::core::ExtendedAms::new(cfg);
    let mut rng = StdRng::seed_from_u64(0);
    let mut pkt = Packet::new(report(0));
    for i in 0..8u16 {
        let ctx = NodeContext::new(NodeId(i), *ks.key(i).unwrap());
        scheme.mark(&ctx, &mut pkt, &mut rng);
    }
    // The mole removes the two most-upstream marks.
    pkt.marks.drain(0..2);
    let verifier = SinkVerifier::new(ks);
    let chain = verifier.verify(&pkt, VerifyMode::Ams);
    // Every remaining mark still verifies — the removal is invisible.
    assert_eq!(chain.nodes.len(), 6);
    // And the traceback now "starts" at innocent node 2.
    assert_eq!(chain.most_upstream(), Some(NodeId(2)));
}

/// The anonymous-ID mapping changes per message: two packets from the same
/// node are unlinkable without the key (§4.2's defense against mapping
/// accumulation).
#[test]
fn anonymous_ids_unlinkable_across_packets() {
    let ks = keys(5);
    let cfg = MarkingConfig::builder().marking_probability(1.0).build();
    let scheme = ProbabilisticNestedMarking::new(cfg);
    let mut rng = StdRng::seed_from_u64(3);
    let mut seen = std::collections::HashSet::new();
    for tag in 0..50u64 {
        let mut pkt = Packet::new(report(tag));
        let ctx = NodeContext::new(NodeId(2), *ks.key(2).unwrap());
        scheme.mark(&ctx, &mut pkt, &mut rng);
        let aid = pkt.marks[0].id.as_anon().expect("anonymous");
        assert!(seen.insert(aid), "anonymous id repeated at tag {tag}");
    }
}

/// An attacker knowing a compromised key cannot forge a mark for an
/// *uncompromised* node: verification resolves anonymous IDs by key, so a
/// forged mark under the wrong key never attributes to an innocent.
#[test]
fn forged_anonymous_marks_never_attribute_to_innocents() {
    let ks = keys(6);
    let cfg = MarkingConfig::builder().marking_probability(1.0).build();
    let scheme = ProbabilisticNestedMarking::new(cfg);
    let mut rng = StdRng::seed_from_u64(4);

    let mut pkt = Packet::new(report(9));
    // Mole (node 5) claims to be node 3 by computing the anon id formula
    // with ITS OWN key (it lacks node 3's) — then MACs with its own key.
    let mole_key = *ks.key(5).unwrap();
    let fake_anon = pnm::crypto::anon_id(&mole_key, &pkt.report.to_bytes(), 3);
    let mut msg = pkt.to_bytes();
    msg.extend_from_slice(fake_anon.as_bytes());
    let mac = mole_key.mark_mac(&msg, 8);
    pkt.push_mark(pnm::wire::Mark::anon(fake_anon, mac));
    // Honest node 4 then marks on top.
    let ctx = NodeContext::new(NodeId(4), *ks.key(4).unwrap());
    scheme.mark(&ctx, &mut pkt, &mut rng);

    let verifier = SinkVerifier::new(ks);
    let chain = verifier.verify(&pkt, VerifyMode::Nested);
    // Node 4 verifies; the forged mark does not resolve to node 3 (or to
    // anyone): the walk stops there.
    assert_eq!(chain.nodes, vec![NodeId(4)]);
    assert!(!chain.nodes.contains(&NodeId(3)));
}

/// Identity swapping yields valid marks (moles DO own both keys), but the
/// resulting chains only ever contain path nodes and mole identities —
/// never a fabricated innocent.
#[test]
fn identity_swap_marks_verify_but_name_only_moles() {
    let ks = keys(10);
    let cfg = MarkingConfig::builder().marking_probability(1.0).build();
    let scheme = ProbabilisticNestedMarking::new(cfg);
    let mut rng = StdRng::seed_from_u64(5);
    let mut pkt = Packet::new(report(77));
    // Mole 7 marks as mole 2 (keys shared between colluders).
    let ctx = NodeContext::new(NodeId(2), *ks.key(2).unwrap());
    scheme.mark(&ctx, &mut pkt, &mut rng);
    let verifier = SinkVerifier::new(ks);
    let chain = verifier.verify(&pkt, VerifyMode::Nested);
    assert!(chain.fully_verified());
    assert_eq!(chain.nodes, vec![NodeId(2)]); // the swapped identity
}
