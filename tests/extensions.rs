//! Integration tests for the paper's §7/§9 extension mechanisms:
//! multi-source traceback, replay defense, and mole isolation.

use pnm::core::{
    quarantine_set, DuplicateSuppressor, IsolationPolicy, MarkingScheme, MoleLocator, NodeContext,
    ProbabilisticNestedMarking, QuarantineFilter, SequenceWindow, VerifyMode,
};
use pnm::crypto::KeyStore;
use pnm::sim::bogus_packet;
use pnm::wire::{Location, NodeId, Packet, Report};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// §9 future work: two source moles inject through merging paths; the
/// reconstructor reports both source regions.
#[test]
fn two_source_moles_both_localized() {
    // Tree: branch A = 0→1→2, branch B = 5→6→2, trunk = 2→3→4→sink.
    let branch_a = [0u16, 1, 2, 3, 4];
    let branch_b = [5u16, 6, 2, 3, 4];
    let keys = KeyStore::derive_from_master(b"multi-source", 7);
    let cfg = pnm::core::MarkingConfig::builder()
        .marking_probability(0.5)
        .build();
    let scheme = ProbabilisticNestedMarking::new(cfg);
    let mut sink = MoleLocator::new(keys.clone(), VerifyMode::Nested);
    let mut rng = StdRng::seed_from_u64(17);

    for seq in 0..300u64 {
        let path: &[u16] = if seq % 2 == 0 { &branch_a } else { &branch_b };
        let mut pkt = bogus_packet(seq, 42);
        for &hop in path {
            let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
            scheme.mark(&ctx, &mut pkt, &mut rng);
        }
        sink.ingest(&pkt);
    }

    // Single-source localization is (correctly) ambiguous…
    assert!(sink.unequivocal_source().is_none());
    // …but multi-source reconstruction names both branch heads.
    let regions = sink.reconstructor().source_regions();
    let heads: Vec<NodeId> = regions.iter().map(|r| r.head).collect();
    assert_eq!(heads, vec![NodeId(0), NodeId(5)], "regions: {regions:?}");
    // Exclusive branches separate cleanly from the shared trunk.
    let r0 = &regions[0];
    assert!(r0.exclusive_branch.contains(&NodeId(1)));
    assert!(!r0.exclusive_branch.contains(&NodeId(3)));
}

/// §7 replay defense: en-route duplicate suppression plus one-time
/// sequence numbers cap a replay flood at a single accepted copy.
#[test]
fn replay_defense_end_to_end() {
    let keys = KeyStore::derive_from_master(b"replay-e2e", 6);
    let scheme = ProbabilisticNestedMarking::paper_default(6);
    let mut rng = StdRng::seed_from_u64(3);

    // A legitimate, fully marked report captured by the adversary.
    let mut captured = Packet::new(Report::new(
        b"legit-report".to_vec(),
        Location::new(5.0, 5.0),
        77,
    ));
    for hop in 0..6u16 {
        let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
        scheme.mark(&ctx, &mut captured, &mut rng);
    }

    // First forwarder's defenses.
    let mut dup = DuplicateSuppressor::new(32);
    let mut seqwin = SequenceWindow::new(16);
    let origin = NodeId(0);

    let mut forwarded = 0;
    for _ in 0..200 {
        let fresh_content = dup.observe(&captured.report.to_bytes());
        let fresh_seq = seqwin.accept(origin, captured.report.timestamp);
        if fresh_content && fresh_seq {
            forwarded += 1;
        }
    }
    assert_eq!(forwarded, 1, "replay flood collapsed to one packet");

    // Legitimate new reports still flow.
    for seq in 100..110u64 {
        let r = Report::new(format!("new-{seq}").into_bytes(), Location::default(), seq);
        assert!(dup.observe(&r.to_bytes()));
        assert!(seqwin.accept(origin, seq));
    }
}

/// Isolation after traceback: the quarantine set always contains the true
/// mole's position (chain ground truth), for every localization the PNM
/// pipeline produces across seeds.
#[test]
fn quarantine_always_covers_the_mole() {
    let n = 10u16;
    for seed in 0..5u64 {
        let keys = KeyStore::derive_from_master(b"quarantine", n + 1);
        let scheme = ProbabilisticNestedMarking::paper_default(n as usize);
        let mut sink = MoleLocator::new(keys.clone(), VerifyMode::Nested);
        let mut rng = StdRng::seed_from_u64(seed);
        // Source mole = id n, adjacent to forwarder 0; it never marks.
        for seq in 0..250u64 {
            let mut pkt = bogus_packet(seq, seed);
            for hop in 0..n {
                let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
                scheme.mark(&ctx, &mut pkt, &mut rng);
            }
            sink.ingest(&pkt);
        }
        let loc = sink.localize();
        let q = quarantine_set(&loc, IsolationPolicy::OneHopNeighborhood, |c| {
            // Chain adjacency plus the mole at V1's doorstep.
            let mut v = Vec::new();
            if c.raw() == 0 {
                v.push(NodeId(n)); // the mole
                v.push(NodeId(1));
            } else if c.raw() < n {
                v.push(NodeId(c.raw() - 1));
                if c.raw() + 1 < n {
                    v.push(NodeId(c.raw() + 1));
                }
            }
            v
        });
        assert!(
            q.contains(&NodeId(n)),
            "seed {seed}: quarantine {q:?} misses the mole (loc {loc:?})"
        );
        let mut filter = QuarantineFilter::new();
        filter.quarantine(q);
        assert!(!filter.permits(NodeId(n)));
    }
}
