//! End-to-end colluding-attack tests: the attack matrix, across seeds.

use pnm::adversary::AttackKind;
use pnm::sim::{evaluate_cell, AttackScenario, Outcome, SchemeKind};

fn scenario(seed: u64) -> AttackScenario {
    AttackScenario {
        path_len: 10,
        mole_position: 5,
        packets: 300,
        seed,
    }
}

/// The paper's central claim (Theorem 4): PNM is never misled, whatever
/// the colluding moles do — across attacks *and* seeds.
#[test]
fn pnm_never_misled_across_seeds() {
    for seed in [1u64, 2, 3, 2024] {
        for attack in AttackKind::all() {
            let (outcome, loc) = evaluate_cell(SchemeKind::Pnm, attack, &scenario(seed));
            assert_eq!(
                outcome,
                Outcome::Secure,
                "PNM, {attack}, seed {seed}: {loc:?}"
            );
        }
    }
}

/// Basic nested marking is also never misled (Theorem 2 / Corollary 5.1);
/// deterministic marking turns selective dropping into self-starvation.
#[test]
fn nested_never_misled() {
    for attack in AttackKind::all() {
        let (outcome, loc) = evaluate_cell(SchemeKind::Nested, attack, &scenario(11));
        assert_ne!(outcome, Outcome::Misled, "nested, {attack}: {loc:?}");
        if attack == AttackKind::SelectiveDrop {
            assert_eq!(outcome, Outcome::Starved);
        } else {
            assert_eq!(outcome, Outcome::Secure, "nested, {attack}: {loc:?}");
        }
    }
}

/// §4.2: the "natural" probabilistic extension with plain IDs is broken by
/// exactly one attack — selective dropping — and survives the others.
#[test]
fn plain_id_variant_broken_only_by_selective_dropping() {
    for attack in AttackKind::all() {
        let (outcome, loc) = evaluate_cell(SchemeKind::ProbNestedPlainId, attack, &scenario(12));
        if attack == AttackKind::SelectiveDrop {
            assert_eq!(outcome, Outcome::Misled, "{loc:?}");
        } else {
            assert_eq!(outcome, Outcome::Secure, "{attack}: {loc:?}");
        }
    }
}

/// §3: extended AMS fails under mark removal, altering, and selective
/// dropping (the mark-level manipulations its per-mark MACs cannot bind).
#[test]
fn extended_ams_defeated_by_mark_manipulation() {
    for (attack, expect_misled) in [
        (AttackKind::MarkRemoval, true),
        (AttackKind::MarkAlter, true),
        (AttackKind::SelectiveDrop, true),
        (AttackKind::NoMark, false),
        (AttackKind::MarkInsertion, false),
    ] {
        let (outcome, loc) = evaluate_cell(SchemeKind::ExtendedAms, attack, &scenario(13));
        if expect_misled {
            assert_eq!(outcome, Outcome::Misled, "AMS, {attack}: {loc:?}");
        } else {
            assert_eq!(outcome, Outcome::Secure, "AMS, {attack}: {loc:?}");
        }
    }
}

/// Plain Internet-style marking is defeated (misled or blinded) by every
/// mark-manipulating attack.
#[test]
fn plain_marking_defeated_by_manipulation() {
    for attack in [
        AttackKind::MarkInsertion,
        AttackKind::MarkRemoval,
        AttackKind::MarkAlter,
        AttackKind::SelectiveDrop,
    ] {
        let (outcome, loc) = evaluate_cell(SchemeKind::Plain, attack, &scenario(14));
        assert_ne!(outcome, Outcome::Secure, "plain, {attack}: {loc:?}");
    }
}

/// The mole's position along the path must not matter for PNM's guarantee.
#[test]
fn pnm_secure_for_any_mole_position() {
    for pos in [1u16, 3, 8] {
        let sc = AttackScenario {
            path_len: 10,
            mole_position: pos,
            packets: 300,
            seed: 5,
        };
        for attack in [
            AttackKind::MarkRemoval,
            AttackKind::SelectiveDrop,
            AttackKind::IdentitySwap,
        ] {
            let (outcome, loc) = evaluate_cell(SchemeKind::Pnm, attack, &sc);
            assert_eq!(outcome, Outcome::Secure, "pos {pos}, {attack}: {loc:?}");
        }
    }
}

/// An adaptive mole rotating through all seven canonical attacks mid-run
/// still cannot mislead PNM — whatever phase the sink's evidence comes
/// from, it points at a mole's neighborhood.
#[test]
fn adaptive_rotating_mole_never_misleads_pnm() {
    use pnm::adversary::{AdaptiveMole, AttackKind, AttackPlan, MoleAction, SourceMole};
    use pnm::core::{Localization, MoleLocator, NodeContext, VerifyMode};
    use pnm::wire::NodeId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let n = 10u16;
    let mole_pos = 5u16;
    let scenario = pnm::sim::PathScenario::paper(n);
    let keys = scenario.keystore(1);
    let scheme = SchemeKind::Pnm.build(scenario.config());
    let source_id = NodeId(n);
    let mut source = SourceMole::new(source_id, *keys.key(n).unwrap());
    let plans: Vec<AttackPlan> = AttackKind::all()
        .into_iter()
        .map(|k| AttackPlan::canonical(k, &[0]))
        .collect();
    let mut mole = AdaptiveMole::new(NodeId(mole_pos), *keys.key(mole_pos).unwrap(), plans, 40)
        .with_partner(source_id, *keys.key(n).unwrap());
    let mut locator = MoleLocator::new(keys.clone(), VerifyMode::Nested);
    let mut rng = StdRng::seed_from_u64(77);

    for _ in 0..400 {
        let mut pkt = source.inject(&mut rng);
        let mut dropped = false;
        for hop in 0..n {
            if hop == mole_pos {
                if mole.process(&mut pkt, scheme.as_ref(), &mut rng) == MoleAction::Dropped {
                    dropped = true;
                    break;
                }
            } else {
                let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
                scheme.mark(&ctx, &mut pkt, &mut rng);
            }
        }
        if !dropped {
            locator.ingest(&pkt);
        }
    }

    let mole_adjacent = |c: NodeId| {
        c == source_id || c.raw() == 0 || c.raw() == mole_pos || c.raw().abs_diff(mole_pos) == 1
    };
    match locator.localize() {
        Localization::MostUpstream(c) => assert!(mole_adjacent(c), "framed {c}"),
        Localization::Loop { junction, members } => {
            let anchor = if junction.is_empty() {
                members
            } else {
                junction
            };
            assert!(anchor.iter().any(|j| mole_adjacent(*j)), "{anchor:?}");
        }
        other => panic!("adaptive mole hid completely: {other:?}"),
    }
}

/// Longer paths keep the guarantee (with a traffic budget scaled per Fig 6).
#[test]
fn pnm_secure_on_long_paths() {
    let sc = AttackScenario {
        path_len: 30,
        mole_position: 15,
        packets: 600,
        seed: 21,
    };
    for attack in [AttackKind::MarkRemoval, AttackKind::SelectiveDrop] {
        let (outcome, loc) = evaluate_cell(SchemeKind::Pnm, attack, &sc);
        assert_eq!(outcome, Outcome::Secure, "{attack}: {loc:?}");
    }
}
