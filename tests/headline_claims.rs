//! Integration tests pinning the paper's headline quantitative claims.

use pnm::analysis::collection::{collection_probability, packets_for_confidence};
use pnm::sim::{run_honest_path, traceback_latency, PathScenario, SchemeKind};

/// §1/§9: "within about 50 packets, it can track down a mole up to 20 hops
/// away from the sink". We average the settle point over seeded runs.
#[test]
fn fifty_packets_for_twenty_hops() {
    let scenario = PathScenario::paper(20);
    let runs = 30;
    let mut total = 0usize;
    let mut succeeded = 0usize;
    for seed in 0..runs {
        let run = run_honest_path(&scenario, SchemeKind::Pnm, 400, 7000 + seed);
        if let Some(first) = run.first_stable_correct() {
            total += first;
            succeeded += 1;
        }
    }
    assert!(
        succeeded >= runs as usize - 2,
        "succeeded {succeeded}/{runs}"
    );
    let avg = total as f64 / succeeded as f64;
    // The paper reports ~50–55 packets; accept a generous band.
    assert!(
        (25.0..100.0).contains(&avg),
        "avg packets to identify at 20 hops = {avg}"
    );
}

/// §6.1 anchors: 13 / 33 / 54 packets for 90% collection at 10/20/30 hops.
#[test]
fn analytic_collection_anchors() {
    assert_eq!(packets_for_confidence(10, 0.3, 0.90), 13);
    let l20 = packets_for_confidence(20, 0.15, 0.90);
    let l30 = packets_for_confidence(30, 0.10, 0.90);
    assert!((31..=35).contains(&l20), "l20 = {l20}");
    assert!((52..=56).contains(&l30), "l30 = {l30}");
    // And the 99% claim behind "about 50 packets": 55 packets give >99%
    // collection at 20 hops.
    assert!(collection_probability(20, 0.15, 55) > 0.99);
}

/// §6.2: simulated collection matches the analytical model (Figure 4 vs 5).
#[test]
fn simulation_matches_analysis() {
    let scenario = PathScenario::paper(10);
    let runs = 300;
    let budget = 13;
    let mut all_collected = 0usize;
    for seed in 0..runs {
        let run = run_honest_path(&scenario, SchemeKind::Pnm, budget, 31337 + seed);
        if *run.collected_after.last().unwrap() == 10 {
            all_collected += 1;
        }
    }
    let empirical = all_collected as f64 / runs as f64;
    let analytic = collection_probability(10, 0.3, budget as u64);
    assert!(
        (empirical - analytic).abs() < 0.07,
        "empirical {empirical} vs analytic {analytic}"
    );
}

/// §7: "about 10 seconds to locate a mole 40-hops away from the sink,
/// using 300 packets" — on the Mica2 radio model at ~50 pkt/s.
#[test]
fn ten_seconds_for_forty_hops() {
    // Average over a few seeds; individual runs vary with the co-marking
    // tail. The shape claim: order-of-ten seconds, order-of-300 packets.
    let mut secs = Vec::new();
    let mut pkts = Vec::new();
    for seed in [7u64, 8, 9, 10] {
        let r = traceback_latency(40, 1500, 50.0, seed);
        if let (Some(p), Some(s)) = (r.packets_needed, r.seconds) {
            pkts.push(p as f64);
            secs.push(s);
        }
    }
    assert!(secs.len() >= 3, "most seeds settle");
    let avg_secs = secs.iter().sum::<f64>() / secs.len() as f64;
    let avg_pkts = pkts.iter().sum::<f64>() / pkts.len() as f64;
    assert!((2.0..20.0).contains(&avg_secs), "avg secs = {avg_secs}");
    assert!((50.0..900.0).contains(&avg_pkts), "avg pkts = {avg_pkts}");
}

/// Figure 6's failure counts track the closed-form model in
/// `pnm-analysis::unequivocal_failure_probability` (the co-marking
/// analysis behind the flattening failure curves).
#[test]
fn fig6_failures_match_closed_form() {
    let n = 30u16;
    let budget = 200usize;
    let runs = 150u64;
    let scenario = PathScenario::paper(n);
    let mut failures = 0usize;
    for seed in 0..runs {
        let run = run_honest_path(&scenario, SchemeKind::Pnm, budget, 0xF6 << 32 | seed);
        if !run.correct_at(budget) {
            failures += 1;
        }
    }
    let p = 3.0 / n as f64;
    let analytic = pnm::analysis::unequivocal_failure_probability(n as u32, p, budget as u64);
    let empirical = failures as f64 / runs as f64;
    // 150 Bernoulli trials: allow ±3σ around the analytic rate.
    let sigma = (analytic * (1.0 - analytic) / runs as f64).sqrt();
    assert!(
        (empirical - analytic).abs() < 3.5 * sigma + 0.02,
        "empirical {empirical:.3} vs analytic {analytic:.3} (σ = {sigma:.3})"
    );
}

/// Basic nested marking traces a mole with a single packet (§4.1).
#[test]
fn nested_single_packet_traceback() {
    for n in [5u16, 20, 50] {
        let scenario = PathScenario::paper(n);
        let run = run_honest_path(&scenario, SchemeKind::Nested, 1, n as u64);
        assert_eq!(run.first_stable_correct(), Some(1), "n = {n}");
    }
}
