//! Golden-vector regression tests for the canonical wire encodings.
//!
//! Every MAC in the system is computed over these exact bytes; silently
//! changing the encoding would invalidate nothing at compile time but
//! break interoperability between versions. These vectors pin the format.

use pnm::crypto::{anon_id, MacKey, MacTag};
use pnm::wire::{Location, Mark, NodeId, Packet, Report};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn report_encoding_golden() {
    let r = Report::new(b"ev".to_vec(), Location::new(1.0, 2.0), 0x0102030405060708);
    // len(2) | "ev" | 1.0f32 | 2.0f32 | u64
    assert_eq!(
        hex(&r.to_bytes()),
        "000265763f800000400000000102030405060708"
    );
}

#[test]
fn empty_report_encoding_golden() {
    let r = Report::new(vec![], Location::new(0.0, 0.0), 0);
    assert_eq!(hex(&r.to_bytes()), "000000000000000000000000000000000000");
    assert_eq!(r.to_bytes().len(), 2 + 4 + 4 + 8);
}

#[test]
fn packet_encoding_golden() {
    let r = Report::new(vec![0xaa], Location::new(0.0, 0.0), 1);
    let mut pkt = Packet::new(r);
    pkt.push_mark(Mark::unauthenticated(NodeId(0x0102)));
    // report | count=0001 | kind=00 id=0102 maclen=00
    assert_eq!(
        hex(&pkt.to_bytes()),
        "0001aa00000000000000000000000000000001000100010200"
    );
}

#[test]
fn plain_mark_with_mac_encoding_golden() {
    let mac = MacTag::from_bytes(&[0xde, 0xad, 0xbe, 0xef]);
    let m = Mark::plain(NodeId(7), mac);
    let mut buf = Vec::new();
    m.encode_into(&mut buf);
    // kind=00 | id=0007 | maclen=04 | deadbeef
    assert_eq!(hex(&buf), "00000704deadbeef");
}

#[test]
fn anon_mark_encoding_golden() {
    let key = MacKey::from_bytes([0x11; 16]);
    let aid = anon_id(&key, b"report-bytes", 42);
    let mac = MacTag::from_bytes(&[0x01, 0x02]);
    let m = Mark::anon(aid, mac);
    let mut buf = Vec::new();
    m.encode_into(&mut buf);
    assert_eq!(buf[0], 0x01, "anon id kind byte");
    assert_eq!(buf.len(), 1 + 8 + 1 + 2);
    assert_eq!(&buf[buf.len() - 3..], &[0x02, 0x01, 0x02]);
}

#[test]
fn anon_id_derivation_golden() {
    // Pins the H' construction (HMAC-SHA256 with the pnm/anon/v1 domain)
    // against accidental changes.
    let key = MacKey::from_bytes([0x22; 16]);
    let a = anon_id(&key, b"M", 1);
    let b = anon_id(&key, b"M", 1);
    assert_eq!(a, b, "determinism");
    // Recorded vector (computed once, now frozen).
    assert_eq!(format!("{a}"), {
        // Derivation changes would break cross-version traceback.
        let again = anon_id(&MacKey::from_bytes([0x22; 16]), b"M", 1);
        format!("{again}")
    });
    assert_ne!(a.as_u64(), 0, "must not degenerate");
}

#[test]
fn mark_mac_derivation_golden() {
    let key = MacKey::from_bytes([0x33; 16]);
    let t1 = key.mark_mac(b"message", 8);
    let t2 = key.mark_mac(b"message", 8);
    assert_eq!(t1, t2);
    // Truncation is a prefix of the full tag.
    let t32 = key.mark_mac(b"message", 32);
    assert_eq!(t1.as_bytes(), &t32.as_bytes()[..8]);
}

#[test]
fn sha256_abc_golden() {
    // The ultimate anchor: FIPS 180-4 "abc".
    assert_eq!(
        pnm::crypto::Sha256::digest(b"abc").to_hex(),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    );
}
