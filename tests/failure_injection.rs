//! Failure-injection tests: radio loss, routing dynamics (§7), replay
//! attacks (§7), and degenerate inputs — PNM must stay correct, or fail
//! safely, under all of them.

use pnm::core::{MarkingScheme, MoleLocator, NodeContext, ProbabilisticNestedMarking, VerifyMode};
use pnm::crypto::KeyStore;
use pnm::net::{Network, NodeDecision, RadioModel, Topology};
use pnm::sim::bogus_packet;
use pnm::wire::{NodeId, Packet};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Radio loss delays but does not break traceback: with 10% per-hop loss,
/// the sink still converges to the true source region.
#[test]
fn traceback_survives_radio_loss() {
    let n = 10u16;
    let keys = KeyStore::derive_from_master(b"loss-test", n);
    let scheme = ProbabilisticNestedMarking::paper_default(n as usize);
    let net =
        Network::new(Topology::chain(n, 10.0)).with_radio(RadioModel::mica2().with_loss(0.10));
    let kh = keys.clone();
    let mut handler = move |node: u16, pkt: &mut Packet, _t: u64, rng: &mut StdRng| {
        let ctx = NodeContext::new(NodeId(node), *kh.key(node).unwrap());
        scheme.mark(&ctx, pkt, rng);
        NodeDecision::Forward
    };
    let report = net.simulate_stream(0, 600, 20_000, |s| bogus_packet(s, 1), &mut handler, 3);
    assert!(report.radio_losses > 0, "loss model active");
    assert!(report.deliveries.len() > 100, "enough survivors");

    let mut sink = MoleLocator::new(keys, VerifyMode::Nested);
    for d in &report.deliveries {
        sink.ingest(&d.packet);
    }
    assert_eq!(sink.unequivocal_source(), Some(NodeId(0)));
}

/// §7 routing dynamics: if the route changes mid-traceback but the
/// relative upstream order of surviving nodes is preserved (a node drops
/// out of the path), the sink still localizes correctly.
#[test]
fn route_change_preserving_order_still_locates() {
    let n = 10u16;
    let keys = KeyStore::derive_from_master(b"churn-test", n);
    let scheme = ProbabilisticNestedMarking::paper_default(n as usize);
    let mut sink = MoleLocator::new(keys.clone(), VerifyMode::Nested);
    let mut rng = StdRng::seed_from_u64(5);

    for seq in 0..400u64 {
        let mut pkt = bogus_packet(seq, 2);
        // After packet 200, node 4 leaves the path (battery death); the
        // route heals around it, order of the rest unchanged.
        for hop in 0..n {
            if seq >= 200 && hop == 4 {
                continue;
            }
            let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
            scheme.mark(&ctx, &mut pkt, &mut rng);
        }
        sink.ingest(&pkt);
    }
    assert_eq!(sink.unequivocal_source(), Some(NodeId(0)));
}

/// §7 replay attacks: a source mole replaying an old, fully marked report
/// cannot frame the old path — the sink sees a *valid* chain whose most
/// upstream node is the original path's head, and duplicate suppression
/// (modeled here as the sink ignoring repeated report bytes) caps the
/// damage at one observation.
#[test]
fn replayed_reports_add_no_new_evidence() {
    let n = 8u16;
    let keys = KeyStore::derive_from_master(b"replay-test", n);
    let scheme = ProbabilisticNestedMarking::paper_default(n as usize);
    let mut rng = StdRng::seed_from_u64(6);

    // A legitimately forwarded packet captured by the adversary.
    let mut captured = bogus_packet(0, 3);
    for hop in 0..n {
        let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
        scheme.mark(&ctx, &mut captured, &mut rng);
    }

    // En-route duplicate suppression: forwarders drop a report they have
    // already forwarded. Model: the sink's ingest sees the replay once.
    let mut sink = MoleLocator::new(keys.clone(), VerifyMode::Nested);
    let mut seen = std::collections::HashSet::new();
    let mut accepted = 0;
    for _ in 0..100 {
        if seen.insert(captured.report.to_bytes()) {
            sink.ingest(&captured);
            accepted += 1;
        }
    }
    assert_eq!(accepted, 1, "duplicates suppressed");
    // One packet's evidence: observed nodes only from the original path.
    assert!(sink.observed_count() <= n as usize);
}

/// A mole flooding garbage marks (max-size packets) cannot make the sink
/// mis-attribute: all garbage fails verification.
#[test]
fn garbage_mark_flood_yields_no_false_attribution() {
    let n = 6u16;
    let keys = KeyStore::derive_from_master(b"flood-test", n);
    let mut sink = MoleLocator::new(keys, VerifyMode::Nested);
    let mut rng = StdRng::seed_from_u64(9);
    use rand::Rng as _;
    for seq in 0..50u64 {
        let mut pkt = bogus_packet(seq, 4);
        for _ in 0..64 {
            let id = NodeId((rng.next_u64() % 6) as u16);
            let mut mac = [0u8; 8];
            for b in &mut mac {
                *b = (rng.next_u64() & 0xff) as u8;
            }
            pkt.push_mark(pnm::wire::Mark::plain(
                id,
                pnm::crypto::MacTag::from_bytes(&mac),
            ));
        }
        let chain = sink.ingest(&pkt);
        assert!(chain.nodes.is_empty(), "garbage verified at seq {seq}?!");
    }
    assert_eq!(sink.observed_count(), 0);
}

/// Packets that fail wire parsing (truncation in flight) are rejected
/// without panicking anywhere in the stack.
#[test]
fn truncated_packets_fail_safely() {
    let n = 5u16;
    let keys = KeyStore::derive_from_master(b"trunc-test", n);
    let scheme = ProbabilisticNestedMarking::paper_default(n as usize);
    let mut rng = StdRng::seed_from_u64(11);
    let mut pkt = bogus_packet(0, 5);
    for hop in 0..n {
        let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
        scheme.mark(&ctx, &mut pkt, &mut rng);
    }
    let bytes = pkt.to_bytes();
    for cut in 0..bytes.len() {
        assert!(Packet::from_bytes(&bytes[..cut]).is_err());
    }
    // The intact bytes round-trip and verify.
    let restored = Packet::from_bytes(&bytes).unwrap();
    let verifier = pnm::core::SinkVerifier::new(keys);
    assert!(
        verifier
            .verify(&restored, VerifyMode::Nested)
            .fully_verified()
            || restored.mark_count() == 0
    );
}

/// Disconnected deployments: injections from an unreachable node never
/// arrive, and the locator reports no evidence rather than guessing.
#[test]
fn unreachable_source_yields_no_evidence() {
    let topo = Topology::random_geometric(10, 1000.0, 5.0, 1);
    let net = Network::new(topo);
    let isolated = (0..10u16)
        .find(|&i| net.routing().hops_to_sink(i).is_none())
        .expect("sparse field has isolated nodes");
    let mut handler = |_n: u16, _p: &mut Packet, _t: u64, _r: &mut StdRng| NodeDecision::Forward;
    let report = net.simulate_stream(isolated, 10, 0, |s| bogus_packet(s, 6), &mut handler, 1);
    assert!(report.deliveries.is_empty());
    assert_eq!(report.undeliverable, 10);
}
