//! Randomized composite-attack fuzzing: arbitrary *combinations* of the
//! seven attack classes, with randomized parameters, against PNM.
//!
//! The paper's Theorem 4 covers any manipulation, not just the canonical
//! single attacks — "the mole can use any one or a combination of the
//! attacks" (§2.3). This test samples random `AttackPlan`s and asserts the
//! sink is never misled to a non-mole-adjacent node.

use proptest::prelude::*;

use pnm::adversary::{
    AlterStrategy, AttackPlan, ForwardingMole, MoleAction, MoleMarking, RemovalStrategy, SourceMole,
};
use pnm::core::{Localization, MoleLocator, NodeContext, VerifyMode};
use pnm::sim::{PathScenario, SchemeKind};
use pnm::wire::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_plan() -> impl Strategy<Value = AttackPlan> {
    let removal = prop_oneof![
        Just(None),
        Just(Some(RemovalStrategy::All)),
        (1usize..4).prop_map(|k| Some(RemovalStrategy::FirstK(k))),
        proptest::collection::btree_set(0u16..10, 1..4)
            .prop_map(|ids| Some(RemovalStrategy::Ids(ids))),
    ];
    let alter = prop_oneof![
        Just(None),
        Just(Some(AlterStrategy::All)),
        (0usize..6).prop_map(|i| Some(AlterStrategy::Index(i))),
        proptest::collection::btree_set(0u16..10, 1..4)
            .prop_map(|ids| Some(AlterStrategy::Ids(ids))),
    ];
    let marking = prop_oneof![
        Just(MoleMarking::Silent),
        Just(MoleMarking::Honest),
        Just(MoleMarking::SwapWithPartner),
    ];
    (
        proptest::collection::btree_set(0u16..10, 0..3),
        removal,
        any::<bool>(),
        alter,
        0usize..4,
        proptest::collection::vec(0u16..10, 0..3),
        marking,
    )
        .prop_map(
            |(drop_if_marked_by, remove, reorder, alter, insert_fake, frame_ids, marking)| {
                AttackPlan {
                    drop_if_marked_by,
                    remove,
                    reorder,
                    alter,
                    insert_fake,
                    frame_ids,
                    marking,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever composite manipulation the forwarding mole runs, PNM's
    /// localization — if it names anyone — names a node with a mole in its
    /// one-hop neighborhood. (It may be inconclusive or starved; it must
    /// never confidently frame a far-away innocent.)
    #[test]
    fn composite_attacks_never_mislead_pnm(
        plan in arb_plan(),
        mole_pos in 2u16..8,
        seed in any::<u64>(),
    ) {
        let n = 10u16;
        let scenario = PathScenario::paper(n);
        let keys = scenario.keystore(1);
        let scheme = SchemeKind::Pnm.build(scenario.config());
        let source_id = NodeId(n);
        let mut source = SourceMole::new(source_id, *keys.key(n).unwrap());
        let mut mole = ForwardingMole::new(NodeId(mole_pos), *keys.key(mole_pos).unwrap(), plan)
            .with_partner(source_id, *keys.key(n).unwrap());
        let mut locator = MoleLocator::new(keys.clone(), VerifyMode::Nested);
        let mut rng = StdRng::seed_from_u64(seed);

        for _ in 0..150 {
            let mut pkt = source.inject(&mut rng);
            let mut dropped = false;
            for hop in 0..n {
                if hop == mole_pos {
                    if mole.process(&mut pkt, scheme.as_ref(), &mut rng) == MoleAction::Dropped {
                        dropped = true;
                        break;
                    }
                } else {
                    let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
                    scheme.mark(&ctx, &mut pkt, &mut rng);
                }
            }
            if !dropped {
                locator.ingest(&pkt);
            }
        }

        // Mole adjacency on the chain (plus the source at v0's doorstep).
        let mole_adjacent = |c: NodeId| -> bool {
            if c == source_id || c.raw() == mole_pos {
                return true;
            }
            if c.raw() == 0 {
                return true; // v0 is the source mole's neighbor
            }
            c.raw() < n && c.raw().abs_diff(mole_pos) == 1
        };

        match locator.localize() {
            Localization::MostUpstream(c) => {
                prop_assert!(mole_adjacent(c), "framed innocent {c} (mole at {mole_pos})");
            }
            Localization::Loop { junction, members } => {
                let anchor = if junction.is_empty() { &members } else { &junction };
                // A loop verdict must not consist purely of far-away
                // innocents.
                prop_assert!(
                    anchor.iter().any(|j| mole_adjacent(*j)),
                    "loop verdict without any mole-adjacent node: {anchor:?}"
                );
            }
            // Hiding (ambiguous / starved / no evidence) is allowed — the
            // attack bought concealment, not framing.
            Localization::Ambiguous(_) | Localization::NoEvidence => {}
        }
    }
}
