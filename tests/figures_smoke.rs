//! Smoke tests for the figure-regeneration harness: shapes and anchors at
//! reduced run counts (the full paper settings run via `regen-figures`).

use pnm::sim::{attack_matrix, fig4, fig5, identification_sweep, AttackScenario};

#[test]
fn fig4_regenerates_with_paper_anchors() {
    let t = fig4(80);
    assert_eq!(t.headers, vec!["packets", "n=10", "n=20", "n=30"]);
    assert_eq!(t.len(), 80);
    // x=13 / n=10 ≈ 0.9; x=33 / n=20 ≈ 0.9; x=54 / n=30 ≈ 0.9.
    let cell = |x: usize, col: usize| -> f64 { t.rows[x - 1][col].parse().unwrap() };
    assert!((cell(13, 1) - 0.9).abs() < 0.05, "{}", cell(13, 1));
    assert!((cell(33, 2) - 0.9).abs() < 0.05, "{}", cell(33, 2));
    assert!((cell(54, 3) - 0.9).abs() < 0.05, "{}", cell(54, 3));
}

#[test]
fn fig5_csv_export_works() {
    let t = fig5(25, 10);
    let csv = t.to_csv();
    assert_eq!(csv.lines().count(), 11); // header + 10 rows
    assert!(csv.starts_with("packets,"));
}

#[test]
fn fig67_sweep_matches_paper_shape_small() {
    // 12 runs per point: coarse, but the qualitative claims must hold.
    let points = identification_sweep(12);
    // "200 packets are sufficient for up to 20-hops paths" — few failures.
    let p20 = points.iter().find(|p| p.path_len == 20).unwrap();
    assert!(p20.failures[0] <= 3, "n=20 @200: {:?}", p20.failures);
    // 800 packets nearly always suffice out to 40 hops.
    let p40 = points.iter().find(|p| p.path_len == 40).unwrap();
    assert!(p40.failures[3] <= 2, "n=40 @800: {:?}", p40.failures);
    // Figure 7 shape: packets-to-identify grows with path length.
    let p5 = points.iter().find(|p| p.path_len == 5).unwrap();
    assert!(
        p5.packets_to_identify.mean() < p40.packets_to_identify.mean(),
        "n=5 {} vs n=40 {}",
        p5.packets_to_identify.mean(),
        p40.packets_to_identify.mean()
    );
}

#[test]
fn attack_matrix_regenerates() {
    let t = attack_matrix(&AttackScenario {
        path_len: 8,
        mole_position: 4,
        packets: 200,
        seed: 99,
    });
    assert_eq!(t.len(), 5);
    // The PNM row is all-secure.
    let pnm_row = t.rows.iter().find(|r| r[0] == "pnm").unwrap();
    assert!(
        pnm_row[1..].iter().all(|c| c == "secure"),
        "PNM row: {pnm_row:?}"
    );
    // At least one baseline row contains a MISLED cell.
    assert!(
        t.rows.iter().any(|r| r[1..].iter().any(|c| c == "MISLED")),
        "no baseline was misled?!"
    );
}
