//! Closed-form per-packet marking overhead (the §4 trade-off in bytes).
//!
//! Wire costs come from `pnm-wire`'s canonical encoding: every packet
//! carries a 2-byte mark count; a plain-ID mark costs
//! `1 (kind) + 2 (id) + 1 (len) + w (MAC)` bytes and an anonymous-ID mark
//! `1 + 8 + 1 + w`. The expected overhead follows directly from the
//! marking probability.

/// Bytes of a plain-ID mark with a `w`-byte MAC.
pub fn plain_mark_bytes(mac_width: usize) -> usize {
    1 + 2 + 1 + mac_width
}

/// Bytes of an anonymous-ID mark with a `w`-byte MAC.
pub fn anon_mark_bytes(mac_width: usize) -> usize {
    1 + 8 + 1 + mac_width
}

/// Expected per-packet overhead of deterministic nested marking over an
/// `n`-hop path (every hop marks with a plain ID).
pub fn nested_overhead_bytes(n: usize, mac_width: usize) -> f64 {
    2.0 + n as f64 * plain_mark_bytes(mac_width) as f64
}

/// Expected per-packet overhead of PNM over an `n`-hop path with marking
/// probability `p` (anonymous IDs).
pub fn pnm_overhead_bytes(n: usize, p: f64, mac_width: usize) -> f64 {
    2.0 + n as f64 * p * anon_mark_bytes(mac_width) as f64
}

/// Path length above which PNM (at fixed mean marks `np̄`) is cheaper than
/// deterministic nested marking: the crossover of the two lines above.
/// Returns `None` if PNM is cheaper everywhere (it is, for `np̄` small
/// enough that `np̄ · (10 + w) < n · (4 + w)` already at `n = 1`).
pub fn nested_vs_pnm_crossover(target_marks: f64, mac_width: usize) -> Option<usize> {
    // Nested grows ~ n(4+w); PNM stays ~ np̄(10+w). Crossover at
    // n = np̄ (10+w)/(4+w).
    let n = target_marks * anon_mark_bytes(mac_width) as f64 / plain_mark_bytes(mac_width) as f64;
    if n <= 1.0 {
        None
    } else {
        Some(n.ceil() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_byte_formulas() {
        assert_eq!(plain_mark_bytes(8), 12);
        assert_eq!(anon_mark_bytes(8), 18);
    }

    #[test]
    fn nested_grows_linearly() {
        let w = 8;
        assert_eq!(nested_overhead_bytes(10, w), 2.0 + 120.0);
        assert_eq!(nested_overhead_bytes(50, w), 2.0 + 600.0);
    }

    #[test]
    fn pnm_flat_at_fixed_np() {
        let w = 8;
        // np = 3 regardless of n: overhead constant at 2 + 3·18 = 56.
        for n in [10usize, 20, 30, 50] {
            let p = 3.0 / n as f64;
            let o = pnm_overhead_bytes(n, p, w);
            assert!((o - 56.0).abs() < 1e-9, "n={n}: {o}");
        }
    }

    #[test]
    fn crossover_matches_lines() {
        let w = 8;
        let x = nested_vs_pnm_crossover(3.0, w).expect("crossover exists");
        // 3·18/12 = 4.5 → 5 hops.
        assert_eq!(x, 5);
        // Below the crossover nested is cheaper; above, PNM wins.
        let below = 4usize;
        assert!(nested_overhead_bytes(below, w) < pnm_overhead_bytes(below, 3.0 / below as f64, w));
        let above = 6usize;
        assert!(nested_overhead_bytes(above, w) > pnm_overhead_bytes(above, 3.0 / above as f64, w));
    }
}
