//! Analytical model of mark collection (§6.1, Figure 4).
//!
//! Each of `n` forwarders marks each packet independently with probability
//! `p`. The sink has collected node `i`'s mark within `L` packets with
//! probability `1 − (1−p)^L`, independently across nodes, so
//!
//! ```text
//! P(all n marks collected within L packets) = (1 − (1−p)^L)^n
//! ```
//!
//! Expanding by the binomial theorem gives the inclusion–exclusion form the
//! paper's technical report uses:
//! `Σ_k (−1)^k C(n,k) (1−p)^{kL}`. Both are implemented and tested against
//! each other.

use crate::combinatorics::{binomial, pow_one_minus};

/// P(the sink has ≥1 mark from **all** `n` forwarders within `l` packets),
/// for per-packet marking probability `p` — the Figure 4 curve.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or not finite.
///
/// # Examples
///
/// ```
/// use pnm_analysis::collection::collection_probability;
///
/// // Paper (§6.1): n=10, np=3 → after 13 packets ≈ 90% collected.
/// let p90 = collection_probability(10, 0.3, 13);
/// assert!((0.85..0.95).contains(&p90));
/// ```
pub fn collection_probability(n: u32, p: f64, l: u64) -> f64 {
    assert!(p.is_finite() && (0.0..=1.0).contains(&p), "p = {p}");
    if n == 0 {
        return 1.0;
    }
    let miss = pow_one_minus(p, l); // (1-p)^L
    (1.0 - miss).powi(n as i32)
}

/// The same probability via the inclusion–exclusion expansion — used as a
/// cross-check of [`collection_probability`] (and mirrors the paper's
/// technical-report formula).
pub fn collection_probability_inclusion_exclusion(n: u32, p: f64, l: u64) -> f64 {
    assert!(p.is_finite() && (0.0..=1.0).contains(&p), "p = {p}");
    let mut acc = 0.0f64;
    let miss = pow_one_minus(p, l);
    for k in 0..=n as u64 {
        let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
        acc += sign * binomial(n as u64, k) * miss.powi(k as i32);
    }
    acc.clamp(0.0, 1.0)
}

/// Expected number of packets until the sink holds marks from all `n`
/// forwarders: the maximum of `n` i.i.d. geometric variables,
/// `E = Σ_{k=1..n} (−1)^{k+1} C(n,k) / (1 − (1−p)^k)`.
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1]`.
pub fn expected_packets_to_collect_all(n: u32, p: f64) -> f64 {
    assert!(p.is_finite() && p > 0.0 && p <= 1.0, "p = {p}");
    let mut acc = 0.0f64;
    for k in 1..=n as u64 {
        let sign = if k % 2 == 1 { 1.0 } else { -1.0 };
        let geom = 1.0 - pow_one_minus(p, k);
        acc += sign * binomial(n as u64, k) / geom;
    }
    acc
}

/// Smallest packet count `L` with collection probability at least
/// `confidence` — e.g. the paper's "13 packets for 90% at n = 10".
///
/// # Panics
///
/// Panics if `confidence` is not in `(0, 1)` or `p` not in `(0, 1]`.
pub fn packets_for_confidence(n: u32, p: f64, confidence: f64) -> u64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence = {confidence}"
    );
    assert!(p.is_finite() && p > 0.0 && p <= 1.0, "p = {p}");
    if n == 0 {
        return 0;
    }
    // Solve (1-(1-p)^L)^n >= c  ⇔  L >= ln(1 - c^{1/n}) / ln(1-p).
    let per_node = 1.0 - confidence.powf(1.0 / n as f64);
    if p >= 1.0 {
        return 1;
    }
    let l = per_node.ln() / (1.0 - p).ln();
    let mut guess = l.ceil().max(1.0) as u64;
    // Guard against floating point at the boundary.
    while collection_probability(n, p, guess) < confidence {
        guess += 1;
    }
    while guess > 1 && collection_probability(n, p, guess - 1) >= confidence {
        guess -= 1;
    }
    guess
}

/// P(two specific nodes both mark the same packet) = `p²` — the event that
/// directly orders a pair of adjacent forwarders (no intermediate node can
/// transitively order them).
pub fn co_mark_probability(p: f64) -> f64 {
    p * p
}

/// P(a specific adjacent pair is *never* co-marked within `l` packets)
/// `= (1 − p²)^l` — the dominant failure mode of unequivocal source
/// identification (Figure 6's failure counts).
pub fn adjacent_pair_failure_probability(p: f64, l: u64) -> f64 {
    pow_one_minus(co_mark_probability(p), l)
}

/// Approximate P(the sink fails to unequivocally identify the source
/// within `l` packets) for an `n`-hop path.
///
/// Unequivocal identification requires a *unique* node with no observed
/// upstream neighbor. Node `V_k` (k = 2..n, 1-indexed) acquires an
/// upstream edge in a packet iff `V_k` marks it **and** at least one of
/// its `k−1` upstream nodes marks it, which happens per packet with
/// probability `p · (1 − (1−p)^{k−1})`. Treating nodes as independent:
///
/// ```text
/// P(fail) ≈ 1 − Π_{k=2..n} (1 − (1 − p(1−(1−p)^{k−1}))^l)
/// ```
///
/// The `k = 2` term `(1−p²)^l` — the first two forwarders never co-marked —
/// dominates, which is why the failure curves flatten with path length in
/// Figure 6. This tracks the simulated Figure 6 shape (see EXPERIMENTS.md).
pub fn unequivocal_failure_probability(n: u32, p: f64, l: u64) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let mut success = 1.0f64;
    for k in 2..=n as u64 {
        let upstream_marks = 1.0 - pow_one_minus(p, k - 1);
        let per_packet = p * upstream_marks;
        let never_ordered = pow_one_minus(per_packet, l);
        success *= 1.0 - never_ordered;
    }
    (1.0 - success).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_figure4_anchors() {
        // §6.1: np = 3. "For a path containing 10 nodes, after receiving 13
        // packets, the sink has about 90% probability of having collected
        // all marks. It takes 33 and 54 packets to achieve the 90%
        // confidence for paths of 20, 30 hops respectively."
        assert_eq!(packets_for_confidence(10, 3.0 / 10.0, 0.90), 13);
        let l20 = packets_for_confidence(20, 3.0 / 20.0, 0.90);
        assert!((31..=35).contains(&l20), "l20 = {l20}");
        let l30 = packets_for_confidence(30, 3.0 / 30.0, 0.90);
        assert!((52..=56).contains(&l30), "l30 = {l30}");
    }

    #[test]
    fn headline_claim_50_packets_20_hops() {
        // "within about 50 packets, it can track down a mole up to 20 hops
        // away": with 55 packets the sink has >99% of all 20 marks (§6.2).
        let p = collection_probability(20, 3.0 / 20.0, 55);
        assert!(p > 0.99, "p = {p}");
    }

    #[test]
    fn closed_form_equals_inclusion_exclusion() {
        for n in [1u32, 5, 10, 20, 30] {
            let p = 3.0 / n as f64;
            let p = p.min(1.0);
            for l in [1u64, 5, 13, 33, 54, 100] {
                let a = collection_probability(n, p, l);
                let b = collection_probability_inclusion_exclusion(n, p, l);
                assert!((a - b).abs() < 1e-9, "n={n} l={l}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn monotone_in_packets() {
        let mut prev = 0.0;
        for l in 0..200 {
            let v = collection_probability(20, 0.15, l);
            assert!(v >= prev - 1e-15, "l={l}");
            prev = v;
        }
    }

    #[test]
    fn edge_cases() {
        assert_eq!(collection_probability(0, 0.5, 10), 1.0);
        assert_eq!(collection_probability(5, 0.5, 0), 0.0);
        assert_eq!(collection_probability(5, 1.0, 1), 1.0);
        assert_eq!(collection_probability(5, 0.0, 1000), 0.0);
    }

    #[test]
    fn expected_packets_single_node_is_geometric_mean() {
        // n=1: E = 1/p.
        assert!((expected_packets_to_collect_all(1, 0.25) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn expected_packets_coupon_collector_shape() {
        // n=10, p=0.3: E ≈ Σ … ; sanity: between 1/p and n/p.
        let e = expected_packets_to_collect_all(10, 0.3);
        assert!(e > 1.0 / 0.3 && e < 10.0 / 0.3, "e = {e}");
        // Monotone in n.
        assert!(expected_packets_to_collect_all(20, 0.3) > e);
    }

    #[test]
    fn expected_vs_quantile_consistency() {
        // The 50% quantile should be below the mean for this right-skewed
        // distribution's typical parameters.
        let e = expected_packets_to_collect_all(20, 0.15);
        let q50 = packets_for_confidence(20, 0.15, 0.50);
        assert!((q50 as f64) < e * 1.2, "q50={q50}, e={e}");
    }

    #[test]
    fn failure_probability_anchors_match_figure6() {
        // Fig 6 anchors (see DESIGN.md): n=20, L=200 → ~1% failures;
        // n=30, L=200 → noticeable; n=50, L=800 → <10%.
        let f20 = unequivocal_failure_probability(20, 3.0 / 20.0, 200);
        assert!(f20 < 0.05, "f20 = {f20}");
        let f30_200 = unequivocal_failure_probability(30, 3.0 / 30.0, 200);
        let f30_400 = unequivocal_failure_probability(30, 3.0 / 30.0, 400);
        assert!(f30_400 < f30_200);
        let f50 = unequivocal_failure_probability(50, 3.0 / 50.0, 800);
        assert!(f50 < 0.12, "f50 = {f50}");
    }

    #[test]
    fn co_mark_and_pair_failure() {
        assert_eq!(co_mark_probability(0.5), 0.25);
        assert!((adjacent_pair_failure_probability(0.5, 1) - 0.75).abs() < 1e-12);
        assert_eq!(unequivocal_failure_probability(1, 0.3, 10), 0.0);
    }

    #[test]
    #[should_panic(expected = "p = ")]
    fn invalid_probability_rejected() {
        let _ = collection_probability(5, 1.5, 10);
    }
}
