//! Numerically careful combinatorics helpers used by the analytical
//! models.

/// Binomial coefficient `C(n, k)` as `f64`, computed multiplicatively to
/// avoid factorial overflow. Exact for all values representable in `f64`.
///
/// Returns `0.0` when `k > n`.
///
/// # Examples
///
/// ```
/// use pnm_analysis::combinatorics::binomial;
///
/// assert_eq!(binomial(5, 2), 10.0);
/// assert_eq!(binomial(50, 25), 126410606437752.0);
/// ```
pub fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc *= (n - i) as f64;
        acc /= (i + 1) as f64;
    }
    acc
}

/// `ln C(n, k)` via `ln_gamma`, stable for large arguments.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// `ln(n!)` using Stirling's series for large `n` and exact products for
/// small `n`.
pub fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    if n < 32 {
        return (2..=n).map(|i| (i as f64).ln()).sum();
    }
    // Stirling: ln n! ≈ n ln n − n + ½ ln(2πn) + 1/(12n) − 1/(360n³).
    let x = n as f64;
    x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x * x * x)
}

/// `(1 - p)^l` computed in log space to stay accurate for tiny `p` and
/// large `l`.
pub fn pow_one_minus(p: f64, l: u64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p));
    if p >= 1.0 {
        return if l == 0 { 1.0 } else { 0.0 };
    }
    ((l as f64) * (1.0 - p).ln()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_small_values() {
        assert_eq!(binomial(0, 0), 1.0);
        assert_eq!(binomial(4, 0), 1.0);
        assert_eq!(binomial(4, 4), 1.0);
        assert_eq!(binomial(4, 2), 6.0);
        assert_eq!(binomial(10, 3), 120.0);
        assert_eq!(binomial(3, 5), 0.0);
    }

    #[test]
    fn binomial_symmetry() {
        for n in 0..30u64 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k), "C({n},{k})");
            }
        }
    }

    #[test]
    fn pascal_rule() {
        for n in 1..40u64 {
            for k in 1..n {
                let lhs = binomial(n, k);
                let rhs = binomial(n - 1, k - 1) + binomial(n - 1, k);
                assert!((lhs - rhs).abs() <= 1e-6 * lhs.max(1.0), "C({n},{k})");
            }
        }
    }

    #[test]
    fn ln_binomial_matches_binomial() {
        for (n, k) in [(10u64, 3u64), (50, 25), (100, 10), (300, 150)] {
            let direct = binomial(n, k).ln();
            let viagamma = ln_binomial(n, k);
            assert!(
                (direct - viagamma).abs() < 1e-6 * direct.abs().max(1.0),
                "n={n} k={k}: {direct} vs {viagamma}"
            );
        }
    }

    #[test]
    fn ln_factorial_exact_small() {
        let exact: f64 = (2..=10u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(10) - exact).abs() < 1e-12);
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
    }

    #[test]
    fn stirling_accuracy() {
        // Compare Stirling region against exact summation.
        let exact: f64 = (2..=100u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(100) - exact).abs() < 1e-8);
    }

    #[test]
    fn pow_one_minus_accuracy() {
        assert!((pow_one_minus(0.5, 2) - 0.25).abs() < 1e-12);
        assert_eq!(pow_one_minus(1.0, 5), 0.0);
        assert_eq!(pow_one_minus(1.0, 0), 1.0);
        assert_eq!(pow_one_minus(0.0, 1000), 1.0);
        // Tiny p, large l: (1-1e-9)^1e6 ≈ exp(-1e-3).
        let v = pow_one_minus(1e-9, 1_000_000);
        assert!((v - (-1e-3f64).exp()).abs() < 1e-9);
    }
}
