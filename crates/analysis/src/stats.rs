//! Summary statistics for experiment runs.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance accumulator (Welford's algorithm) with min/max.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (unbiased; 0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+∞` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Half-width of the 95% normal-approximation confidence interval on
    /// the mean.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        1.96 * self.stddev() / (self.n as f64).sqrt()
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// Percentile of a sample by linear interpolation (the `R-7` definition).
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
pub fn percentile(values: &mut [f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of an empty sample");
    assert!((0.0..=1.0).contains(&q), "q = {q}");
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    let h = q * (values.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        values[lo]
    } else {
        values[lo] + (h - lo as f64) * (values[hi] - values[lo])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn known_sample() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4; sample variance = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn welford_matches_naive_on_many_values() {
        let values: Vec<f64> = (0..10_000)
            .map(|i| ((i * 37) % 1000) as f64 / 7.0)
            .collect();
        let s: OnlineStats = values.iter().copied().collect();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var =
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (values.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.variance() - var).abs() < 1e-6);
    }

    #[test]
    fn single_value() {
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let s10: OnlineStats = (0..10).map(|i| i as f64).collect();
        let s1000: OnlineStats = (0..1000).map(|i| (i % 10) as f64).collect();
        assert!(s1000.ci95_half_width() < s10.ci95_half_width());
    }

    #[test]
    fn percentiles() {
        let mut v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&mut v, 0.0), 1.0);
        assert_eq!(percentile(&mut v, 1.0), 5.0);
        assert_eq!(percentile(&mut v, 0.5), 3.0);
        assert_eq!(percentile(&mut v, 0.25), 2.0);
        let mut two = vec![10.0, 20.0];
        assert_eq!(percentile(&mut two, 0.5), 15.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_percentile_panics() {
        let mut v: Vec<f64> = vec![];
        let _ = percentile(&mut v, 0.5);
    }
}
