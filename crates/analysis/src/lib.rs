//! Analytical models and statistics for the PNM reproduction.
//!
//! Implements the paper's §6.1 analysis — the probability that the sink has
//! collected at least one mark from every forwarder within `L` packets
//! (Figure 4) — plus the derived quantities the other figures rest on, and
//! general summary-statistics utilities for the Monte-Carlo harness.
//!
//! # Examples
//!
//! ```
//! use pnm_analysis::collection::{collection_probability, packets_for_confidence};
//!
//! // The paper's Figure 4 anchor: n = 10, np = 3 → 13 packets for 90%.
//! assert_eq!(packets_for_confidence(10, 0.3, 0.90), 13);
//! assert!(collection_probability(10, 0.3, 13) >= 0.90);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod combinatorics;
pub mod overhead;
pub mod stats;

pub use collection::{
    adjacent_pair_failure_probability, co_mark_probability, collection_probability,
    collection_probability_inclusion_exclusion, expected_packets_to_collect_all,
    packets_for_confidence, unequivocal_failure_probability,
};
pub use combinatorics::{binomial, ln_binomial, ln_factorial, pow_one_minus};
pub use overhead::{
    anon_mark_bytes, nested_overhead_bytes, nested_vs_pnm_crossover, plain_mark_bytes,
    pnm_overhead_bytes,
};
pub use stats::{percentile, OnlineStats};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::collection::{
        collection_probability, collection_probability_inclusion_exclusion, packets_for_confidence,
    };
    use crate::combinatorics::binomial;
    use crate::stats::OnlineStats;

    proptest! {
        /// The closed form and the inclusion–exclusion expansion agree for
        /// all parameters, within the cancellation error inherent to the
        /// alternating sum (its terms reach C(n, n/2), so float error can
        /// be ~C(n, n/2)·ε even though the true value is tiny).
        #[test]
        fn collection_forms_agree(n in 1u32..40, p in 0.01f64..1.0, l in 0u64..200) {
            let a = collection_probability(n, p, l);
            let b = collection_probability_inclusion_exclusion(n, p, l);
            let cancellation = binomial(n as u64, n as u64 / 2) * 1e-14;
            let tol = 1e-9 + cancellation;
            prop_assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
        }

        /// Probabilities are valid and monotone in l.
        #[test]
        fn collection_probability_valid(n in 0u32..50, p in 0.0f64..=1.0, l in 0u64..500) {
            let v = collection_probability(n, p, l);
            prop_assert!((0.0..=1.0).contains(&v));
            let v2 = collection_probability(n, p, l + 10);
            prop_assert!(v2 >= v - 1e-12);
        }

        /// packets_for_confidence returns the *least* satisfying L.
        #[test]
        fn quantile_is_tight(n in 1u32..30, p in 0.05f64..0.9, c in 0.5f64..0.99) {
            let l = packets_for_confidence(n, p, c);
            prop_assert!(collection_probability(n, p, l) >= c);
            if l > 1 {
                prop_assert!(collection_probability(n, p, l - 1) < c);
            }
        }

        /// Binomial coefficients satisfy the Vandermonde-style ratio
        /// C(n,k)·(n−k) == C(n,k+1)·(k+1).
        #[test]
        fn binomial_ratio(n in 0u64..60, k in 0u64..60) {
            prop_assume!(k < n);
            let lhs = binomial(n, k) * (n - k) as f64;
            let rhs = binomial(n, k + 1) * (k + 1) as f64;
            prop_assert!((lhs - rhs).abs() <= 1e-9 * lhs.max(1.0));
        }

        /// Welford statistics never produce negative variance and keep
        /// min ≤ mean ≤ max.
        #[test]
        fn stats_invariants(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s: OnlineStats = values.iter().copied().collect();
            prop_assert!(s.variance() >= 0.0);
            prop_assert!(s.min() <= s.mean() + 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }
    }
}
