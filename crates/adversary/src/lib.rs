//! Adversary models for the PNM reproduction: the colluding source and
//! forwarding moles of §2.2, with all seven attack classes.
//!
//! - [`AttackKind`] — the taxonomy (no-mark, insertion, removal,
//!   re-ordering, altering, selective dropping, identity swapping).
//! - [`AttackPlan`] — a concrete, composable configuration of those
//!   attacks for one forwarding mole.
//! - [`SourceMole`] — injects bogus, content-varying reports (optionally
//!   pre-loading faked marks).
//! - [`ForwardingMole`] — manipulates packets in flight per its plan,
//!   optionally swapping identities with a colluding partner.
//!
//! # Examples
//!
//! ```
//! use pnm_adversary::{AttackKind, AttackPlan, ForwardingMole, SourceMole};
//! use pnm_core::{MarkingConfig, NestedMarking};
//! use pnm_crypto::KeyStore;
//! use pnm_wire::NodeId;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let keys = KeyStore::derive_from_master(b"net", 10);
//! let mut source = SourceMole::new(NodeId(0), *keys.key(0).unwrap());
//! let plan = AttackPlan::canonical(AttackKind::MarkRemoval, &[1, 2]);
//! let mut mole = ForwardingMole::new(NodeId(5), *keys.key(5).unwrap(), plan);
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let scheme = NestedMarking::new(MarkingConfig::default());
//! let mut pkt = source.inject(&mut rng);
//! mole.process(&mut pkt, &scheme, &mut rng);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod mole;

pub use attack::{AlterStrategy, AttackKind, AttackPlan, MoleMarking, RemovalStrategy};
pub use mole::{AdaptiveMole, ForwardingMole, MoleAction, SourceMole};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use pnm_core::{
        MarkingConfig, MarkingScheme, NodeContext, ProbabilisticNestedMarking, SinkVerifier,
        VerifyMode,
    };
    use pnm_crypto::KeyStore;
    use pnm_wire::{NodeId, Packet};

    use crate::attack::{AttackKind, AttackPlan};
    use crate::mole::{ForwardingMole, MoleAction, SourceMole};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The central security property (Theorem 4, operationalized):
        /// whatever canonical attack a forwarding mole runs against PNM,
        /// every node the sink verifies upstream of the verification stop is
        /// either honest-and-on-the-path or a mole identity. The sink never
        /// verifies a fabricated innocent identity.
        #[test]
        fn verified_ids_are_never_fabricated(
            kind in prop::sample::select(AttackKind::all().to_vec()),
            n in 4u16..16,
            mole_pos in 1u16..3,
            seed in any::<u64>(),
        ) {
            let keys = KeyStore::derive_from_master(b"prop-adv", n + 2);
            let scheme = ProbabilisticNestedMarking::new(
                MarkingConfig::builder().marking_probability(0.5).build(),
            );
            let mole_id = mole_pos.min(n - 1);
            let source_id = NodeId(n); // off-path id for the source mole
            let mut source = SourceMole::new(source_id, *keys.key(n).unwrap());
            let upstream: Vec<u16> = (0..mole_id).collect();
            let plan = AttackPlan::canonical(kind, &upstream);
            let mut mole = ForwardingMole::new(NodeId(mole_id), *keys.key(mole_id).unwrap(), plan)
                .with_partner(source_id, *keys.key(n).unwrap());

            let verifier = SinkVerifier::new(keys.clone());
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..10 {
                let mut pkt: Packet = source.inject(&mut rng);
                let mut delivered = true;
                for hop in 0..n {
                    if hop == mole_id {
                        if mole.process(&mut pkt, &scheme, &mut rng) == MoleAction::Dropped {
                            delivered = false;
                            break;
                        }
                    } else {
                        let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
                        scheme.mark(&ctx, &mut pkt, &mut rng);
                    }
                }
                if !delivered {
                    continue;
                }
                let chain = verifier.verify(&pkt, VerifyMode::Nested);
                for v in &chain.nodes {
                    let legit_path = v.raw() < n;
                    let is_mole_identity = *v == source_id || v.raw() == mole_id;
                    prop_assert!(
                        legit_path || is_mole_identity,
                        "fabricated identity {v:?} verified under {kind}"
                    );
                }
            }
        }
    }
}
