//! Mole behaviors: the source mole `S` and the forwarding mole `X`.
//!
//! Moles are fully compromised nodes (§2.2): the adversary holds their keys
//! and re-programs them arbitrarily. Colluding moles additionally share
//! each other's keys (enabling identity swapping).

use rand::Rng;

use pnm_core::{MarkingScheme, NodeContext};
use pnm_crypto::{MacKey, MacTag};
use pnm_wire::{Location, Mark, MarkId, NodeId, Packet, Report};

use crate::attack::{AlterStrategy, AttackPlan, MoleMarking, RemovalStrategy};

/// Draws a uniform value in `[0, 1)` from a dyn-compatible RNG.
fn random_unit(rng: &mut dyn Rng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A compromised source node injecting bogus reports (§2.2, Figure 1).
///
/// Each injected report differs in content (identical copies would be
/// suppressed as duplicates by legitimate forwarders, §2.3).
#[derive(Clone, Debug)]
pub struct SourceMole {
    /// The mole's own identity.
    pub id: NodeId,
    /// Its (compromised) key.
    pub key: MacKey,
    /// Claimed event location for forged reports.
    pub fake_location: Location,
    /// Number of faked marks pre-loaded onto each injected packet
    /// (source-side mark insertion).
    pub preload_fake_marks: usize,
    /// Innocent nodes to frame with forged (invalid-MAC) marks.
    pub frame_ids: Vec<u16>,
    seq: u64,
}

impl SourceMole {
    /// Creates a source mole.
    pub fn new(id: NodeId, key: MacKey) -> Self {
        SourceMole {
            id,
            key,
            fake_location: Location::new(0.0, 0.0),
            preload_fake_marks: 0,
            frame_ids: Vec::new(),
            seq: 0,
        }
    }

    /// Configures source-side mark insertion.
    pub fn with_fake_marks(mut self, count: usize) -> Self {
        self.preload_fake_marks = count;
        self
    }

    /// Configures framing of specific innocent nodes.
    pub fn with_frame_ids(mut self, ids: Vec<u16>) -> Self {
        self.frame_ids = ids;
        self
    }

    /// Forges the next bogus report and wraps it in a packet, applying any
    /// configured source-side mark insertion.
    pub fn inject(&mut self, rng: &mut dyn Rng) -> Packet {
        let seq = self.seq;
        self.seq += 1;
        let event = format!("bogus-event-{seq}-{:08x}", rng.next_u64() as u32).into_bytes();
        let report = Report::new(event, self.fake_location, seq);
        let mut pkt = Packet::new(report);
        for _ in 0..self.preload_fake_marks {
            pkt.push_mark(random_fake_mark(rng));
        }
        for &fid in &self.frame_ids {
            pkt.push_mark(forged_mark_for(NodeId(fid), rng));
        }
        pkt
    }

    /// Number of reports injected so far.
    pub fn injected(&self) -> u64 {
        self.seq
    }
}

/// A faked mark with a random claimed ID and garbage MAC.
fn random_fake_mark(rng: &mut dyn Rng) -> Mark {
    let id = NodeId((rng.next_u64() % u16::MAX as u64) as u16);
    forged_mark_for(id, rng)
}

/// A forged mark impersonating `id` — the MAC is garbage since the
/// attacker lacks `k_id`.
fn forged_mark_for(id: NodeId, rng: &mut dyn Rng) -> Mark {
    let mut mac = [0u8; 8];
    for b in &mut mac {
        *b = (rng.next_u64() & 0xff) as u8;
    }
    Mark::plain(id, MacTag::from_bytes(&mac))
}

/// What a forwarding mole did with one packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MoleAction {
    /// Packet forwarded (possibly manipulated).
    Forwarded,
    /// Packet dropped (selective dropping).
    Dropped,
}

/// A compromised forwarding node executing an [`AttackPlan`] (§2.3's `X`).
#[derive(Clone, Debug)]
pub struct ForwardingMole {
    /// The mole's own identity.
    pub id: NodeId,
    /// Its (compromised) key.
    pub key: MacKey,
    /// The colluding partner whose identity it may assume (usually the
    /// source mole).
    pub partner: Option<(NodeId, MacKey)>,
    /// The manipulation plan.
    pub plan: AttackPlan,
    drops: u64,
    forwards: u64,
}

impl ForwardingMole {
    /// Creates a forwarding mole with a plan.
    pub fn new(id: NodeId, key: MacKey, plan: AttackPlan) -> Self {
        ForwardingMole {
            id,
            key,
            partner: None,
            plan,
            drops: 0,
            forwards: 0,
        }
    }

    /// Registers a colluding partner (shares keys — identity swapping).
    pub fn with_partner(mut self, id: NodeId, key: MacKey) -> Self {
        self.partner = Some((id, key));
        self
    }

    /// Processes one packet per the plan. Returns [`MoleAction::Dropped`]
    /// and leaves the packet unusable if the plan drops it; otherwise
    /// manipulates the packet in place and returns
    /// [`MoleAction::Forwarded`].
    ///
    /// `scheme` is the marking discipline legitimate nodes follow; the mole
    /// uses it when it wants to leave a *valid* mark (honest or swapped),
    /// since a valid mark must be indistinguishable from a legitimate one.
    pub fn process(
        &mut self,
        packet: &mut Packet,
        scheme: &dyn MarkingScheme,
        rng: &mut dyn Rng,
    ) -> MoleAction {
        // 1) Selective dropping: only plain IDs are visible to the mole.
        if !self.plan.drop_if_marked_by.is_empty() {
            let exposed = packet.marks.iter().any(|m| match m.id {
                MarkId::Plain(id) => self.plan.drop_if_marked_by.contains(&id.raw()),
                MarkId::Anon(_) => false, // opaque — PNM's whole point
            });
            if exposed {
                self.drops += 1;
                return MoleAction::Dropped;
            }
        }

        // 2) Mark removal.
        if let Some(strategy) = &self.plan.remove {
            match strategy {
                RemovalStrategy::All => packet.marks.clear(),
                RemovalStrategy::FirstK(k) => {
                    let k = (*k).min(packet.marks.len());
                    packet.marks.drain(0..k);
                }
                RemovalStrategy::Ids(ids) => {
                    packet.marks.retain(|m| match m.id {
                        MarkId::Plain(id) => !ids.contains(&id.raw()),
                        MarkId::Anon(_) => true,
                    });
                }
            }
        }

        // 3) Re-ordering: Fisher-Yates shuffle.
        if self.plan.reorder && packet.marks.len() >= 2 {
            for i in (1..packet.marks.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                packet.marks.swap(i, j);
            }
        }

        // 4) Mark altering: corrupt MACs (or scramble unauthenticated ids).
        if let Some(strategy) = &self.plan.alter {
            let corrupt = |m: &mut Mark, rng: &mut dyn Rng| match (&mut m.mac, m.id) {
                (Some(mac), _) => m.mac = Some(mac.corrupted()),
                (None, MarkId::Plain(_)) => {
                    m.id = MarkId::Plain(NodeId((rng.next_u64() % u16::MAX as u64) as u16));
                }
                (None, MarkId::Anon(_)) => {}
            };
            match strategy {
                AlterStrategy::All => {
                    for m in &mut packet.marks {
                        corrupt(m, rng);
                    }
                }
                AlterStrategy::Index(i) => {
                    if let Some(m) = packet.marks.get_mut(*i) {
                        corrupt(m, rng);
                    }
                }
                AlterStrategy::Ids(ids) => {
                    for m in &mut packet.marks {
                        if let MarkId::Plain(id) = m.id {
                            if ids.contains(&id.raw()) {
                                corrupt(m, rng);
                            }
                        }
                    }
                }
            }
        }

        // 5) Mark insertion. Fakes are *prepended*: claiming an upstream
        // position is what (falsely) shifts the traceback away from the
        // mole in position-ordered schemes.
        for _ in 0..self.plan.insert_fake {
            packet.marks.insert(0, random_fake_mark(rng));
        }
        for &fid in &self.plan.frame_ids {
            packet.marks.insert(0, forged_mark_for(NodeId(fid), rng));
        }

        // 6) The mole's own marking decision.
        match self.plan.marking {
            MoleMarking::Silent => {}
            MoleMarking::Honest => {
                let ctx = NodeContext::new(self.id, self.key);
                scheme.mark(&ctx, packet, rng);
            }
            MoleMarking::SwapWithPartner => {
                let use_partner = self.partner.is_some() && random_unit(rng) < 0.5;
                let ctx = match (&self.partner, use_partner) {
                    (Some((pid, pkey)), true) => NodeContext::new(*pid, *pkey),
                    _ => NodeContext::new(self.id, self.key),
                };
                scheme.mark(&ctx, packet, rng);
            }
        }

        self.forwards += 1;
        MoleAction::Forwarded
    }

    /// Packets dropped so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Packets forwarded so far.
    pub fn forwards(&self) -> u64 {
        self.forwards
    }
}

/// A forwarding mole that rotates through several attack plans, switching
/// every `switch_every` packets — modeling an adaptive adversary probing
/// for a manipulation the scheme mishandles.
#[derive(Clone, Debug)]
pub struct AdaptiveMole {
    inner: ForwardingMole,
    plans: Vec<AttackPlan>,
    switch_every: u64,
    processed: u64,
}

impl AdaptiveMole {
    /// Creates an adaptive mole cycling through `plans`.
    ///
    /// # Panics
    ///
    /// Panics if `plans` is empty or `switch_every` is zero.
    pub fn new(id: NodeId, key: MacKey, plans: Vec<AttackPlan>, switch_every: u64) -> Self {
        assert!(!plans.is_empty(), "need at least one plan");
        assert!(switch_every > 0, "switch interval must be positive");
        let first = plans[0].clone();
        AdaptiveMole {
            inner: ForwardingMole::new(id, key, first),
            plans,
            switch_every,
            processed: 0,
        }
    }

    /// Registers a colluding partner (forwarded to the inner mole).
    pub fn with_partner(mut self, id: NodeId, key: MacKey) -> Self {
        self.inner = self.inner.with_partner(id, key);
        self
    }

    /// The plan currently in force.
    pub fn current_plan(&self) -> &AttackPlan {
        &self.inner.plan
    }

    /// Processes one packet under the current plan, rotating plans on
    /// schedule.
    pub fn process(
        &mut self,
        packet: &mut Packet,
        scheme: &dyn MarkingScheme,
        rng: &mut dyn Rng,
    ) -> MoleAction {
        let phase = (self.processed / self.switch_every) as usize % self.plans.len();
        self.inner.plan = self.plans[phase].clone();
        self.processed += 1;
        self.inner.process(packet, scheme, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::AttackKind;
    use pnm_core::{MarkingConfig, NestedMarking, ProbabilisticNestedMarking};
    use pnm_crypto::KeyStore;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys() -> KeyStore {
        KeyStore::derive_from_master(b"adversary-test", 20)
    }

    fn honest_nested_packet(ks: &KeyStore, hops: std::ops::Range<u16>, seq: u64) -> Packet {
        let scheme = NestedMarking::new(MarkingConfig::default());
        let mut rng = StdRng::seed_from_u64(seq);
        let report = Report::new(format!("r{seq}").into_bytes(), Location::default(), seq);
        let mut pkt = Packet::new(report);
        for i in hops {
            let ctx = NodeContext::new(NodeId(i), *ks.key(i).unwrap());
            scheme.mark(&ctx, &mut pkt, &mut rng);
        }
        pkt
    }

    #[test]
    fn source_mole_reports_differ() {
        let ks = keys();
        let mut s = SourceMole::new(NodeId(0), *ks.key(0).unwrap());
        let mut rng = StdRng::seed_from_u64(0);
        let a = s.inject(&mut rng);
        let b = s.inject(&mut rng);
        assert_ne!(a.report.to_bytes(), b.report.to_bytes());
        assert_eq!(s.injected(), 2);
    }

    #[test]
    fn source_mole_preloads_fake_marks() {
        let ks = keys();
        let mut s = SourceMole::new(NodeId(0), *ks.key(0).unwrap()).with_fake_marks(4);
        let mut rng = StdRng::seed_from_u64(1);
        let pkt = s.inject(&mut rng);
        assert_eq!(pkt.mark_count(), 4);
    }

    #[test]
    fn source_mole_frames_specific_nodes() {
        let ks = keys();
        let mut s = SourceMole::new(NodeId(0), *ks.key(0).unwrap()).with_frame_ids(vec![7, 8]);
        let mut rng = StdRng::seed_from_u64(1);
        let pkt = s.inject(&mut rng);
        let framed: Vec<u16> = pkt
            .marks
            .iter()
            .filter_map(|m| m.id.as_plain().map(|n| n.raw()))
            .collect();
        assert_eq!(framed, vec![7, 8]);
    }

    #[test]
    fn removal_first_k() {
        let ks = keys();
        let mut pkt = honest_nested_packet(&ks, 0..5, 0);
        let plan = AttackPlan {
            remove: Some(RemovalStrategy::FirstK(2)),
            ..AttackPlan::passive()
        };
        let scheme = NestedMarking::new(MarkingConfig::default());
        let mut mole = ForwardingMole::new(NodeId(10), *ks.key(10).unwrap(), plan);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            mole.process(&mut pkt, &scheme, &mut rng),
            MoleAction::Forwarded
        );
        assert_eq!(pkt.mark_count(), 3);
        assert_eq!(pkt.marks[0].id.as_plain(), Some(NodeId(2)));
    }

    #[test]
    fn removal_all_and_by_id() {
        let ks = keys();
        let scheme = NestedMarking::new(MarkingConfig::default());
        let mut rng = StdRng::seed_from_u64(0);

        let mut pkt = honest_nested_packet(&ks, 0..5, 0);
        let mut mole = ForwardingMole::new(
            NodeId(10),
            *ks.key(10).unwrap(),
            AttackPlan {
                remove: Some(RemovalStrategy::All),
                ..AttackPlan::passive()
            },
        );
        mole.process(&mut pkt, &scheme, &mut rng);
        assert_eq!(pkt.mark_count(), 0);

        let mut pkt = honest_nested_packet(&ks, 0..5, 1);
        let mut mole = ForwardingMole::new(
            NodeId(10),
            *ks.key(10).unwrap(),
            AttackPlan {
                remove: Some(RemovalStrategy::Ids([1, 3].into())),
                ..AttackPlan::passive()
            },
        );
        mole.process(&mut pkt, &scheme, &mut rng);
        let ids: Vec<u16> = pkt
            .marks
            .iter()
            .filter_map(|m| m.id.as_plain().map(|n| n.raw()))
            .collect();
        assert_eq!(ids, vec![0, 2, 4]);
    }

    #[test]
    fn reorder_shuffles() {
        let ks = keys();
        let scheme = NestedMarking::new(MarkingConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let mut pkt = honest_nested_packet(&ks, 0..10, 0);
        let before = pkt.marks.clone();
        let mut mole = ForwardingMole::new(
            NodeId(10),
            *ks.key(10).unwrap(),
            AttackPlan {
                reorder: true,
                ..AttackPlan::passive()
            },
        );
        mole.process(&mut pkt, &scheme, &mut rng);
        assert_eq!(pkt.mark_count(), 10);
        assert_ne!(pkt.marks, before, "shuffle with 10 marks should differ");
        // Same multiset of marks.
        let mut a = before.iter().map(|m| format!("{m}")).collect::<Vec<_>>();
        let mut b = pkt.marks.iter().map(|m| format!("{m}")).collect::<Vec<_>>();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn alter_corrupts_macs() {
        let ks = keys();
        let scheme = NestedMarking::new(MarkingConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let mut pkt = honest_nested_packet(&ks, 0..4, 0);
        let original = pkt.marks[0].mac;
        let mut mole = ForwardingMole::new(
            NodeId(10),
            *ks.key(10).unwrap(),
            AttackPlan {
                alter: Some(AlterStrategy::Index(0)),
                ..AttackPlan::passive()
            },
        );
        mole.process(&mut pkt, &scheme, &mut rng);
        assert_ne!(pkt.marks[0].mac, original);
        assert_eq!(pkt.mark_count(), 4);
    }

    #[test]
    fn insertion_appends_fakes() {
        let ks = keys();
        let scheme = NestedMarking::new(MarkingConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let mut pkt = honest_nested_packet(&ks, 0..2, 0);
        let mut mole = ForwardingMole::new(
            NodeId(10),
            *ks.key(10).unwrap(),
            AttackPlan {
                insert_fake: 5,
                frame_ids: vec![9],
                ..AttackPlan::passive()
            },
        );
        mole.process(&mut pkt, &scheme, &mut rng);
        assert_eq!(pkt.mark_count(), 8);
    }

    #[test]
    fn selective_drop_sees_plain_ids() {
        let ks = keys();
        let scheme = NestedMarking::new(MarkingConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let plan = AttackPlan {
            drop_if_marked_by: [0].into(),
            ..AttackPlan::passive()
        };
        let mut mole = ForwardingMole::new(NodeId(10), *ks.key(10).unwrap(), plan);
        // Packet marked by node 0 -> dropped.
        let mut pkt = honest_nested_packet(&ks, 0..3, 0);
        assert_eq!(
            mole.process(&mut pkt, &scheme, &mut rng),
            MoleAction::Dropped
        );
        // Packet marked by 1,2 only -> forwarded.
        let mut pkt = honest_nested_packet(&ks, 1..3, 1);
        assert_eq!(
            mole.process(&mut pkt, &scheme, &mut rng),
            MoleAction::Forwarded
        );
        assert_eq!(mole.drops(), 1);
        assert_eq!(mole.forwards(), 1);
    }

    #[test]
    fn selective_drop_blind_to_anonymous_ids() {
        // The same attack against PNM: the mole cannot see who marked, so
        // packets marked by its victim sail through.
        let ks = keys();
        let cfg = MarkingConfig::builder().marking_probability(1.0).build();
        let scheme = ProbabilisticNestedMarking::new(cfg);
        let mut rng = StdRng::seed_from_u64(0);
        let plan = AttackPlan {
            drop_if_marked_by: [0, 1, 2].into(),
            ..AttackPlan::passive()
        };
        let mut mole = ForwardingMole::new(NodeId(10), *ks.key(10).unwrap(), plan);
        let report = Report::new(b"r".to_vec(), Location::default(), 0);
        let mut pkt = Packet::new(report);
        for i in 0..3u16 {
            let ctx = NodeContext::new(NodeId(i), *ks.key(i).unwrap());
            scheme.mark(&ctx, &mut pkt, &mut rng);
        }
        assert_eq!(pkt.mark_count(), 3);
        assert_eq!(
            mole.process(&mut pkt, &scheme, &mut rng),
            MoleAction::Forwarded,
            "anonymous marks must be opaque to the mole"
        );
    }

    #[test]
    fn identity_swap_uses_both_keys() {
        let ks = keys();
        let cfg = MarkingConfig::builder().marking_probability(1.0).build();
        let scheme = ProbabilisticNestedMarking::new(cfg);
        let mut rng = StdRng::seed_from_u64(0);
        let plan = AttackPlan {
            marking: MoleMarking::SwapWithPartner,
            ..AttackPlan::passive()
        };
        let mut mole = ForwardingMole::new(NodeId(10), *ks.key(10).unwrap(), plan)
            .with_partner(NodeId(0), *ks.key(0).unwrap());
        // Over many packets, both identities should appear; verify via the
        // sink (anon ids are opaque here, so check by verifying chains).
        let verifier = pnm_core::SinkVerifier::new(ks.clone());
        let mut seen = std::collections::BTreeSet::new();
        for seq in 0..40u64 {
            let report = Report::new(format!("r{seq}").into_bytes(), Location::default(), seq);
            let mut pkt = Packet::new(report);
            mole.process(&mut pkt, &scheme, &mut rng);
            let chain = verifier.verify(&pkt, pnm_core::VerifyMode::Nested);
            for n in chain.nodes {
                seen.insert(n.raw());
            }
        }
        assert!(seen.contains(&10), "own identity used: {seen:?}");
        assert!(seen.contains(&0), "partner identity used: {seen:?}");
    }

    #[test]
    fn honest_marking_leaves_valid_mark() {
        let ks = keys();
        let scheme = NestedMarking::new(MarkingConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let plan = AttackPlan {
            marking: MoleMarking::Honest,
            ..AttackPlan::passive()
        };
        let mut mole = ForwardingMole::new(NodeId(10), *ks.key(10).unwrap(), plan);
        let mut pkt = honest_nested_packet(&ks, 0..2, 0);
        mole.process(&mut pkt, &scheme, &mut rng);
        let verifier = pnm_core::SinkVerifier::new(ks);
        let chain = verifier.verify(&pkt, pnm_core::VerifyMode::Nested);
        assert!(chain.fully_verified());
        assert_eq!(chain.most_downstream(), Some(NodeId(10)));
    }

    #[test]
    fn adaptive_mole_rotates_plans() {
        let ks = keys();
        let scheme = NestedMarking::new(MarkingConfig::default());
        let plans = vec![
            AttackPlan::canonical(AttackKind::NoMark, &[]),
            AttackPlan::canonical(AttackKind::MarkRemoval, &[]),
        ];
        let mut mole = AdaptiveMole::new(NodeId(10), *ks.key(10).unwrap(), plans, 2);
        let mut rng = StdRng::seed_from_u64(0);
        let mut remove_phase_seen = false;
        for seq in 0..8u64 {
            let mut pkt = honest_nested_packet(&ks, 0..3, seq);
            let before = pkt.mark_count();
            mole.process(&mut pkt, &scheme, &mut rng);
            // Phase 0/1 per pair of packets: NoMark leaves marks intact;
            // MarkRemoval(FirstK(2)) strips two and marks honestly.
            if (seq / 2) % 2 == 1 {
                remove_phase_seen = true;
                assert_eq!(pkt.mark_count(), before - 2 + 1, "seq {seq}");
            } else {
                assert_eq!(pkt.mark_count(), before, "seq {seq}");
            }
        }
        assert!(remove_phase_seen);
    }

    #[test]
    #[should_panic(expected = "at least one plan")]
    fn adaptive_mole_rejects_empty_plans() {
        let ks = keys();
        let _ = AdaptiveMole::new(NodeId(1), *ks.key(1).unwrap(), vec![], 5);
    }

    #[test]
    fn canonical_plan_for_each_kind_runs() {
        let ks = keys();
        let scheme = NestedMarking::new(MarkingConfig::default());
        for kind in AttackKind::all() {
            let plan = AttackPlan::canonical(kind, &[0, 1]);
            let mut mole = ForwardingMole::new(NodeId(10), *ks.key(10).unwrap(), plan)
                .with_partner(NodeId(0), *ks.key(0).unwrap());
            let mut rng = StdRng::seed_from_u64(7);
            let mut pkt = honest_nested_packet(&ks, 0..4, 0);
            let _ = mole.process(&mut pkt, &scheme, &mut rng);
        }
    }
}
