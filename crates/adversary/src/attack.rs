//! The colluding-attack taxonomy of §2.2.
//!
//! Two moles cooperate: a **source mole** `S` injecting bogus reports and a
//! **forwarding mole** `X` on the path manipulating marks. The paper
//! enumerates seven attack classes; [`AttackKind`] names them and
//! [`AttackPlan`] configures a concrete, composable instance for the
//! forwarding mole to execute.

use core::fmt;
use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// The seven colluding attack classes of §2.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AttackKind {
    /// 1) The mole does not mark packets it forwards.
    NoMark,
    /// 2) The mole inserts faked marks (bogus IDs / garbage MACs).
    MarkInsertion,
    /// 3) The mole removes marks left by upstream nodes.
    MarkRemoval,
    /// 4) The mole re-orders existing marks.
    MarkReorder,
    /// 5) The mole alters existing marks, invalidating them.
    MarkAlter,
    /// 6) The mole selectively drops packets whose marks would expose it.
    SelectiveDrop,
    /// 7) `S` and `X` swap identities (they know each other's keys).
    IdentitySwap,
}

impl AttackKind {
    /// All seven attack classes, in taxonomy order.
    pub fn all() -> [AttackKind; 7] {
        [
            AttackKind::NoMark,
            AttackKind::MarkInsertion,
            AttackKind::MarkRemoval,
            AttackKind::MarkReorder,
            AttackKind::MarkAlter,
            AttackKind::SelectiveDrop,
            AttackKind::IdentitySwap,
        ]
    }

    /// The paper's name for the attack.
    pub fn as_str(&self) -> &'static str {
        match self {
            AttackKind::NoMark => "no-mark",
            AttackKind::MarkInsertion => "mark-insertion",
            AttackKind::MarkRemoval => "mark-removal",
            AttackKind::MarkReorder => "mark-reordering",
            AttackKind::MarkAlter => "mark-altering",
            AttackKind::SelectiveDrop => "selective-dropping",
            AttackKind::IdentitySwap => "identity-swapping",
        }
    }
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which existing marks a mark-removal attack strips.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RemovalStrategy {
    /// Remove every accumulated mark.
    All,
    /// Remove the first `k` (most-upstream) marks — the §3 example that
    /// makes extended AMS trace to an innocent node.
    FirstK(usize),
    /// Remove marks whose plain IDs are in this set (blind against
    /// anonymous IDs).
    Ids(BTreeSet<u16>),
}

/// Which existing marks a mark-altering attack corrupts.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlterStrategy {
    /// Corrupt every existing mark's MAC.
    All,
    /// Corrupt the mark at this index, if present.
    Index(usize),
    /// Corrupt marks whose plain IDs are in this set.
    Ids(BTreeSet<u16>),
}

/// A concrete, composable attack configuration for a forwarding mole.
///
/// Multiple manipulations may be active at once (§2.3: the mole may use
/// "any one or a combination" of the attacks). Manipulations are applied in
/// the listed order: drop-decision, removal, re-ordering, altering,
/// insertion; the marking decision (own mark / swapped mark / no mark)
/// happens last, like an honest node marking after processing.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AttackPlan {
    /// Drop packets that carry a plain-ID mark from any of these nodes
    /// (selective dropping; ineffective against anonymous IDs).
    pub drop_if_marked_by: BTreeSet<u16>,
    /// Strip marks per strategy.
    pub remove: Option<RemovalStrategy>,
    /// Shuffle surviving marks.
    pub reorder: bool,
    /// Corrupt surviving marks per strategy.
    pub alter: Option<AlterStrategy>,
    /// Insert this many faked marks (random IDs, garbage MACs).
    pub insert_fake: usize,
    /// Insert faked marks impersonating these specific (innocent) nodes.
    pub frame_ids: Vec<u16>,
    /// How the mole itself marks packets it forwards.
    pub marking: MoleMarking,
}

/// How a mole handles its own marking duty.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MoleMarking {
    /// Leave no mark at all (no-mark attack).
    #[default]
    Silent,
    /// Mark honestly with its own identity (to blend in).
    Honest,
    /// Alternate between its own identity and a colluding partner's
    /// (identity swapping) with probability 1/2 each.
    SwapWithPartner,
}

impl AttackPlan {
    /// A plan that performs no manipulation and never marks — the baseline
    /// "quiet mole".
    pub fn passive() -> Self {
        AttackPlan::default()
    }

    /// Builds the canonical single-attack plan used in the attack matrix.
    pub fn canonical(kind: AttackKind, upstream_ids: &[u16]) -> Self {
        let mut plan = AttackPlan::passive();
        match kind {
            AttackKind::NoMark => {
                plan.marking = MoleMarking::Silent;
            }
            AttackKind::MarkInsertion => {
                plan.insert_fake = 3;
                plan.marking = MoleMarking::Honest;
            }
            AttackKind::MarkRemoval => {
                plan.remove = Some(RemovalStrategy::FirstK(2));
                plan.marking = MoleMarking::Honest;
            }
            AttackKind::MarkReorder => {
                plan.reorder = true;
                plan.marking = MoleMarking::Honest;
            }
            AttackKind::MarkAlter => {
                plan.alter = Some(AlterStrategy::Index(0));
                plan.marking = MoleMarking::Honest;
            }
            AttackKind::SelectiveDrop => {
                // Drop packets marked by the most-upstream legitimate nodes
                // so the traceback stops at an innocent downstream node.
                plan.drop_if_marked_by = upstream_ids.iter().copied().collect();
                plan.marking = MoleMarking::Honest;
            }
            AttackKind::IdentitySwap => {
                plan.marking = MoleMarking::SwapWithPartner;
            }
        }
        plan
    }

    /// The attack classes this plan exercises.
    pub fn kinds(&self) -> Vec<AttackKind> {
        let mut kinds = Vec::new();
        if !self.drop_if_marked_by.is_empty() {
            kinds.push(AttackKind::SelectiveDrop);
        }
        if self.remove.is_some() {
            kinds.push(AttackKind::MarkRemoval);
        }
        if self.reorder {
            kinds.push(AttackKind::MarkReorder);
        }
        if self.alter.is_some() {
            kinds.push(AttackKind::MarkAlter);
        }
        if self.insert_fake > 0 || !self.frame_ids.is_empty() {
            kinds.push(AttackKind::MarkInsertion);
        }
        match self.marking {
            MoleMarking::Silent => kinds.push(AttackKind::NoMark),
            MoleMarking::SwapWithPartner => kinds.push(AttackKind::IdentitySwap),
            MoleMarking::Honest => {}
        }
        kinds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_seven_kinds() {
        let all = AttackKind::all();
        assert_eq!(all.len(), 7);
        let names: BTreeSet<&str> = all.iter().map(|k| k.as_str()).collect();
        assert_eq!(names.len(), 7, "names must be distinct");
    }

    #[test]
    fn display_matches_as_str() {
        for k in AttackKind::all() {
            assert_eq!(k.to_string(), k.as_str());
        }
    }

    #[test]
    fn canonical_plans_report_their_kind() {
        for kind in AttackKind::all() {
            let plan = AttackPlan::canonical(kind, &[1, 2]);
            assert!(plan.kinds().contains(&kind), "{kind}: {:?}", plan.kinds());
        }
    }

    #[test]
    fn passive_plan_is_no_mark_only() {
        let plan = AttackPlan::passive();
        assert_eq!(plan.kinds(), vec![AttackKind::NoMark]);
    }

    #[test]
    fn composite_plan_lists_all_kinds() {
        let plan = AttackPlan {
            drop_if_marked_by: [1].into(),
            remove: Some(RemovalStrategy::All),
            reorder: true,
            alter: Some(AlterStrategy::All),
            insert_fake: 1,
            frame_ids: vec![5],
            marking: MoleMarking::SwapWithPartner,
        };
        let kinds = plan.kinds();
        assert_eq!(kinds.len(), 6);
        assert!(!kinds.contains(&AttackKind::NoMark));
    }

    #[test]
    fn canonical_selective_drop_targets_upstream() {
        let plan = AttackPlan::canonical(AttackKind::SelectiveDrop, &[7, 8, 9]);
        assert_eq!(plan.drop_if_marked_by, [7, 8, 9].into());
    }
}
