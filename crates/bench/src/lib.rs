//! Criterion benchmark harness for the PNM reproduction.
//!
//! All benchmarks live in `benches/`:
//!
//! - `crypto_throughput` — SHA-256 / HMAC / anonymous-ID rates (§4.2
//!   feasibility anchors).
//! - `marking_overhead` — per-hop marking cost, packet byte overhead,
//!   MAC-width ablation.
//! - `sink_verification` — anonymous-ID table build (1000–4000 nodes),
//!   per-packet verification, topology-aware resolution ablation (§7).
//! - `traceback_e2e` — full honest runs and attack-cell evaluations.
//! - `figures` — reduced-scale regeneration of every paper figure/table.
