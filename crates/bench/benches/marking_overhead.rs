//! Per-hop marking cost and per-packet byte overhead — the trade-off that
//! motivates probabilistic marking (§4: nested marking's "drawback of
//! large message overhead").
//!
//! Series: per-hop mark cost for each scheme; end-of-path packet size for
//! nested vs PNM as the path grows; MAC-width ablation (DESIGN.md §6.1).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use pnm_core::{MarkingConfig, NodeContext};
use pnm_crypto::MacKey;
use pnm_sim::SchemeKind;
use pnm_wire::{Location, NodeId, Packet, Report};

fn fresh_packet() -> Packet {
    Packet::new(Report::new(
        b"bench-report".to_vec(),
        Location::new(1.0, 2.0),
        42,
    ))
}

/// One hop's marking work, per scheme (deterministic p=1 so every
/// iteration actually marks).
fn per_hop_marking(c: &mut Criterion) {
    let mut g = c.benchmark_group("per_hop_marking");
    let cfg = MarkingConfig::builder()
        .marking_probability(1.0)
        .mac_width(8)
        .build();
    for kind in SchemeKind::all() {
        let scheme = kind.build(cfg);
        let ctx = NodeContext::new(NodeId(3), MacKey::derive(b"bench", 3));
        g.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter_batched(
                fresh_packet,
                |mut pkt| {
                    scheme.mark(black_box(&ctx), &mut pkt, &mut rng);
                    pkt
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// Packet byte overhead at the sink after an n-hop path: nested (marks
/// every hop) vs PNM (np = 3). This is the paper's overhead argument as a
/// measured series.
fn path_overhead_bytes(c: &mut Criterion) {
    let mut g = c.benchmark_group("path_overhead_bytes");
    for n in [10u16, 20, 30] {
        for kind in [SchemeKind::Nested, SchemeKind::Pnm] {
            let cfg = MarkingConfig::builder()
                .target_marks_per_packet(3.0, n as usize)
                .build();
            let cfg = if kind == SchemeKind::Nested {
                MarkingConfig::builder().marking_probability(1.0).build()
            } else {
                cfg
            };
            let scheme = kind.build(cfg);
            let id = format!("{}_n{}", kind.name(), n);
            g.bench_function(BenchmarkId::from_parameter(id), |b| {
                let mut rng = StdRng::seed_from_u64(7);
                b.iter(|| {
                    let mut pkt = fresh_packet();
                    for hop in 0..n {
                        let ctx =
                            NodeContext::new(NodeId(hop), MacKey::derive(b"bench", hop as u64));
                        scheme.mark(&ctx, &mut pkt, &mut rng);
                    }
                    black_box(pkt.marking_overhead())
                })
            });
        }
    }
    g.finish();
}

/// MAC-width ablation: marking cost and packet size at widths 4/8/16/32.
fn mac_width_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("mac_width_ablation");
    for width in [4usize, 8, 16, 32] {
        let cfg = MarkingConfig::builder()
            .marking_probability(1.0)
            .mac_width(width)
            .build();
        let scheme = SchemeKind::Pnm.build(cfg);
        g.bench_function(BenchmarkId::from_parameter(width), |b| {
            let mut rng = StdRng::seed_from_u64(3);
            let ctx = NodeContext::new(NodeId(1), MacKey::derive(b"bench", 1));
            b.iter_batched(
                fresh_packet,
                |mut pkt| {
                    scheme.mark(&ctx, &mut pkt, &mut rng);
                    black_box(pkt.encoded_len())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// Wire-format serialization round-trip for a fully marked packet.
fn wire_round_trip(c: &mut Criterion) {
    let cfg = MarkingConfig::builder().marking_probability(1.0).build();
    let scheme = SchemeKind::Pnm.build(cfg);
    let mut rng = StdRng::seed_from_u64(4);
    let mut pkt = fresh_packet();
    for hop in 0..20u16 {
        let ctx = NodeContext::new(NodeId(hop), MacKey::derive(b"bench", hop as u64));
        scheme.mark(&ctx, &mut pkt, &mut rng);
    }
    let bytes = pkt.to_bytes();
    c.bench_function("packet_encode_20_marks", |b| {
        b.iter(|| black_box(&pkt).to_bytes())
    });
    c.bench_function("packet_decode_20_marks", |b| {
        b.iter(|| Packet::from_bytes(black_box(&bytes)).unwrap())
    });
}

criterion_group!(
    benches,
    per_hop_marking,
    path_overhead_bytes,
    mac_width_ablation,
    wire_round_trip
);
criterion_main!(benches);
