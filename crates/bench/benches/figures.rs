//! One bench target per paper figure/table: each benchmark regenerates a
//! reduced-scale version of the corresponding experiment, so `cargo bench`
//! exercises the full evaluation pipeline end to end. (Full-scale
//! regeneration is the `regen-figures` binary in `pnm-sim`.)

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};

use pnm_sim::{attack_matrix, fig4, fig5, identification_sweep, latency_table, AttackScenario};

fn figure4(c: &mut Criterion) {
    c.bench_function("figures/fig4_analytic_80pkts", |b| {
        b.iter(|| fig4(black_box(80)))
    });
}

fn figure5(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig5_sim_30runs", |b| b.iter(|| fig5(black_box(30), 20)));
    g.finish();
}

fn figures6and7(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig67_sweep_3runs", |b| {
        b.iter(|| identification_sweep(black_box(3)))
    });
    g.finish();
}

fn attack_matrix_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("attack_matrix_8hops_150pkts", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            attack_matrix(&AttackScenario {
                path_len: 8,
                mole_position: 4,
                packets: 150,
                seed,
            })
        })
    });
    g.finish();
}

fn latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("latency_table_200pkts", |b| {
        b.iter(|| latency_table(black_box(200), 50.0, 7))
    });
    g.finish();
}

criterion_group!(
    benches,
    figure4,
    figure5,
    figures6and7,
    attack_matrix_table,
    latency
);
criterion_main!(benches);
