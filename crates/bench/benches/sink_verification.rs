//! Sink-side verification cost — the §4.2 feasibility claims:
//! "building such a table for even a reasonably large network (a few
//! thousand nodes) should take on the order of a few milliseconds. Thus
//! the sink can verify several hundred or more packets per second."
//!
//! Series: anonymous-ID table build vs network size; per-packet nested
//! verification; topology-aware vs exhaustive resolution (§7 ablation).

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use pnm_core::{
    AnonTable, MarkingConfig, MarkingScheme, NodeContext, ProbabilisticNestedMarking, SinkConfig,
    SinkEngine, SinkVerifier, TopologyResolver, VerifyMode,
};
use pnm_crypto::{anon_id, KeyStore};
use pnm_net::Topology;
use pnm_wire::{Location, NodeId, Packet, Report};

fn report_packet() -> Packet {
    Packet::new(Report::new(
        b"sink-bench".to_vec(),
        Location::new(0.0, 0.0),
        1,
    ))
}

/// Anonymous-ID table build for 1000–4000-node networks ("a few ms").
fn anon_table_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("anon_table_build");
    g.sample_size(20);
    for n in [1000u16, 2000, 4000] {
        let keys = KeyStore::derive_from_master(b"sink-bench", n);
        let rb = report_packet().report.to_bytes();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &keys, |b, keys| {
            b.iter(|| AnonTable::build(black_box(keys), black_box(&rb)))
        });
    }
    g.finish();
}

/// Full per-packet verification (marking side pre-built): an n-hop PNM
/// packet with ~3 marks against a 1000-node key table — this is the
/// "several hundred packets per second" number.
fn packet_verification(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet_verification");
    g.sample_size(30);
    let network_size = 1000u16;
    let keys = KeyStore::derive_from_master(b"sink-bench", network_size);
    for path_len in [10u16, 20, 30] {
        let cfg = MarkingConfig::builder()
            .target_marks_per_packet(3.0, path_len as usize)
            .build();
        let scheme = ProbabilisticNestedMarking::new(cfg);
        let mut rng = StdRng::seed_from_u64(path_len as u64);
        // Build a representative marked packet (retry until ≥2 marks).
        let pkt = loop {
            let mut pkt = report_packet();
            for hop in 0..path_len {
                let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
                scheme.mark(&ctx, &mut pkt, &mut rng);
            }
            if pkt.mark_count() >= 2 {
                break pkt;
            }
        };
        let verifier = SinkVerifier::new(keys.clone());
        g.throughput(Throughput::Elements(1));
        g.bench_function(BenchmarkId::from_parameter(path_len), |b| {
            b.iter(|| verifier.verify(black_box(&pkt), VerifyMode::Nested))
        });
    }
    g.finish();
}

/// The same verification with a pre-shared anon table (the sink reuses the
/// table across marks of one packet — and across retransmissions).
fn packet_verification_shared_table(c: &mut Criterion) {
    let keys = KeyStore::derive_from_master(b"sink-bench", 1000);
    let cfg = MarkingConfig::builder().marking_probability(0.15).build();
    let scheme = ProbabilisticNestedMarking::new(cfg);
    let mut rng = StdRng::seed_from_u64(20);
    let pkt = loop {
        let mut pkt = report_packet();
        for hop in 0..20u16 {
            let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
            scheme.mark(&ctx, &mut pkt, &mut rng);
        }
        if pkt.mark_count() >= 2 {
            break pkt;
        }
    };
    let table = AnonTable::build(&keys, &pkt.report.to_bytes());
    let verifier = SinkVerifier::new(keys);
    c.bench_function("packet_verification_shared_table", |b| {
        b.iter(|| verifier.verify_nested_with_table(black_box(&pkt), black_box(&table)))
    });
}

/// §7 ablation: anonymous-ID resolution by exhaustive scan vs
/// topology-aware ring search on a 1000-node grid.
fn resolution_topology_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("anon_resolution");
    g.sample_size(30);
    let topo = Topology::grid(32, 32, 10.0); // 1024 nodes
    let n = topo.len() as u16;
    let keys = KeyStore::derive_from_master(b"sink-bench", n);
    let rb = report_packet().report.to_bytes();
    // Resolve node 500's anon id, anchored at its routing successor.
    let target = 500u16;
    let aid = anon_id(keys.key(target).unwrap(), &rb, target);
    let anchor = NodeId(target - 1);

    let table_keys = keys.clone();
    g.bench_function("exhaustive_table", |b| {
        b.iter(|| {
            let table = AnonTable::build(black_box(&table_keys), black_box(&rb));
            black_box(table.resolve(&aid).to_vec())
        })
    });

    let resolver = TopologyResolver::new(keys, topo.adjacency());
    g.bench_function("topology_ring_search", |b| {
        b.iter(|| resolver.resolve(black_box(&rb), black_box(&aid), Some(anchor)))
    });
    g.finish();
}

/// Staged-engine batch ingestion: 64 PNM packets spread over 4 reports
/// against a 1000-node key table. The engine's report-keyed table cache
/// amortizes anon-ID resolution across same-report packets, so batch
/// throughput is dominated by 4 table builds instead of 64.
fn engine_batch_ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_batch_ingest");
    g.sample_size(20);
    let keys = Arc::new(KeyStore::derive_from_master(b"sink-bench", 1000));
    let cfg = MarkingConfig::builder().marking_probability(0.15).build();
    let scheme = ProbabilisticNestedMarking::new(cfg);
    let mut rng = StdRng::seed_from_u64(64);
    let packets: Vec<Packet> = (0..64u64)
        .map(|seq| {
            let report = Report::new(
                format!("bench-report-{}", seq % 4).into_bytes(),
                Location::new(0.0, 0.0),
                seq,
            );
            let mut pkt = Packet::new(report);
            for hop in 0..20u16 {
                let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
                scheme.mark(&ctx, &mut pkt, &mut rng);
            }
            pkt
        })
        .collect();
    g.throughput(Throughput::Elements(packets.len() as u64));
    g.bench_function("cached_tables", |b| {
        b.iter(|| {
            let mut sink = SinkEngine::new(Arc::clone(&keys), SinkConfig::new(VerifyMode::Nested));
            black_box(sink.ingest_batch(black_box(&packets)))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    anon_table_build,
    packet_verification,
    packet_verification_shared_table,
    resolution_topology_ablation,
    engine_batch_ingest
);
criterion_main!(benches);
