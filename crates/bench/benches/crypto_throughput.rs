//! Crypto substrate throughput — grounding the paper's §4.2 feasibility
//! argument ("an Athlon 1.6G CPU can do 2.5 million hashes per second").
//!
//! Series: SHA-256 bulk throughput, small-message HMAC (the marking MAC),
//! anonymous-ID computation, and MAC verification.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pnm_crypto::{anon_id, anon_id_prepared, mark_mac_prepared, HmacSha256, MacKey, Sha256};

fn sha256_bulk(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256_bulk");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| Sha256::digest(black_box(data)))
        });
    }
    g.finish();
}

fn hmac_small_messages(c: &mut Criterion) {
    // Marking MACs cover a report (~30 B) plus accumulated marks; bench the
    // realistic sizes a forwarder and the sink actually hash.
    let mut g = c.benchmark_group("hmac_mark_sizes");
    let key = MacKey::derive(b"bench", 1);
    for size in [32usize, 64, 128, 256] {
        let msg = vec![0x5au8; size];
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::from_parameter(size), &msg, |b, msg| {
            b.iter(|| key.mark_mac(black_box(msg), 8))
        });
    }
    g.finish();
}

fn hmac_rate(c: &mut Criterion) {
    // The paper's anchor: millions of keyed hashes per second on a 2001-era
    // CPU. One element = one HMAC over a 64-byte message.
    let key = b"sink-side-key-material";
    let msg = [0u8; 64];
    let mut g = c.benchmark_group("hmac_rate");
    g.throughput(Throughput::Elements(1));
    g.bench_function("hmac_sha256_64B", |b| {
        b.iter(|| HmacSha256::mac(black_box(key), black_box(&msg)))
    });
    g.finish();
}

fn anon_id_computation(c: &mut Criterion) {
    let key = MacKey::derive(b"bench", 7);
    let report = vec![0x77u8; 30];
    let mut g = c.benchmark_group("anon_id");
    g.throughput(Throughput::Elements(1));
    g.bench_function("anon_id_30B_report", |b| {
        b.iter(|| anon_id(black_box(&key), black_box(&report), black_box(1234)))
    });
    g.finish();
}

fn precomputed_vs_oneshot(c: &mut Criterion) {
    // The PR-4 hot path: a prepared `HmacKey` stores the RFC 2104 pad-block
    // midstates, so every MAC saves two SHA-256 compressions over the
    // one-shot path that re-derives the pads per call.
    let key = MacKey::derive(b"bench", 9);
    let prepared = key.prepare();
    let msg = vec![0x3cu8; 40]; // report (~32 B) + 8-byte anon id
    let report = vec![0x77u8; 30];

    let mut g = c.benchmark_group("precomputed_vs_oneshot");
    g.throughput(Throughput::Elements(1));
    g.bench_function("mark_mac_oneshot_40B", |b| {
        b.iter(|| key.mark_mac(black_box(&msg), 8))
    });
    g.bench_function("mark_mac_prepared_40B", |b| {
        b.iter(|| mark_mac_prepared(black_box(&prepared), black_box(&msg), 8))
    });
    g.bench_function("anon_id_oneshot_30B", |b| {
        b.iter(|| anon_id(black_box(&key), black_box(&report), black_box(1234)))
    });
    g.bench_function("anon_id_prepared_30B", |b| {
        b.iter(|| anon_id_prepared(black_box(&prepared), black_box(&report), black_box(1234)))
    });
    g.finish();
}

fn mac_verification(c: &mut Criterion) {
    let key = MacKey::derive(b"bench", 2);
    let msg = vec![0x11u8; 96];
    let tag = key.mark_mac(&msg, 8);
    c.bench_function("verify_mark_mac_96B", |b| {
        b.iter(|| key.verify_mark_mac(black_box(&msg), black_box(&tag)))
    });
}

criterion_group!(
    benches,
    sha256_bulk,
    hmac_small_messages,
    hmac_rate,
    anon_id_computation,
    precomputed_vs_oneshot,
    mac_verification
);
criterion_main!(benches);
