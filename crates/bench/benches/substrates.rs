//! Substrate-level benchmarks: en-route filtering, route reconstruction
//! at scale, GPSR planarization/routing, and the traceback-baseline
//! comparison pipeline.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use pnm_core::RouteReconstructor;
use pnm_filter::{en_route_check, endorse, forge_report, sink_check, KeyPool, KeyRing};
use pnm_net::{gabriel_graph, gpsr_route, Topology};
use pnm_wire::{Location, NodeId, Report};

fn sef_checks(c: &mut Criterion) {
    let pool = KeyPool::new(b"bench-sef", 10, 8);
    let report = Report::new(b"event".to_vec(), Location::new(1.0, 1.0), 7);
    // Legitimate endorsement set.
    let mut rings: Vec<KeyRing> = Vec::new();
    let mut parts = std::collections::HashSet::new();
    for node in 0..1000u16 {
        let r = pool.assign_ring(node, 4);
        if parts.insert(r.partition) {
            rings.push(r);
            if rings.len() == 5 {
                break;
            }
        }
    }
    let refs: Vec<&KeyRing> = rings.iter().collect();
    let legit = endorse(&report, &refs, 5).expect("endorsed");
    let mut rng = StdRng::seed_from_u64(1);
    let forged = forge_report(&report, &refs[..1], 5, 10, &mut rng);
    let checker = pool.assign_ring(500, 4);

    let mut g = c.benchmark_group("sef");
    g.throughput(Throughput::Elements(1));
    g.bench_function("endorse_t5", |b| {
        b.iter(|| endorse(black_box(&report), black_box(&refs), 5))
    });
    g.bench_function("en_route_check_legit", |b| {
        b.iter(|| en_route_check(black_box(&checker), black_box(&legit), 5))
    });
    g.bench_function("en_route_check_forged", |b| {
        b.iter(|| en_route_check(black_box(&checker), black_box(&forged), 5))
    });
    g.bench_function("sink_check", |b| {
        b.iter(|| sink_check(black_box(&pool), black_box(&legit), 5))
    });
    g.finish();
}

fn reconstruction_scale(c: &mut Criterion) {
    // Order-matrix maintenance and localization at growing node counts.
    let mut g = c.benchmark_group("reconstruction");
    g.sample_size(20);
    for n in [50u16, 200, 1000] {
        // Pre-build a chain's worth of random 3-mark chains.
        let mut rng = StdRng::seed_from_u64(3);
        use rand::RngExt;
        let chains: Vec<Vec<NodeId>> = (0..500)
            .map(|_| {
                let mut ids: Vec<u16> = (0..3).map(|_| rng.random_range(0..n)).collect();
                ids.sort_unstable();
                ids.dedup();
                ids.into_iter().map(NodeId).collect()
            })
            .collect();
        g.bench_function(BenchmarkId::new("observe_and_localize", n), |b| {
            b.iter(|| {
                let mut r = RouteReconstructor::new();
                for chain in &chains {
                    r.observe_chain(chain);
                }
                black_box(r.localize())
            })
        });
    }
    g.finish();
}

fn gpsr_benches(c: &mut Criterion) {
    let topo = Topology::random_geometric(300, 200.0, 28.0, 11);
    let mut g = c.benchmark_group("gpsr");
    g.sample_size(20);
    g.bench_function("gabriel_graph_300", |b| {
        b.iter(|| gabriel_graph(black_box(&topo)))
    });
    // The farthest routable node.
    let src = (0..300u16)
        .filter(|&s| gpsr_route(&topo, s).is_some())
        .max_by_key(|&s| gpsr_route(&topo, s).map(|p| p.len()).unwrap_or(0))
        .expect("routable node");
    g.bench_function("gpsr_route_longest", |b| {
        b.iter(|| gpsr_route(black_box(&topo), black_box(src)))
    });
    g.finish();
}

criterion_group!(benches, sef_checks, reconstruction_scale, gpsr_benches);
criterion_main!(benches);
