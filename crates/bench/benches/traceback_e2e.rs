//! End-to-end traceback cost: a complete honest run (inject → mark →
//! verify → reconstruct → localize) and a complete attack-cell
//! evaluation, at the paper's parameters.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pnm_adversary::AttackKind;
use pnm_sim::{evaluate_cell, run_honest_path, AttackScenario, PathScenario, SchemeKind};

/// A full 50-packet honest PNM run at n = 10/20/30 (the Figure 5 inner
/// loop).
fn honest_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("honest_run_50pkts");
    g.sample_size(20);
    for n in [10u16, 20, 30] {
        let scenario = PathScenario::paper(n);
        g.bench_function(BenchmarkId::from_parameter(n), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_honest_path(black_box(&scenario), SchemeKind::Pnm, 50, seed)
            })
        });
    }
    g.finish();
}

/// Basic nested marking: single-packet traceback on a 20-hop path —
/// the §4.1 fast path.
fn nested_single_packet(c: &mut Criterion) {
    let scenario = PathScenario::paper(20);
    c.bench_function("nested_single_packet_20hops", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_honest_path(black_box(&scenario), SchemeKind::Nested, 1, seed)
        })
    });
}

/// One attack-matrix cell (PNM vs selective dropping, 300 packets) —
/// the cost of a full adversarial evaluation.
fn attack_cell(c: &mut Criterion) {
    let mut g = c.benchmark_group("attack_cell_300pkts");
    g.sample_size(10);
    for attack in [AttackKind::SelectiveDrop, AttackKind::MarkRemoval] {
        g.bench_function(BenchmarkId::from_parameter(attack.as_str()), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                evaluate_cell(
                    SchemeKind::Pnm,
                    attack,
                    &AttackScenario {
                        path_len: 10,
                        mole_position: 5,
                        packets: 300,
                        seed,
                    },
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, honest_run, nested_single_packet, attack_cell);
criterion_main!(benches);
