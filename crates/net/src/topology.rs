//! Static sensor-field topologies (§2.1: "a static sensor network where
//! sensor nodes do not move once deployed").
//!
//! Three generators cover the paper's settings and the examples:
//! [`Topology::chain`] (the evaluation's n-hop forwarding path),
//! [`Topology::grid`], and [`Topology::random_geometric`] (uniform random
//! deployment with a fixed radio range).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use pnm_wire::Location;

/// A deployed sensor field: node positions, a sink position, and a radio
/// range defining the connectivity graph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Topology {
    positions: Vec<Location>,
    sink: Location,
    radio_range: f32,
}

impl Topology {
    /// Builds a topology from explicit positions.
    ///
    /// # Panics
    ///
    /// Panics if `radio_range` is not strictly positive and finite, or if
    /// more than `u16::MAX` nodes are given.
    pub fn new(positions: Vec<Location>, sink: Location, radio_range: f32) -> Self {
        assert!(
            radio_range.is_finite() && radio_range > 0.0,
            "radio range must be positive, got {radio_range}"
        );
        assert!(
            positions.len() <= u16::MAX as usize,
            "at most {} nodes supported",
            u16::MAX
        );
        Topology {
            positions,
            sink,
            radio_range,
        }
    }

    /// A straight chain of `n` nodes ending at the sink: node `n-1` is the
    /// sink's neighbor and node `0` is the far end (where the paper's
    /// source mole injects). `spacing` must be within radio range.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn chain(n: u16, spacing: f32) -> Self {
        assert!(n > 0, "a chain needs at least one node");
        // Sink at origin; node i at distance (n - i) * spacing.
        let positions = (0..n)
            .map(|i| Location::new((n - i) as f32 * spacing, 0.0))
            .collect();
        Topology::new(positions, Location::new(0.0, 0.0), spacing * 1.2)
    }

    /// A `w × h` grid with the sink at the corner just outside `(0, 0)`.
    /// Radio range is 1.2× the spacing, so connectivity is 4-neighbor.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty.
    pub fn grid(w: u16, h: u16, spacing: f32) -> Self {
        assert!(w > 0 && h > 0, "grid must be non-empty");
        let mut positions = Vec::with_capacity(w as usize * h as usize);
        for y in 0..h {
            for x in 0..w {
                positions.push(Location::new(
                    (x as f32 + 1.0) * spacing,
                    y as f32 * spacing,
                ));
            }
        }
        Topology::new(positions, Location::new(0.0, 0.0), spacing * 1.2)
    }

    /// A ring of `n` nodes around the sink at radius `radius`; consecutive
    /// ring nodes are neighbors, and the node at angle 0 also hears the
    /// sink (radio range set accordingly). Useful for worst-case routing
    /// and loop-detection tests.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn ring(n: u16, radius: f32) -> Self {
        assert!(n >= 3, "a ring needs at least three nodes");
        let positions: Vec<Location> = (0..n)
            .map(|i| {
                let theta = std::f32::consts::TAU * i as f32 / n as f32;
                Location::new(radius * theta.cos(), radius * theta.sin())
            })
            .collect();
        // Chord length between adjacent ring nodes.
        let chord = 2.0 * radius * (std::f32::consts::PI / n as f32).sin();
        // Node 0 sits at (radius, 0); put the sink just inside it so only
        // node 0 (and maybe its neighbors) hear the sink.
        let sink = Location::new(radius - chord, 0.0);
        Topology::new(positions, sink, chord * 1.1)
    }

    /// `clusters` groups of `per_cluster` nodes each: cluster heads are
    /// spread on a line toward the sink, members scatter tightly around
    /// their head — the classic clustered deployment. Deterministic in
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn clustered(clusters: u16, per_cluster: u16, seed: u64) -> Self {
        use rand::RngExt;
        assert!(clusters > 0 && per_cluster > 0, "empty clustered topology");
        let mut rng = StdRng::seed_from_u64(seed);
        let spacing = 18.0f32;
        let mut positions = Vec::with_capacity(clusters as usize * per_cluster as usize);
        for c in 0..clusters {
            let cx = (c as f32 + 1.0) * spacing;
            let cy = 0.0f32;
            for _ in 0..per_cluster {
                positions.push(Location::new(
                    cx + rng.random_range(-6.0..6.0),
                    cy + rng.random_range(-6.0..6.0),
                ));
            }
        }
        Topology::new(positions, Location::new(0.0, 0.0), spacing * 1.3)
    }

    /// `n` nodes placed uniformly at random in a `side × side` square, sink
    /// at the center of the left edge, deterministic in `seed`.
    pub fn random_geometric(n: u16, side: f32, radio_range: f32, seed: u64) -> Self {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(seed);
        let positions = (0..n)
            .map(|_| Location::new(rng.random_range(0.0..side), rng.random_range(0.0..side)))
            .collect();
        Topology::new(positions, Location::new(0.0, side / 2.0), radio_range)
    }

    /// Number of deployed nodes (excluding the sink).
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` if no nodes are deployed.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The radio range in meters.
    pub fn radio_range(&self) -> f32 {
        self.radio_range
    }

    /// Position of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn position(&self, id: u16) -> Location {
        self.positions[id as usize]
    }

    /// The sink's position.
    pub fn sink_position(&self) -> Location {
        self.sink
    }

    /// Whether two nodes are within radio range of each other.
    pub fn in_range(&self, a: u16, b: u16) -> bool {
        a != b && self.position(a).distance(&self.position(b)) <= self.radio_range
    }

    /// Whether a node can reach the sink directly.
    pub fn sink_in_range(&self, id: u16) -> bool {
        self.position(id).distance(&self.sink) <= self.radio_range
    }

    /// One-hop neighbors of `id`.
    pub fn neighbors(&self, id: u16) -> Vec<u16> {
        (0..self.len() as u16)
            .filter(|&other| self.in_range(id, other))
            .collect()
    }

    /// Full adjacency map (node → one-hop neighbors), the structure the
    /// sink uses for topology-aware anonymous-ID resolution (§7).
    pub fn adjacency(&self) -> HashMap<u16, Vec<u16>> {
        (0..self.len() as u16)
            .map(|id| (id, self.neighbors(id)))
            .collect()
    }

    /// Whether every node can reach the sink through the connectivity
    /// graph (BFS from the sink side).
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.len()];
        let mut queue: Vec<u16> = (0..self.len() as u16)
            .filter(|&i| self.sink_in_range(i))
            .collect();
        for &q in &queue {
            seen[q as usize] = true;
        }
        while let Some(u) = queue.pop() {
            for v in self.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    queue.push(v);
                }
            }
        }
        seen.iter().all(|&s| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_structure() {
        let t = Topology::chain(5, 10.0);
        assert_eq!(t.len(), 5);
        assert!(t.is_connected());
        // Node 4 is nearest the sink.
        assert!(t.sink_in_range(4));
        assert!(!t.sink_in_range(0));
        // Interior node has exactly two neighbors.
        assert_eq!(t.neighbors(2), vec![1, 3]);
        // Ends have one.
        assert_eq!(t.neighbors(0), vec![1]);
        assert_eq!(t.neighbors(4), vec![3]);
    }

    #[test]
    fn single_node_chain() {
        let t = Topology::chain(1, 5.0);
        assert_eq!(t.len(), 1);
        assert!(t.sink_in_range(0));
        assert!(t.neighbors(0).is_empty());
        assert!(t.is_connected());
    }

    #[test]
    fn grid_connectivity() {
        let t = Topology::grid(4, 3, 10.0);
        assert_eq!(t.len(), 12);
        assert!(t.is_connected());
        // Corner node (x=0,y=0) = id 0 has 2 neighbors (4-connectivity).
        assert_eq!(t.neighbors(0).len(), 2);
        // Interior node has 4.
        assert_eq!(t.neighbors(5).len(), 4);
        // Only the left column reaches the sink... sink at (0, 0), node 0
        // at (spacing, 0): distance = spacing <= 1.2*spacing.
        assert!(t.sink_in_range(0));
        assert!(!t.sink_in_range(3));
    }

    #[test]
    fn random_geometric_is_seeded() {
        let a = Topology::random_geometric(50, 100.0, 20.0, 7);
        let b = Topology::random_geometric(50, 100.0, 20.0, 7);
        let c = Topology::random_geometric(50, 100.0, 20.0, 8);
        for i in 0..50u16 {
            assert_eq!(a.position(i).x, b.position(i).x);
        }
        assert!((0..50u16).any(|i| a.position(i).x != c.position(i).x));
    }

    #[test]
    fn dense_random_field_is_connected() {
        // 200 nodes, range comparable to the side: certainly connected.
        let t = Topology::random_geometric(200, 100.0, 40.0, 1);
        assert!(t.is_connected());
    }

    #[test]
    fn sparse_random_field_is_disconnected() {
        let t = Topology::random_geometric(10, 1000.0, 5.0, 1);
        assert!(!t.is_connected());
    }

    #[test]
    fn adjacency_matches_neighbors() {
        let t = Topology::grid(3, 3, 10.0);
        let adj = t.adjacency();
        assert_eq!(adj.len(), 9);
        for (id, neigh) in adj {
            assert_eq!(neigh, t.neighbors(id));
        }
    }

    #[test]
    fn in_range_is_symmetric_and_irreflexive() {
        let t = Topology::random_geometric(30, 50.0, 15.0, 3);
        for a in 0..30u16 {
            assert!(!t.in_range(a, a));
            for b in 0..30u16 {
                assert_eq!(t.in_range(a, b), t.in_range(b, a));
            }
        }
    }

    #[test]
    fn ring_structure() {
        let t = Topology::ring(12, 50.0);
        assert_eq!(t.len(), 12);
        assert!(t.is_connected(), "ring must reach the sink");
        // Each ring node has exactly its two ring neighbors.
        for i in 0..12u16 {
            let n = t.neighbors(i);
            assert_eq!(n.len(), 2, "node {i}: {n:?}");
            assert!(n.contains(&((i + 1) % 12)));
            assert!(n.contains(&((i + 11) % 12)));
        }
        // Only the nodes near angle 0 hear the sink.
        assert!(t.sink_in_range(0));
        assert!(!t.sink_in_range(6));
    }

    #[test]
    fn ring_routes_split_both_ways() {
        let t = Topology::ring(10, 40.0);
        let r = crate::routing::RoutingTable::tree(&t);
        assert_eq!(r.coverage(), 1.0);
        // The node opposite the sink is ~n/2 hops away.
        let far = r.hops_to_sink(5).unwrap();
        assert!((4..=7).contains(&far), "far = {far}");
    }

    #[test]
    fn clustered_is_connected_and_sized() {
        let t = Topology::clustered(5, 8, 3);
        assert_eq!(t.len(), 40);
        assert!(t.is_connected());
        // Intra-cluster density: most nodes have several neighbors.
        let mean_degree: f64 = (0..40u16).map(|i| t.neighbors(i).len() as f64).sum::<f64>() / 40.0;
        assert!(mean_degree >= 6.0, "mean degree {mean_degree}");
    }

    #[test]
    fn clustered_is_seeded() {
        let a = Topology::clustered(3, 4, 1);
        let b = Topology::clustered(3, 4, 1);
        let c = Topology::clustered(3, 4, 2);
        assert_eq!(a.position(5).x, b.position(5).x);
        assert!((0..12u16).any(|i| a.position(i).x != c.position(i).x));
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn tiny_ring_rejected() {
        let _ = Topology::ring(2, 10.0);
    }

    #[test]
    #[should_panic(expected = "radio range")]
    fn zero_range_rejected() {
        let _ = Topology::new(vec![], Location::default(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_chain_rejected() {
        let _ = Topology::chain(0, 1.0);
    }

    #[test]
    fn empty_topology_is_connected() {
        let t = Topology::new(vec![], Location::default(), 1.0);
        assert!(t.is_connected());
        assert!(t.is_empty());
    }
}
