//! GPSR — Greedy Perimeter Stateless Routing (Karp & Kung, the paper's
//! geographic-forwarding citation \[5]).
//!
//! [`RoutingTable::geographic`](crate::routing::RoutingTable::geographic)
//! implements only GPSR's greedy mode, which strands packets at local
//! minima ("voids"). This module adds the full algorithm:
//!
//! - [`gabriel_graph`] — planarizes the connectivity graph (an edge
//!   survives iff no witness node lies in the circle with the edge as
//!   diameter), as GPSR requires for correct face traversal.
//! - [`gpsr_route`] — greedy forwarding; on a local minimum, switch to
//!   perimeter mode and walk the planar face by the right-hand rule until
//!   reaching a node closer to the destination than where perimeter mode
//!   began, then resume greedy.
//!
//! Routes found this way are per-source paths (GPSR is stateless per
//! packet; with static nodes the path is stable, satisfying §2.1).

use pnm_wire::Location;

use crate::topology::Topology;

/// Builds the Gabriel-graph planar subgraph of the radio-connectivity
/// graph: the edge `(u, v)` is kept iff no other node `w` (within range of
/// `u`, per GPSR's distributed construction) lies strictly inside the
/// circle whose diameter is `uv`.
pub fn gabriel_graph(topology: &Topology) -> Vec<Vec<u16>> {
    let n = topology.len() as u16;
    let mut adj: Vec<Vec<u16>> = vec![Vec::new(); n as usize];
    for u in 0..n {
        'candidates: for v in topology.neighbors(u) {
            let pu = topology.position(u);
            let pv = topology.position(v);
            let mid = Location::new((pu.x + pv.x) / 2.0, (pu.y + pv.y) / 2.0);
            let radius = pu.distance(&pv) / 2.0;
            // Witnesses: nodes u can hear (distributed construction).
            for w in topology.neighbors(u) {
                if w == v {
                    continue;
                }
                if topology.position(w).distance(&mid) < radius {
                    continue 'candidates;
                }
            }
            adj[u as usize].push(v);
        }
    }
    // Symmetrize: an edge removed on either side is removed on both (GPSR
    // planarization must agree between endpoints).
    let mut sym: Vec<Vec<u16>> = vec![Vec::new(); n as usize];
    for u in 0..n {
        for &v in &adj[u as usize] {
            if adj[v as usize].contains(&u) {
                sym[u as usize].push(v);
            }
        }
    }
    sym
}

/// Angle of the vector from `a` to `b`, in radians.
fn bearing(a: Location, b: Location) -> f32 {
    (b.y - a.y).atan2(b.x - a.x)
}

/// The next edge counterclockwise from the reference bearing — GPSR's
/// right-hand rule (the packet walks the face with edges on its right).
fn right_hand_next(
    topology: &Topology,
    planar: &[Vec<u16>],
    at: u16,
    reference_bearing: f32,
) -> Option<u16> {
    let here = topology.position(at);
    planar[at as usize].iter().copied().min_by(|&a, &b| {
        let da = angle_ccw(reference_bearing, bearing(here, topology.position(a)));
        let db = angle_ccw(reference_bearing, bearing(here, topology.position(b)));
        da.partial_cmp(&db).expect("angles are finite")
    })
}

/// Counterclockwise angular distance from `from` to `to`, in `(0, 2π]`.
fn angle_ccw(from: f32, to: f32) -> f32 {
    let mut d = to - from;
    let tau = std::f32::consts::TAU;
    while d <= 1e-6 {
        d += tau;
    }
    while d > tau {
        d -= tau;
    }
    d
}

/// Forwarding mode in a GPSR route.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Greedy,
    /// Perimeter mode with the distance-to-sink at which it was entered.
    Perimeter {
        entry_distance_bits: u32,
    },
}

/// Computes the GPSR route from `source` to the sink: greedy where
/// possible, right-hand-rule perimeter traversal around voids. Returns the
/// node sequence `[source, …, last]` where `last` hears the sink, or
/// `None` if the packet loops without progress (disconnected, or the
/// planar traversal exhausts its TTL).
pub fn gpsr_route(topology: &Topology, source: u16) -> Option<Vec<u16>> {
    let sink = topology.sink_position();
    let planar = gabriel_graph(topology);
    let ttl = 4 * topology.len().max(8);

    let mut path = vec![source];
    let mut at = source;
    let mut mode = Mode::Greedy;
    let mut prev: Option<u16> = None;

    for _ in 0..ttl {
        if topology.sink_in_range(at) {
            return Some(path);
        }
        let here_dist = topology.position(at).distance(&sink);

        // Perimeter mode exits when progress beats the entry point.
        if let Mode::Perimeter {
            entry_distance_bits,
        } = mode
        {
            let entry = f32::from_bits(entry_distance_bits);
            if here_dist < entry {
                mode = Mode::Greedy;
            }
        }

        let next = match mode {
            Mode::Greedy => {
                let candidate = topology
                    .neighbors(at)
                    .into_iter()
                    .map(|v| (topology.position(v).distance(&sink), v))
                    .filter(|(d, _)| *d < here_dist)
                    .min_by(|a, b| a.partial_cmp(b).expect("finite"));
                match candidate {
                    Some((_, v)) => {
                        prev = Some(at);
                        v
                    }
                    None => {
                        // Local minimum: enter perimeter mode; first edge by
                        // right-hand rule relative to the bearing toward the
                        // sink.
                        mode = Mode::Perimeter {
                            entry_distance_bits: here_dist.to_bits(),
                        };
                        let reference = bearing(topology.position(at), sink);
                        let v = right_hand_next(topology, &planar, at, reference)?;
                        prev = Some(at);
                        v
                    }
                }
            }
            Mode::Perimeter { .. } => {
                // Continue the face: next edge CCW from the incoming edge.
                let p = prev.expect("perimeter always has a predecessor");
                let reference = bearing(topology.position(at), topology.position(p));
                let v = right_hand_next(topology, &planar, at, reference)?;
                prev = Some(at);
                v
            }
        };
        path.push(next);
        at = next;
    }
    None
}

// NOTE: GPSR deliberately does not materialize into a static
// `RoutingTable`: perimeter mode is per-packet state, and freezing each
// node's own first hop can create mutual voids (A detours via B while B's
// greedy choice is A). Use [`gpsr_route`] as a per-source source route —
// static nodes make that route stable, which is all §2.1 requires.

/// Fraction of nodes from which GPSR reaches the sink.
pub fn gpsr_coverage(topology: &Topology) -> f64 {
    if topology.is_empty() {
        return 1.0;
    }
    let reached = (0..topology.len() as u16)
        .filter(|&s| gpsr_route(topology, s).is_some())
        .count();
    reached as f64 / topology.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoutingTable;
    use pnm_wire::Location;

    /// A void deployment: the source's only neighbor is *farther* from the
    /// sink, so greedy forwarding is stuck; the connected arc around the
    /// void reaches the sink only via perimeter mode.
    fn void_shape() -> Topology {
        let positions = vec![
            Location::new(30.0, 0.0),  // 0: source, local minimum (d=30)
            Location::new(28.0, 12.0), // 1: d≈30.5 — farther than 0
            Location::new(20.0, 20.0), // 2: d≈28.3
            Location::new(10.0, 24.0), // 3: d=26
            Location::new(2.0, 14.0),  // 4: d≈14.1
            Location::new(1.0, 5.0),   // 5: d≈5.1, hears the sink
        ];
        Topology::new(positions, Location::new(0.0, 0.0), 13.0)
    }

    #[test]
    fn gabriel_graph_is_symmetric_subgraph() {
        let topo = Topology::random_geometric(60, 100.0, 30.0, 5);
        let g = gabriel_graph(&topo);
        for u in 0..60u16 {
            for &v in &g[u as usize] {
                assert!(topo.in_range(u, v), "gabriel edge not a radio edge");
                assert!(g[v as usize].contains(&u), "asymmetric edge {u}-{v}");
            }
        }
    }

    #[test]
    fn gabriel_graph_removes_crossing_chords() {
        // Dense field: the Gabriel graph has at most as many edges.
        let topo = Topology::random_geometric(60, 60.0, 30.0, 6);
        let g = gabriel_graph(&topo);
        let full: usize = (0..60u16).map(|u| topo.neighbors(u).len()).sum();
        let planar: usize = g.iter().map(Vec::len).sum();
        assert!(planar < full, "planarization removed nothing");
        assert!(planar > 0);
    }

    #[test]
    fn greedy_suffices_on_chain_and_grid() {
        for topo in [Topology::chain(8, 10.0), Topology::grid(5, 4, 10.0)] {
            for s in 0..topo.len() as u16 {
                let path = gpsr_route(&topo, s).expect("connected");
                assert_eq!(path[0], s);
                assert!(topo.sink_in_range(*path.last().unwrap()));
            }
        }
    }

    #[test]
    fn perimeter_mode_escapes_the_void() {
        let topo = void_shape();
        // Greedy alone is stuck at node 0: its only neighbor (1) is
        // farther from the sink.
        let greedy = RoutingTable::geographic(&topo);
        assert_eq!(
            greedy.next_hop(0),
            crate::routing::NextHop::Unreachable,
            "test geometry must make node 0 a local minimum"
        );
        // Full GPSR walks the perimeter around the void and delivers.
        let path = gpsr_route(&topo, 0).expect("perimeter recovery");
        assert_eq!(path[0], 0);
        assert!(topo.sink_in_range(*path.last().unwrap()), "{path:?}");
        // And it recovers for every node in the arc.
        assert_eq!(gpsr_coverage(&topo), 1.0);
    }

    #[test]
    fn gpsr_coverage_at_least_greedy() {
        for seed in [1u64, 2, 3] {
            let topo = Topology::random_geometric(80, 120.0, 28.0, seed);
            let greedy = RoutingTable::geographic(&topo).coverage();
            let gpsr = gpsr_coverage(&topo);
            assert!(
                gpsr >= greedy - 1e-9,
                "seed {seed}: gpsr {gpsr} < greedy {greedy}"
            );
        }
    }

    #[test]
    fn disconnected_source_returns_none() {
        let topo = Topology::random_geometric(10, 1000.0, 5.0, 1);
        let isolated = (0..10u16)
            .find(|&s| topo.neighbors(s).is_empty() && !topo.sink_in_range(s))
            .expect("sparse field");
        assert!(gpsr_route(&topo, isolated).is_none());
    }

    #[test]
    fn angle_ccw_wraps_correctly() {
        use std::f32::consts::{PI, TAU};
        assert!((angle_ccw(0.0, PI / 2.0) - PI / 2.0).abs() < 1e-6);
        assert!((angle_ccw(PI / 2.0, 0.0) - 3.0 * PI / 2.0).abs() < 1e-6);
        // Same direction wraps to a full turn, never zero.
        assert!((angle_ccw(1.0, 1.0) - TAU).abs() < 1e-5);
    }
}
