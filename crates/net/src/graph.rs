//! Connectivity analysis of the deployment graph.
//!
//! Isolation (§7) quarantines nodes — but quarantining a *cut vertex*
//! partitions the field, silencing innocent nodes behind it. These
//! helpers let a defender price that collateral before acting:
//! [`cut_vertices`] finds the articulation points of the connectivity
//! graph, and [`stranded_by`] counts which nodes lose their sink route if
//! a given set stops forwarding.

use std::collections::BTreeSet;

use crate::topology::Topology;

/// Articulation points (cut vertices) of the radio-connectivity graph,
/// computed with an iterative Tarjan DFS (low-link values).
pub fn cut_vertices(topology: &Topology) -> BTreeSet<u16> {
    let n = topology.len();
    let mut disc = vec![usize::MAX; n]; // discovery times
    let mut low = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];
    let mut cuts = BTreeSet::new();
    let mut timer = 0usize;

    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        let mut root_children = 0usize;
        // Explicit stack: (node, neighbor cursor).
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        disc[root] = timer;
        low[root] = timer;
        timer += 1;

        while let Some(&mut (u, ref mut cursor)) = stack.last_mut() {
            let neighbors = topology.neighbors(u as u16);
            if *cursor < neighbors.len() {
                let v = neighbors[*cursor] as usize;
                *cursor += 1;
                if disc[v] == usize::MAX {
                    parent[v] = u;
                    if u == root {
                        root_children += 1;
                    }
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    stack.push((v, 0));
                } else if v != parent[u] {
                    low[u] = low[u].min(disc[v]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p] = low[p].min(low[u]);
                    if p != root && low[u] >= disc[p] {
                        cuts.insert(p as u16);
                    }
                }
            }
        }
        if root_children > 1 {
            cuts.insert(root as u16);
        }
    }
    cuts
}

/// Nodes that lose every route to the sink if `removed` stop forwarding
/// (themselves excluded). Computed by BFS over the survivor subgraph from
/// the sink side.
pub fn stranded_by(topology: &Topology, removed: &BTreeSet<u16>) -> BTreeSet<u16> {
    let n = topology.len() as u16;
    let mut reachable = vec![false; n as usize];
    let mut queue: Vec<u16> = (0..n)
        .filter(|&i| !removed.contains(&i) && topology.sink_in_range(i))
        .collect();
    for &q in &queue {
        reachable[q as usize] = true;
    }
    while let Some(u) = queue.pop() {
        for v in topology.neighbors(u) {
            if !removed.contains(&v) && !reachable[v as usize] {
                reachable[v as usize] = true;
                queue.push(v);
            }
        }
    }
    (0..n)
        .filter(|&i| !removed.contains(&i) && !reachable[i as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnm_wire::Location;

    #[test]
    fn chain_interior_nodes_are_cuts() {
        let t = Topology::chain(6, 10.0);
        let cuts = cut_vertices(&t);
        // Every interior node of a chain is an articulation point.
        assert_eq!(cuts, (1..5).collect());
    }

    #[test]
    fn ring_has_no_cuts() {
        let t = Topology::ring(10, 40.0);
        assert!(cut_vertices(&t).is_empty(), "{:?}", cut_vertices(&t));
    }

    #[test]
    fn grid_has_no_cuts() {
        let t = Topology::grid(4, 4, 10.0);
        assert!(cut_vertices(&t).is_empty());
    }

    #[test]
    fn barbell_center_is_cut() {
        // Two triangles joined by one bridge node.
        let positions = vec![
            Location::new(0.0, 0.0),
            Location::new(7.0, 0.0),
            Location::new(3.5, 6.0),
            Location::new(14.0, 0.0), // bridge: only neighbors are 1 and 4
            Location::new(21.0, 0.0),
            Location::new(28.0, 0.0),
            Location::new(24.5, 6.0),
        ];
        let t = Topology::new(positions, Location::new(-4.0, 0.0), 8.0);
        assert_eq!(t.neighbors(3), vec![1, 4], "bridge wiring");
        let cuts = cut_vertices(&t);
        assert!(cuts.contains(&3), "{cuts:?}");
        // The bridge's endpoints are also articulation points.
        assert!(cuts.contains(&1) && cuts.contains(&4), "{cuts:?}");
    }

    #[test]
    fn stranding_matches_cut_structure() {
        let t = Topology::chain(8, 10.0);
        // Removing node 5 strands everything upstream of it (0..5).
        let removed: BTreeSet<u16> = [5].into();
        let stranded = stranded_by(&t, &removed);
        assert_eq!(stranded, (0..5).collect());
        // Removing a grid node strands nobody.
        let g = Topology::grid(4, 4, 10.0);
        assert!(stranded_by(&g, &[5].into()).is_empty());
    }

    #[test]
    fn stranding_empty_removal_is_empty() {
        let t = Topology::chain(5, 10.0);
        assert!(stranded_by(&t, &BTreeSet::new()).is_empty());
    }

    #[test]
    fn quarantine_collateral_on_random_field() {
        // On a well-connected field, quarantining a typical one-hop
        // neighborhood strands few or no innocents — the quantified
        // justification for OneHopNeighborhood isolation.
        let t = Topology::random_geometric(200, 100.0, 30.0, 5);
        assert!(t.is_connected());
        let victim = 100u16;
        let mut removed: BTreeSet<u16> = t.neighbors(victim).into_iter().collect();
        removed.insert(victim);
        let stranded = stranded_by(&t, &removed);
        assert!(
            stranded.len() < 20,
            "quarantine stranded {} innocents",
            stranded.len()
        );
    }
}
