//! Radio model with Mica2-like parameters.
//!
//! The paper grounds its feasibility arguments in Mica2 hardware: a
//! 19.2 kbps radio moving roughly 50 packets per second (§4.2, footnote 6).
//! [`RadioModel`] converts packet sizes to per-hop transmission times and
//! applies an optional i.i.d. loss probability.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-hop radio characteristics.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RadioModel {
    /// Radio bitrate in bits per second.
    pub bitrate_bps: u64,
    /// Fixed per-hop processing + MAC-layer latency in microseconds.
    pub per_hop_latency_us: u64,
    /// Independent per-hop loss probability in `[0, 1]`.
    pub loss_probability: f64,
}

impl RadioModel {
    /// Mica2 defaults: 19.2 kbps, 2 ms per-hop latency, lossless.
    pub fn mica2() -> Self {
        RadioModel {
            bitrate_bps: 19_200,
            per_hop_latency_us: 2_000,
            loss_probability: 0.0,
        }
    }

    /// Returns a copy with the given loss probability. The closed range
    /// `[0, 1]` is accepted: `p = 1.0` models a total blackout, a
    /// legitimate fault scenario.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability {p} not in [0,1]"
        );
        self.loss_probability = p;
        self
    }

    /// Time to push `bytes` over one hop, in microseconds (serialization
    /// time plus fixed latency).
    pub fn hop_time_us(&self, bytes: usize) -> u64 {
        let bits = bytes as u64 * 8;
        bits * 1_000_000 / self.bitrate_bps + self.per_hop_latency_us
    }

    /// Whether a transmission on one hop is lost.
    pub fn is_lost(&self, rng: &mut dyn Rng) -> bool {
        if self.loss_probability <= 0.0 {
            return false;
        }
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < self.loss_probability
    }

    /// Steady-state packet throughput for packets of `bytes` size, per
    /// second (the "~50 packets per second" sanity figure).
    pub fn packets_per_second(&self, bytes: usize) -> f64 {
        1_000_000.0 / self.hop_time_us(bytes) as f64
    }
}

impl Default for RadioModel {
    fn default() -> Self {
        Self::mica2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mica2_is_roughly_50_pps() {
        // A ~36-byte TinyOS frame at 19.2kbps ≈ 15ms + 2ms latency ≈ 58 pps.
        let r = RadioModel::mica2();
        let pps = r.packets_per_second(36);
        assert!((40.0..80.0).contains(&pps), "pps = {pps}");
    }

    #[test]
    fn hop_time_scales_with_bytes() {
        let r = RadioModel::mica2();
        assert!(r.hop_time_us(100) > r.hop_time_us(10));
        assert_eq!(r.hop_time_us(0), r.per_hop_latency_us);
    }

    #[test]
    fn lossless_never_drops() {
        let r = RadioModel::mica2();
        let mut rng = StdRng::seed_from_u64(0);
        assert!((0..1000).all(|_| !r.is_lost(&mut rng)));
    }

    #[test]
    fn loss_rate_is_honored() {
        let r = RadioModel::mica2().with_loss(0.3);
        let mut rng = StdRng::seed_from_u64(0);
        let losses = (0..20_000).filter(|_| r.is_lost(&mut rng)).count();
        let rate = losses as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn total_blackout_is_a_valid_loss_rate() {
        let r = RadioModel::mica2().with_loss(1.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert!((0..1000).all(|_| r.is_lost(&mut rng)));
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_rejected() {
        let _ = RadioModel::mica2().with_loss(1.5);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn negative_loss_rejected() {
        let _ = RadioModel::mica2().with_loss(-0.1);
    }
}
