//! Per-node energy accounting.
//!
//! A core motivation for traceback is that bogus traffic "wastes energy and
//! bandwidth resources along the forwarding path" (§1). The ledger
//! quantifies exactly that waste, using Mica2-class radio costs.

use serde::{Deserialize, Serialize};

/// Energy cost parameters, in nanojoules per byte.
///
/// Defaults follow the commonly used Mica2 figures (~16.25 µJ/byte
/// transmit, ~12.5 µJ/byte receive at 3V).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Transmit cost per byte, nanojoules.
    pub tx_nj_per_byte: u64,
    /// Receive cost per byte, nanojoules.
    pub rx_nj_per_byte: u64,
}

impl EnergyModel {
    /// Mica2-class defaults.
    pub fn mica2() -> Self {
        EnergyModel {
            tx_nj_per_byte: 16_250,
            rx_nj_per_byte: 12_500,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::mica2()
    }
}

/// Accumulated per-node energy expenditure for one simulation.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EnergyLedger {
    /// tx_nj[i] = nanojoules node i spent transmitting.
    tx_nj: Vec<u64>,
    /// rx_nj[i] = nanojoules node i spent receiving.
    rx_nj: Vec<u64>,
}

impl EnergyLedger {
    /// Creates a ledger for `n` nodes.
    pub fn new(n: usize) -> Self {
        EnergyLedger {
            tx_nj: vec![0; n],
            rx_nj: vec![0; n],
        }
    }

    /// Charges node `id` for transmitting `bytes`.
    pub fn charge_tx(&mut self, model: &EnergyModel, id: u16, bytes: usize) {
        if let Some(e) = self.tx_nj.get_mut(id as usize) {
            *e += model.tx_nj_per_byte * bytes as u64;
        }
    }

    /// Charges node `id` for receiving `bytes`.
    pub fn charge_rx(&mut self, model: &EnergyModel, id: u16, bytes: usize) {
        if let Some(e) = self.rx_nj.get_mut(id as usize) {
            *e += model.rx_nj_per_byte * bytes as u64;
        }
    }

    /// Total nanojoules spent by node `id` (tx + rx).
    pub fn node_total_nj(&self, id: u16) -> u64 {
        let i = id as usize;
        self.tx_nj.get(i).copied().unwrap_or(0) + self.rx_nj.get(i).copied().unwrap_or(0)
    }

    /// Total nanojoules spent network-wide.
    pub fn network_total_nj(&self) -> u64 {
        self.tx_nj.iter().sum::<u64>() + self.rx_nj.iter().sum::<u64>()
    }

    /// Network-wide total in millijoules (convenience for reports).
    pub fn network_total_mj(&self) -> f64 {
        self.network_total_nj() as f64 / 1e6
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.tx_nj.len()
    }

    /// `true` if no node is tracked.
    pub fn is_empty(&self) -> bool {
        self.tx_nj.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let model = EnergyModel::mica2();
        let mut ledger = EnergyLedger::new(3);
        ledger.charge_tx(&model, 0, 100);
        ledger.charge_rx(&model, 0, 100);
        ledger.charge_tx(&model, 1, 50);
        assert_eq!(
            ledger.node_total_nj(0),
            100 * (model.tx_nj_per_byte + model.rx_nj_per_byte)
        );
        assert_eq!(ledger.node_total_nj(1), 50 * model.tx_nj_per_byte);
        assert_eq!(ledger.node_total_nj(2), 0);
        assert_eq!(
            ledger.network_total_nj(),
            ledger.node_total_nj(0) + ledger.node_total_nj(1)
        );
    }

    #[test]
    fn out_of_range_charges_ignored() {
        let model = EnergyModel::mica2();
        let mut ledger = EnergyLedger::new(1);
        ledger.charge_tx(&model, 9, 100);
        assert_eq!(ledger.network_total_nj(), 0);
        assert_eq!(ledger.node_total_nj(9), 0);
    }

    #[test]
    fn mj_conversion() {
        let model = EnergyModel {
            tx_nj_per_byte: 1_000_000,
            rx_nj_per_byte: 0,
        };
        let mut ledger = EnergyLedger::new(1);
        ledger.charge_tx(&model, 0, 1000);
        assert!((ledger.network_total_mj() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_ledger() {
        let ledger = EnergyLedger::new(0);
        assert!(ledger.is_empty());
        assert_eq!(ledger.network_total_nj(), 0);
    }
}
