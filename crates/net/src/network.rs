//! The composed network simulator: topology + routing + radio + energy,
//! driving packets hop by hop through user-supplied node behavior.
//!
//! The [`NodeHandler`] callback is where marking schemes and moles plug in:
//! `pnm-sim` installs honest markers on legitimate nodes and
//! `pnm-adversary` moles at compromised positions. This crate stays
//! independent of those policies.

use rand::rngs::StdRng;
use rand::SeedableRng;

use pnm_obs::{Counter, Registry, Tracer};
use pnm_wire::Packet;

use crate::des::EventQueue;
use crate::energy::{EnergyLedger, EnergyModel};
use crate::faults::{FaultPlan, FaultState};
use crate::radio::RadioModel;
use crate::routing::{NextHop, RoutingTable};
use crate::topology::Topology;

/// What a node does with a packet it is about to forward.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeDecision {
    /// Transmit toward the sink (after any in-place manipulation).
    Forward,
    /// Silently drop the packet.
    Drop,
}

/// Per-node forwarding behavior: marking schemes, moles, filters.
pub trait NodeHandler {
    /// Called once per node per packet, before transmission. May mutate
    /// the packet (e.g., append a mark) and decides whether to forward.
    fn on_forward(
        &mut self,
        node: u16,
        packet: &mut Packet,
        now_us: u64,
        rng: &mut StdRng,
    ) -> NodeDecision;
}

impl<F> NodeHandler for F
where
    F: FnMut(u16, &mut Packet, u64, &mut StdRng) -> NodeDecision,
{
    fn on_forward(
        &mut self,
        node: u16,
        packet: &mut Packet,
        now_us: u64,
        rng: &mut StdRng,
    ) -> NodeDecision {
        self(node, packet, now_us, rng)
    }
}

/// A packet injection request: `source` originates `packet` at `time_us`.
#[derive(Clone, Debug)]
pub struct Injection {
    /// Originating node.
    pub source: u16,
    /// The packet to inject (marks may be pre-loaded by a source mole).
    pub packet: Packet,
    /// Absolute injection time in microseconds.
    pub time_us: u64,
}

/// One packet received at the sink.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// The packet exactly as the sink received it.
    pub packet: Packet,
    /// Arrival time in microseconds.
    pub time_us: u64,
    /// The node that originated it (ground truth, for evaluation only —
    /// the sink does not see this).
    pub source: u16,
}

/// A frame that reached the sink so bit-corrupted it no longer decodes.
///
/// Mid-path, such frames are dropped (the receiving node's decoder rejects
/// them); on the final hop the sink sees the raw bytes and must reject
/// them itself — this is the input class that exercises
/// `SinkEngine::ingest_bytes` totality.
#[derive(Clone, Debug)]
pub struct GarbledDelivery {
    /// The corrupted frame exactly as received.
    pub bytes: Vec<u8>,
    /// Arrival time in microseconds.
    pub time_us: u64,
    /// The node that originated it (ground truth, for evaluation only).
    pub source: u16,
}

/// Tallies of every fault the [`FaultPlan`] injected during one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Transmissions eaten by the Gilbert–Elliott bursty channel.
    pub burst_losses: usize,
    /// Transmissions duplicated at the receiver.
    pub duplicates: usize,
    /// Transmissions held back by extra reordering delay.
    pub reordered: usize,
    /// Transmissions whose payload suffered at least one bit flip.
    pub corrupted: usize,
    /// Corrupted frames dropped mid-path because they no longer decode.
    pub corrupt_drops: usize,
    /// Corrupted frames that reached the sink undecodable (see
    /// [`SimReport::garbled`]).
    pub garbled_deliveries: usize,
}

impl FaultCounters {
    /// Total transmissions affected by any injected fault.
    pub fn total(&self) -> usize {
        self.burst_losses + self.duplicates + self.reordered + self.corrupted
    }
}

/// Aggregate outcome of one simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Packets received at the sink, in arrival order.
    pub deliveries: Vec<Delivery>,
    /// Undecodable corrupted frames received at the sink, in arrival order.
    pub garbled: Vec<GarbledDelivery>,
    /// Packets lost to radio errors.
    pub radio_losses: usize,
    /// Packets dropped by node behavior (filters, selective-drop moles).
    pub node_drops: usize,
    /// Packets that hit a routing dead end.
    pub undeliverable: usize,
    /// Per-fault injection tallies (all zero without a fault plan).
    pub faults: FaultCounters,
    /// Per-node energy expenditure.
    pub ledger: EnergyLedger,
    /// Time of the last event processed, in microseconds.
    pub end_time_us: u64,
}

impl SimReport {
    /// Fraction of injected packets that reached the sink.
    pub fn delivery_rate(&self, injected: usize) -> f64 {
        if injected == 0 {
            return 1.0;
        }
        self.deliveries.len() as f64 / injected as f64
    }
}

/// A static sensor network ready to simulate.
#[derive(Clone, Debug)]
pub struct Network {
    topology: Topology,
    routing: RoutingTable,
    radio: RadioModel,
    energy: EnergyModel,
    contention: bool,
    faults: Option<FaultPlan>,
    tracer: Tracer,
    metrics: Option<Registry>,
}

/// Registry handles for the fault tallies, resolved once per run so the
/// per-fault cost is a single relaxed atomic add. Series share one metric
/// name (`pnm_net_faults_total`) with a `kind` label per fault class —
/// the registry-backed view of [`FaultCounters`].
struct FaultSeries {
    burst_losses: Counter,
    duplicates: Counter,
    reordered: Counter,
    corrupted: Counter,
    corrupt_drops: Counter,
    garbled_deliveries: Counter,
}

impl FaultSeries {
    fn new(registry: &Registry) -> Self {
        let c = |kind: &str| registry.counter("pnm_net_faults_total", &[("kind", kind)]);
        FaultSeries {
            burst_losses: c("burst_loss"),
            duplicates: c("duplicate"),
            reordered: c("reorder"),
            corrupted: c("corrupt"),
            corrupt_drops: c("corrupt_drop"),
            garbled_deliveries: c("garbled"),
        }
    }
}

/// In-flight event: `holder` is about to run its forwarding behavior.
#[derive(Clone, Debug)]
struct InFlight {
    holder: u16,
    packet: Packet,
    source: u16,
}

impl Network {
    /// Assembles a network with BFS tree routing and Mica2 radio/energy
    /// defaults.
    pub fn new(topology: Topology) -> Self {
        let routing = RoutingTable::tree(&topology);
        Network {
            topology,
            routing,
            radio: RadioModel::mica2(),
            energy: EnergyModel::mica2(),
            contention: false,
            faults: None,
            tracer: Tracer::noop(),
            metrics: None,
        }
    }

    /// Enables per-node radio contention: a node serializes its
    /// transmissions, so a packet arriving while the radio is busy queues
    /// behind the transmission in progress (half-duplex, FIFO). Off by
    /// default, matching the paper's idealized per-packet analysis.
    pub fn with_contention(mut self) -> Self {
        self.contention = true;
        self
    }

    /// Replaces the routing table (e.g., geographic forwarding).
    pub fn with_routing(mut self, routing: RoutingTable) -> Self {
        self.routing = routing;
        self
    }

    /// Replaces the radio model.
    pub fn with_radio(mut self, radio: RadioModel) -> Self {
        self.radio = radio;
        self
    }

    /// Replaces the energy model.
    pub fn with_energy(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// Installs a fault-injection plan (bursty loss, duplication,
    /// reordering, corruption). The plan draws from its own seeded RNG, so
    /// an all-off plan reproduces the fault-free run bit-for-bit.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Attaches a tracer: each injected fault then emits an instant event
    /// (`net.fault.burst_loss`, `net.fault.corrupt`, `net.fault.reorder`,
    /// `net.fault.duplicate`, `net.fault.corrupt_drop`,
    /// `net.fault.garbled`) with the faulting node/frame context. The
    /// default noop tracer costs one branch per fault site.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attaches a metrics registry: fault tallies are then mirrored live
    /// into the `pnm_net_faults_total{kind=...}` counter family, one
    /// series per [`FaultCounters`] field, in addition to the per-run
    /// counts in [`SimReport::faults`].
    pub fn with_metrics(mut self, registry: Registry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// The deployed topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The routing table in force.
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// The radio model in force.
    pub fn radio(&self) -> &RadioModel {
        &self.radio
    }

    /// Runs a discrete-event simulation of the given injections.
    ///
    /// Each hop: the holder's [`NodeHandler`] runs (possibly mutating the
    /// packet), then the packet is transmitted to the holder's next hop
    /// with radio delay/loss and energy charges. Packets reaching the sink
    /// are recorded as [`Delivery`]s.
    pub fn simulate<H: NodeHandler>(
        &self,
        injections: Vec<Injection>,
        handler: &mut H,
        seed: u64,
    ) -> SimReport {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut queue: EventQueue<InFlight> = EventQueue::new();
        let injected = injections.len();
        for inj in injections {
            queue.schedule(
                inj.time_us,
                InFlight {
                    holder: inj.source,
                    packet: inj.packet,
                    source: inj.source,
                },
            );
        }

        let mut report = SimReport {
            deliveries: Vec::with_capacity(injected),
            garbled: Vec::new(),
            radio_losses: 0,
            node_drops: 0,
            undeliverable: 0,
            faults: FaultCounters::default(),
            ledger: EnergyLedger::new(self.topology.len()),
            end_time_us: 0,
        };
        // Per-node radio-busy horizon for the contention model.
        let mut busy_until = vec![0u64; self.topology.len()];
        // The fault layer draws from its own RNG stream so that enabling
        // an all-off plan cannot perturb the simulation RNG.
        let mut faults = self.faults.map(|p| FaultState::new(p, self.topology.len()));
        let tracer = self.tracer.clone();
        let series = self.metrics.as_ref().map(FaultSeries::new);

        while let Some((now, mut ev)) = queue.pop() {
            report.end_time_us = now;
            // Node behavior (marking, mole manipulation, filtering).
            match handler.on_forward(ev.holder, &mut ev.packet, now, &mut rng) {
                NodeDecision::Drop => {
                    report.node_drops += 1;
                    continue;
                }
                NodeDecision::Forward => {}
            }
            // Transmission toward the next hop.
            let bytes = ev.packet.encoded_len();
            let next = self.routing.next_hop(ev.holder);
            if next == NextHop::Unreachable {
                report.undeliverable += 1;
                continue;
            }
            report.ledger.charge_tx(&self.energy, ev.holder, bytes);
            // Injected bursty loss consumes the transmission just like a
            // radio error (energy already spent).
            if let Some(fs) = faults.as_mut() {
                if fs.burst_lost(ev.holder) {
                    report.faults.burst_losses += 1;
                    if let Some(s) = &series {
                        s.burst_losses.inc();
                    }
                    tracer.event_with("net.fault.burst_loss", |f| {
                        f.push(("node", ev.holder.into()));
                        f.push(("at_sim_us", now.into()));
                    });
                    continue;
                }
            }
            if self.radio.is_lost(&mut rng) {
                report.radio_losses += 1;
                continue;
            }
            // Injected corruption: re-encode the frame, flip bits, try to
            // decode what the receiver would see. A frame that no longer
            // decodes is dropped mid-path; on the sink hop its raw bytes
            // are delivered as a garbled frame.
            let mut garbled_bytes: Option<Vec<u8>> = None;
            if let Some(fs) = faults.as_mut() {
                if fs.plan().corrupt_byte_probability > 0.0 {
                    let mut raw = ev.packet.to_bytes();
                    let flips = fs.corrupt(&mut raw);
                    if flips > 0 {
                        report.faults.corrupted += 1;
                        if let Some(s) = &series {
                            s.corrupted.inc();
                        }
                        let decodes = match Packet::from_bytes(&raw) {
                            Ok(p) => {
                                ev.packet = p;
                                true
                            }
                            Err(_) => {
                                garbled_bytes = Some(raw);
                                false
                            }
                        };
                        tracer.event_with("net.fault.corrupt", |f| {
                            f.push(("node", ev.holder.into()));
                            f.push(("flips", flips.into()));
                            f.push(("decodes", decodes.into()));
                        });
                    }
                }
            }
            let delay = self.radio.hop_time_us(bytes);
            // With contention, the transmission waits for the node's radio.
            let tx_start = if self.contention {
                let start = now.max(busy_until[ev.holder as usize]);
                busy_until[ev.holder as usize] = start + delay;
                start
            } else {
                now
            };
            let mut arrival = tx_start + delay;
            // Injected reordering: extra propagation delay that lets later
            // frames overtake this one. Duplication re-delivers the same
            // frame (MAC-layer retransmission whose ack was lost).
            let mut copies = 1usize;
            if let Some(fs) = faults.as_mut() {
                let extra = fs.reorder_delay_us();
                if extra > 0 {
                    report.faults.reordered += 1;
                    if let Some(s) = &series {
                        s.reordered.inc();
                    }
                    tracer.event_with("net.fault.reorder", |f| {
                        f.push(("node", ev.holder.into()));
                        f.push(("delay_us", extra.into()));
                    });
                    arrival += extra;
                }
                if fs.duplicated() {
                    report.faults.duplicates += 1;
                    if let Some(s) = &series {
                        s.duplicates.inc();
                    }
                    tracer.event_with("net.fault.duplicate", |f| {
                        f.push(("node", ev.holder.into()));
                    });
                    copies = 2;
                }
            }
            for _ in 0..copies {
                match next {
                    NextHop::Sink => {
                        if let Some(raw) = garbled_bytes.clone() {
                            report.faults.garbled_deliveries += 1;
                            if let Some(s) = &series {
                                s.garbled_deliveries.inc();
                            }
                            tracer.event_with("net.fault.garbled", |f| {
                                f.push(("source", ev.source.into()));
                                f.push(("bytes", raw.len().into()));
                            });
                            report.garbled.push(GarbledDelivery {
                                bytes: raw,
                                time_us: arrival,
                                source: ev.source,
                            });
                        } else {
                            report.deliveries.push(Delivery {
                                packet: ev.packet.clone(),
                                time_us: arrival,
                                source: ev.source,
                            });
                        }
                        // Record completion time including the final hop.
                        report.end_time_us = report.end_time_us.max(arrival);
                    }
                    NextHop::Node(v) => {
                        report.ledger.charge_rx(&self.energy, v, bytes);
                        if garbled_bytes.is_some() {
                            // The receiver's decoder rejects the frame.
                            report.faults.corrupt_drops += 1;
                            if let Some(s) = &series {
                                s.corrupt_drops.inc();
                            }
                            tracer.event_with("net.fault.corrupt_drop", |f| {
                                f.push(("node", v.into()));
                            });
                            continue;
                        }
                        queue.schedule(
                            arrival,
                            InFlight {
                                holder: v,
                                packet: ev.packet.clone(),
                                source: ev.source,
                            },
                        );
                    }
                    NextHop::Unreachable => unreachable!("handled above"),
                }
            }
        }
        // Variable packet sizes mean final-hop completion can be slightly
        // out of order relative to processing; present arrival order.
        report.deliveries.sort_by_key(|d| d.time_us);
        report.garbled.sort_by_key(|g| g.time_us);
        report
    }

    /// Convenience: injects `count` packets from `source` at a fixed
    /// interval, built by `make_packet(seq)`.
    pub fn simulate_stream<H, F>(
        &self,
        source: u16,
        count: usize,
        interval_us: u64,
        mut make_packet: F,
        handler: &mut H,
        seed: u64,
    ) -> SimReport
    where
        H: NodeHandler,
        F: FnMut(u64) -> Packet,
    {
        let injections = (0..count)
            .map(|seq| Injection {
                source,
                packet: make_packet(seq as u64),
                time_us: seq as u64 * interval_us,
            })
            .collect();
        self.simulate(injections, handler, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnm_wire::{Location, Report};

    fn forward_all(_node: u16, _packet: &mut Packet, _now: u64, _rng: &mut StdRng) -> NodeDecision {
        NodeDecision::Forward
    }

    fn report(seq: u64) -> Packet {
        Packet::new(Report::new(
            format!("r{seq}").into_bytes(),
            Location::default(),
            seq,
        ))
    }

    #[test]
    fn chain_delivers_everything_lossless() {
        let net = Network::new(Topology::chain(10, 10.0));
        let mut handler = forward_all;
        let rep = net.simulate_stream(0, 20, 20_000, report, &mut handler, 1);
        assert_eq!(rep.deliveries.len(), 20);
        assert_eq!(rep.delivery_rate(20), 1.0);
        assert_eq!(rep.radio_losses, 0);
        // Arrival order preserved for a FIFO chain.
        let seqs: Vec<u64> = rep
            .deliveries
            .iter()
            .map(|d| d.packet.report.timestamp)
            .collect();
        assert_eq!(seqs, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn deliveries_carry_time_and_source() {
        let net = Network::new(Topology::chain(5, 10.0));
        let mut handler = forward_all;
        let rep = net.simulate_stream(0, 1, 0, report, &mut handler, 1);
        let d = &rep.deliveries[0];
        assert_eq!(d.source, 0);
        // 5 hops, each ≥ per-hop latency.
        assert!(d.time_us >= 5 * 2_000, "time = {}", d.time_us);
    }

    #[test]
    fn handler_sees_every_hop() {
        let net = Network::new(Topology::chain(4, 10.0));
        let mut visits: Vec<u16> = Vec::new();
        let mut handler = |node: u16, _p: &mut Packet, _t: u64, _r: &mut StdRng| {
            visits.push(node);
            NodeDecision::Forward
        };
        net.simulate_stream(0, 1, 0, report, &mut handler, 1);
        assert_eq!(visits, vec![0, 1, 2, 3]);
    }

    #[test]
    fn node_drop_stops_the_packet() {
        let net = Network::new(Topology::chain(6, 10.0));
        let mut handler = |node: u16, _p: &mut Packet, _t: u64, _r: &mut StdRng| {
            if node == 3 {
                NodeDecision::Drop
            } else {
                NodeDecision::Forward
            }
        };
        let rep = net.simulate_stream(0, 5, 1000, report, &mut handler, 1);
        assert_eq!(rep.deliveries.len(), 0);
        assert_eq!(rep.node_drops, 5);
    }

    #[test]
    fn lossy_radio_loses_some() {
        let net =
            Network::new(Topology::chain(10, 10.0)).with_radio(RadioModel::mica2().with_loss(0.2));
        let mut handler = forward_all;
        let rep = net.simulate_stream(0, 200, 1000, report, &mut handler, 3);
        assert!(rep.radio_losses > 0);
        assert!(rep.deliveries.len() < 200);
        // 10 hops at 20% loss → ~10% end-to-end delivery.
        let rate = rep.delivery_rate(200);
        assert!((0.02..0.35).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn energy_charged_along_path() {
        let net = Network::new(Topology::chain(3, 10.0));
        let mut handler = forward_all;
        let rep = net.simulate_stream(0, 1, 0, report, &mut handler, 1);
        // Node 0 transmits only; nodes 1,2 receive and transmit.
        assert!(rep.ledger.node_total_nj(0) > 0);
        assert!(rep.ledger.node_total_nj(1) > rep.ledger.node_total_nj(0));
        assert_eq!(rep.ledger.network_total_nj(), {
            let m = EnergyModel::mica2();
            let bytes = report(0).encoded_len() as u64;
            // 3 tx + 2 rx of the same-size packet.
            3 * m.tx_nj_per_byte * bytes + 2 * m.rx_nj_per_byte * bytes
        });
    }

    #[test]
    fn disconnected_source_is_undeliverable() {
        let topo = Topology::random_geometric(10, 1000.0, 5.0, 1);
        let net = Network::new(topo);
        // Find an unreachable node.
        let u = (0..10u16)
            .find(|&i| net.routing().hops_to_sink(i).is_none())
            .expect("isolated node exists");
        let mut handler = forward_all;
        let rep = net.simulate_stream(u, 3, 0, report, &mut handler, 1);
        assert_eq!(rep.deliveries.len(), 0);
        assert_eq!(rep.undeliverable, 3);
    }

    #[test]
    fn grid_routes_deliver() {
        let net = Network::new(Topology::grid(5, 5, 10.0));
        let mut handler = forward_all;
        let rep = net.simulate_stream(24, 10, 5_000, report, &mut handler, 2);
        assert_eq!(rep.deliveries.len(), 10);
    }

    #[test]
    fn contention_serializes_a_hotspot() {
        // Two packets injected simultaneously at the same node: without
        // contention both arrive after one hop time; with contention the
        // second waits for the radio.
        let topo = Topology::chain(1, 10.0);
        let injections = |_: ()| {
            vec![
                Injection {
                    source: 0,
                    packet: report(0),
                    time_us: 0,
                },
                Injection {
                    source: 0,
                    packet: report(1),
                    time_us: 0,
                },
            ]
        };
        let mut h1 = forward_all;
        let ideal = Network::new(topo.clone()).simulate(injections(()), &mut h1, 1);
        let mut h2 = forward_all;
        let contended = Network::new(topo)
            .with_contention()
            .simulate(injections(()), &mut h2, 1);
        assert_eq!(ideal.deliveries.len(), 2);
        assert_eq!(contended.deliveries.len(), 2);
        // Idealized: identical arrival times. Contended: strictly later
        // second arrival, by one full transmission time.
        assert_eq!(ideal.deliveries[0].time_us, ideal.deliveries[1].time_us);
        let gap = contended.deliveries[1].time_us - contended.deliveries[0].time_us;
        let hop = RadioModel::mica2().hop_time_us(report(1).encoded_len());
        assert_eq!(gap, hop);
    }

    #[test]
    fn contention_preserves_delivery_count() {
        let net = Network::new(Topology::chain(6, 10.0)).with_contention();
        let mut handler = forward_all;
        let rep = net.simulate_stream(0, 40, 1_000, report, &mut handler, 2);
        assert_eq!(rep.deliveries.len(), 40);
        // Arrival order is monotone.
        assert!(rep
            .deliveries
            .windows(2)
            .all(|w| w[0].time_us <= w[1].time_us));
        // Saturated injection (1 ms interval vs ~15 ms service) backs up:
        // the last delivery is far later than the idealized pipeline.
        let mut h2 = forward_all;
        let ideal = Network::new(Topology::chain(6, 10.0))
            .simulate_stream(0, 40, 1_000, report, &mut h2, 2);
        assert!(
            rep.end_time_us > ideal.end_time_us * 2,
            "contended {} vs ideal {}",
            rep.end_time_us,
            ideal.end_time_us
        );
    }

    #[test]
    fn inert_fault_plan_changes_nothing() {
        let base =
            Network::new(Topology::chain(8, 10.0)).with_radio(RadioModel::mica2().with_loss(0.1));
        let faulty = base.clone().with_faults(crate::FaultPlan::new(99));
        let mut h1 = forward_all;
        let mut h2 = forward_all;
        let a = base.simulate_stream(0, 50, 1000, report, &mut h1, 42);
        let b = faulty.simulate_stream(0, 50, 1000, report, &mut h2, 42);
        assert_eq!(a.deliveries.len(), b.deliveries.len());
        assert_eq!(a.radio_losses, b.radio_losses);
        assert_eq!(a.end_time_us, b.end_time_us);
        assert_eq!(b.faults, FaultCounters::default());
        assert!(b.garbled.is_empty());
        for (x, y) in a.deliveries.iter().zip(&b.deliveries) {
            assert_eq!(x.packet, y.packet);
            assert_eq!(x.time_us, y.time_us);
        }
    }

    #[test]
    fn bursty_loss_thins_deliveries_and_counts() {
        let plan =
            crate::FaultPlan::new(5).with_burst_loss(crate::GilbertElliott::bursty(0.3, 6.0));
        let net = Network::new(Topology::chain(6, 10.0)).with_faults(plan);
        let mut handler = forward_all;
        let rep = net.simulate_stream(0, 100, 1000, report, &mut handler, 3);
        assert!(rep.faults.burst_losses > 0);
        assert_eq!(rep.radio_losses, 0);
        assert!(rep.deliveries.len() < 100);
        assert!(!rep.deliveries.is_empty());
    }

    #[test]
    fn duplication_inflates_deliveries() {
        let plan = crate::FaultPlan::new(8).with_duplication(0.2);
        let net = Network::new(Topology::chain(4, 10.0)).with_faults(plan);
        let mut handler = forward_all;
        let rep = net.simulate_stream(0, 50, 1000, report, &mut handler, 3);
        assert!(rep.faults.duplicates > 0);
        assert!(rep.deliveries.len() > 50, "got {}", rep.deliveries.len());
    }

    #[test]
    fn corruption_yields_garbled_or_altered_frames() {
        // Heavy corruption on a short path: some frames arrive garbled
        // (undecodable raw bytes), some are dropped mid-path, and clean
        // deliveries shrink accordingly.
        let plan = crate::FaultPlan::new(2).with_corruption(0.05);
        let net = Network::new(Topology::chain(3, 10.0)).with_faults(plan);
        let mut handler = forward_all;
        let rep = net.simulate_stream(0, 200, 1000, report, &mut handler, 3);
        assert!(rep.faults.corrupted > 0);
        assert_eq!(
            rep.faults.garbled_deliveries,
            rep.garbled.len(),
            "garbled counter matches delivered garbled frames"
        );
        assert!(rep.deliveries.len() + rep.garbled.len() <= 200 + rep.faults.duplicates);
    }

    #[test]
    fn reordering_shuffles_sink_arrival_order() {
        // Huge extra delays relative to the injection interval let later
        // packets overtake earlier ones end-to-end.
        let plan = crate::FaultPlan::new(4).with_reordering(0.5, 200_000);
        let net = Network::new(Topology::chain(4, 10.0)).with_faults(plan);
        let mut handler = forward_all;
        let rep = net.simulate_stream(0, 50, 2_000, report, &mut handler, 3);
        assert!(rep.faults.reordered > 0);
        assert_eq!(rep.deliveries.len(), 50);
        let seqs: Vec<u64> = rep
            .deliveries
            .iter()
            .map(|d| d.packet.report.timestamp)
            .collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_ne!(seqs, sorted, "no packet overtook another");
    }

    #[test]
    fn faulty_simulation_is_deterministic_in_seeds() {
        let plan = crate::FaultPlan::new(11)
            .with_burst_loss(crate::GilbertElliott::bursty(0.2, 5.0))
            .with_duplication(0.1)
            .with_reordering(0.2, 50_000)
            .with_corruption(0.01);
        let net = Network::new(Topology::chain(6, 10.0)).with_faults(plan);
        let run = |net: &Network| {
            let mut h = forward_all;
            net.simulate_stream(0, 100, 1000, report, &mut h, 42)
        };
        let a = run(&net);
        let b = run(&net);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.deliveries.len(), b.deliveries.len());
        for (x, y) in a.deliveries.iter().zip(&b.deliveries) {
            assert_eq!(x.packet, y.packet);
            assert_eq!(x.time_us, y.time_us);
        }
        for (x, y) in a.garbled.iter().zip(&b.garbled) {
            assert_eq!(x.bytes, y.bytes);
        }
    }

    #[test]
    fn fault_metrics_mirror_report_counters() {
        let plan = crate::FaultPlan::new(11)
            .with_burst_loss(crate::GilbertElliott::bursty(0.2, 5.0))
            .with_duplication(0.1)
            .with_reordering(0.2, 50_000)
            .with_corruption(0.01);
        let registry = Registry::new();
        let (tracer, ring) = Tracer::ring(50_000);
        let net = Network::new(Topology::chain(6, 10.0))
            .with_faults(plan)
            .with_metrics(registry.clone())
            .with_tracer(tracer);
        let mut handler = forward_all;
        let rep = net.simulate_stream(0, 150, 1000, report, &mut handler, 42);
        assert!(rep.faults.total() > 0, "faults actually fired");

        // Registry series match the per-run counters exactly.
        let get = |kind: &str| {
            registry
                .counter("pnm_net_faults_total", &[("kind", kind)])
                .get()
        };
        assert_eq!(get("burst_loss"), rep.faults.burst_losses as u64);
        assert_eq!(get("duplicate"), rep.faults.duplicates as u64);
        assert_eq!(get("reorder"), rep.faults.reordered as u64);
        assert_eq!(get("corrupt"), rep.faults.corrupted as u64);
        assert_eq!(get("corrupt_drop"), rep.faults.corrupt_drops as u64);
        assert_eq!(get("garbled"), rep.faults.garbled_deliveries as u64);
        assert!(registry
            .prometheus_text()
            .contains("pnm_net_faults_total{kind="));

        // The trace saw one instant event per counted fault.
        let events = ring.events();
        let count = |name: &str| events.iter().filter(|e| e.name == name).count();
        assert_eq!(count("net.fault.burst_loss"), rep.faults.burst_losses);
        assert_eq!(count("net.fault.duplicate"), rep.faults.duplicates);
        assert_eq!(count("net.fault.reorder"), rep.faults.reordered);
        assert_eq!(count("net.fault.corrupt"), rep.faults.corrupted);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn instrumentation_does_not_perturb_the_simulation() {
        let plan = crate::FaultPlan::new(7)
            .with_burst_loss(crate::GilbertElliott::bursty(0.3, 4.0))
            .with_corruption(0.02);
        let base = Network::new(Topology::chain(5, 10.0)).with_faults(plan);
        let instrumented = base
            .clone()
            .with_metrics(Registry::new())
            .with_tracer(Tracer::ring(1024).0);
        let mut h1 = forward_all;
        let mut h2 = forward_all;
        let a = base.simulate_stream(0, 80, 1000, report, &mut h1, 9);
        let b = instrumented.simulate_stream(0, 80, 1000, report, &mut h2, 9);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.deliveries.len(), b.deliveries.len());
        assert_eq!(a.end_time_us, b.end_time_us);
        for (x, y) in a.deliveries.iter().zip(&b.deliveries) {
            assert_eq!(x.packet, y.packet);
            assert_eq!(x.time_us, y.time_us);
        }
    }

    #[test]
    fn simulation_is_deterministic_in_seed() {
        let net =
            Network::new(Topology::chain(8, 10.0)).with_radio(RadioModel::mica2().with_loss(0.1));
        let mut h1 = forward_all;
        let mut h2 = forward_all;
        let a = net.simulate_stream(0, 50, 1000, report, &mut h1, 42);
        let b = net.simulate_stream(0, 50, 1000, report, &mut h2, 42);
        assert_eq!(a.deliveries.len(), b.deliveries.len());
        assert_eq!(a.radio_losses, b.radio_losses);
        assert_eq!(a.end_time_us, b.end_time_us);
    }

    #[test]
    fn handler_mutations_survive_to_sink() {
        let net = Network::new(Topology::chain(3, 10.0));
        let mut handler = |node: u16, p: &mut Packet, _t: u64, _r: &mut StdRng| {
            p.push_mark(pnm_wire::Mark::unauthenticated(pnm_wire::NodeId(node)));
            NodeDecision::Forward
        };
        let rep = net.simulate_stream(0, 1, 0, report, &mut handler, 1);
        let marks: Vec<u16> = rep.deliveries[0]
            .packet
            .marks
            .iter()
            .filter_map(|m| m.id.as_plain().map(|n| n.raw()))
            .collect();
        assert_eq!(marks, vec![0, 1, 2]);
    }
}
