//! The composed network simulator: topology + routing + radio + energy,
//! driving packets hop by hop through user-supplied node behavior.
//!
//! The [`NodeHandler`] callback is where marking schemes and moles plug in:
//! `pnm-sim` installs honest markers on legitimate nodes and
//! `pnm-adversary` moles at compromised positions. This crate stays
//! independent of those policies.

use rand::rngs::StdRng;
use rand::SeedableRng;

use pnm_wire::Packet;

use crate::des::EventQueue;
use crate::energy::{EnergyLedger, EnergyModel};
use crate::radio::RadioModel;
use crate::routing::{NextHop, RoutingTable};
use crate::topology::Topology;

/// What a node does with a packet it is about to forward.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeDecision {
    /// Transmit toward the sink (after any in-place manipulation).
    Forward,
    /// Silently drop the packet.
    Drop,
}

/// Per-node forwarding behavior: marking schemes, moles, filters.
pub trait NodeHandler {
    /// Called once per node per packet, before transmission. May mutate
    /// the packet (e.g., append a mark) and decides whether to forward.
    fn on_forward(
        &mut self,
        node: u16,
        packet: &mut Packet,
        now_us: u64,
        rng: &mut StdRng,
    ) -> NodeDecision;
}

impl<F> NodeHandler for F
where
    F: FnMut(u16, &mut Packet, u64, &mut StdRng) -> NodeDecision,
{
    fn on_forward(
        &mut self,
        node: u16,
        packet: &mut Packet,
        now_us: u64,
        rng: &mut StdRng,
    ) -> NodeDecision {
        self(node, packet, now_us, rng)
    }
}

/// A packet injection request: `source` originates `packet` at `time_us`.
#[derive(Clone, Debug)]
pub struct Injection {
    /// Originating node.
    pub source: u16,
    /// The packet to inject (marks may be pre-loaded by a source mole).
    pub packet: Packet,
    /// Absolute injection time in microseconds.
    pub time_us: u64,
}

/// One packet received at the sink.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// The packet exactly as the sink received it.
    pub packet: Packet,
    /// Arrival time in microseconds.
    pub time_us: u64,
    /// The node that originated it (ground truth, for evaluation only —
    /// the sink does not see this).
    pub source: u16,
}

/// Aggregate outcome of one simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Packets received at the sink, in arrival order.
    pub deliveries: Vec<Delivery>,
    /// Packets lost to radio errors.
    pub radio_losses: usize,
    /// Packets dropped by node behavior (filters, selective-drop moles).
    pub node_drops: usize,
    /// Packets that hit a routing dead end.
    pub undeliverable: usize,
    /// Per-node energy expenditure.
    pub ledger: EnergyLedger,
    /// Time of the last event processed, in microseconds.
    pub end_time_us: u64,
}

impl SimReport {
    /// Fraction of injected packets that reached the sink.
    pub fn delivery_rate(&self, injected: usize) -> f64 {
        if injected == 0 {
            return 1.0;
        }
        self.deliveries.len() as f64 / injected as f64
    }
}

/// A static sensor network ready to simulate.
#[derive(Clone, Debug)]
pub struct Network {
    topology: Topology,
    routing: RoutingTable,
    radio: RadioModel,
    energy: EnergyModel,
    contention: bool,
}

/// In-flight event: `holder` is about to run its forwarding behavior.
#[derive(Clone, Debug)]
struct InFlight {
    holder: u16,
    packet: Packet,
    source: u16,
}

impl Network {
    /// Assembles a network with BFS tree routing and Mica2 radio/energy
    /// defaults.
    pub fn new(topology: Topology) -> Self {
        let routing = RoutingTable::tree(&topology);
        Network {
            topology,
            routing,
            radio: RadioModel::mica2(),
            energy: EnergyModel::mica2(),
            contention: false,
        }
    }

    /// Enables per-node radio contention: a node serializes its
    /// transmissions, so a packet arriving while the radio is busy queues
    /// behind the transmission in progress (half-duplex, FIFO). Off by
    /// default, matching the paper's idealized per-packet analysis.
    pub fn with_contention(mut self) -> Self {
        self.contention = true;
        self
    }

    /// Replaces the routing table (e.g., geographic forwarding).
    pub fn with_routing(mut self, routing: RoutingTable) -> Self {
        self.routing = routing;
        self
    }

    /// Replaces the radio model.
    pub fn with_radio(mut self, radio: RadioModel) -> Self {
        self.radio = radio;
        self
    }

    /// Replaces the energy model.
    pub fn with_energy(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// The deployed topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The routing table in force.
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// The radio model in force.
    pub fn radio(&self) -> &RadioModel {
        &self.radio
    }

    /// Runs a discrete-event simulation of the given injections.
    ///
    /// Each hop: the holder's [`NodeHandler`] runs (possibly mutating the
    /// packet), then the packet is transmitted to the holder's next hop
    /// with radio delay/loss and energy charges. Packets reaching the sink
    /// are recorded as [`Delivery`]s.
    pub fn simulate<H: NodeHandler>(
        &self,
        injections: Vec<Injection>,
        handler: &mut H,
        seed: u64,
    ) -> SimReport {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut queue: EventQueue<InFlight> = EventQueue::new();
        let injected = injections.len();
        for inj in injections {
            queue.schedule(
                inj.time_us,
                InFlight {
                    holder: inj.source,
                    packet: inj.packet,
                    source: inj.source,
                },
            );
        }

        let mut report = SimReport {
            deliveries: Vec::with_capacity(injected),
            radio_losses: 0,
            node_drops: 0,
            undeliverable: 0,
            ledger: EnergyLedger::new(self.topology.len()),
            end_time_us: 0,
        };
        // Per-node radio-busy horizon for the contention model.
        let mut busy_until = vec![0u64; self.topology.len()];

        while let Some((now, mut ev)) = queue.pop() {
            report.end_time_us = now;
            // Node behavior (marking, mole manipulation, filtering).
            match handler.on_forward(ev.holder, &mut ev.packet, now, &mut rng) {
                NodeDecision::Drop => {
                    report.node_drops += 1;
                    continue;
                }
                NodeDecision::Forward => {}
            }
            // Transmission toward the next hop.
            let bytes = ev.packet.encoded_len();
            let next = self.routing.next_hop(ev.holder);
            if next == NextHop::Unreachable {
                report.undeliverable += 1;
                continue;
            }
            report.ledger.charge_tx(&self.energy, ev.holder, bytes);
            if self.radio.is_lost(&mut rng) {
                report.radio_losses += 1;
                continue;
            }
            let delay = self.radio.hop_time_us(bytes);
            // With contention, the transmission waits for the node's radio.
            let tx_start = if self.contention {
                let start = now.max(busy_until[ev.holder as usize]);
                busy_until[ev.holder as usize] = start + delay;
                start
            } else {
                now
            };
            let arrival = tx_start + delay;
            match next {
                NextHop::Sink => {
                    report.deliveries.push(Delivery {
                        packet: ev.packet,
                        time_us: arrival,
                        source: ev.source,
                    });
                    // Record completion time including the final hop.
                    report.end_time_us = report.end_time_us.max(arrival);
                }
                NextHop::Node(v) => {
                    report.ledger.charge_rx(&self.energy, v, bytes);
                    queue.schedule(
                        arrival,
                        InFlight {
                            holder: v,
                            packet: ev.packet,
                            source: ev.source,
                        },
                    );
                }
                NextHop::Unreachable => unreachable!("handled above"),
            }
        }
        // Variable packet sizes mean final-hop completion can be slightly
        // out of order relative to processing; present arrival order.
        report.deliveries.sort_by_key(|d| d.time_us);
        report
    }

    /// Convenience: injects `count` packets from `source` at a fixed
    /// interval, built by `make_packet(seq)`.
    pub fn simulate_stream<H, F>(
        &self,
        source: u16,
        count: usize,
        interval_us: u64,
        mut make_packet: F,
        handler: &mut H,
        seed: u64,
    ) -> SimReport
    where
        H: NodeHandler,
        F: FnMut(u64) -> Packet,
    {
        let injections = (0..count)
            .map(|seq| Injection {
                source,
                packet: make_packet(seq as u64),
                time_us: seq as u64 * interval_us,
            })
            .collect();
        self.simulate(injections, handler, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnm_wire::{Location, Report};

    fn forward_all(_node: u16, _packet: &mut Packet, _now: u64, _rng: &mut StdRng) -> NodeDecision {
        NodeDecision::Forward
    }

    fn report(seq: u64) -> Packet {
        Packet::new(Report::new(
            format!("r{seq}").into_bytes(),
            Location::default(),
            seq,
        ))
    }

    #[test]
    fn chain_delivers_everything_lossless() {
        let net = Network::new(Topology::chain(10, 10.0));
        let mut handler = forward_all;
        let rep = net.simulate_stream(0, 20, 20_000, report, &mut handler, 1);
        assert_eq!(rep.deliveries.len(), 20);
        assert_eq!(rep.delivery_rate(20), 1.0);
        assert_eq!(rep.radio_losses, 0);
        // Arrival order preserved for a FIFO chain.
        let seqs: Vec<u64> = rep
            .deliveries
            .iter()
            .map(|d| d.packet.report.timestamp)
            .collect();
        assert_eq!(seqs, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn deliveries_carry_time_and_source() {
        let net = Network::new(Topology::chain(5, 10.0));
        let mut handler = forward_all;
        let rep = net.simulate_stream(0, 1, 0, report, &mut handler, 1);
        let d = &rep.deliveries[0];
        assert_eq!(d.source, 0);
        // 5 hops, each ≥ per-hop latency.
        assert!(d.time_us >= 5 * 2_000, "time = {}", d.time_us);
    }

    #[test]
    fn handler_sees_every_hop() {
        let net = Network::new(Topology::chain(4, 10.0));
        let mut visits: Vec<u16> = Vec::new();
        let mut handler = |node: u16, _p: &mut Packet, _t: u64, _r: &mut StdRng| {
            visits.push(node);
            NodeDecision::Forward
        };
        net.simulate_stream(0, 1, 0, report, &mut handler, 1);
        assert_eq!(visits, vec![0, 1, 2, 3]);
    }

    #[test]
    fn node_drop_stops_the_packet() {
        let net = Network::new(Topology::chain(6, 10.0));
        let mut handler = |node: u16, _p: &mut Packet, _t: u64, _r: &mut StdRng| {
            if node == 3 {
                NodeDecision::Drop
            } else {
                NodeDecision::Forward
            }
        };
        let rep = net.simulate_stream(0, 5, 1000, report, &mut handler, 1);
        assert_eq!(rep.deliveries.len(), 0);
        assert_eq!(rep.node_drops, 5);
    }

    #[test]
    fn lossy_radio_loses_some() {
        let net =
            Network::new(Topology::chain(10, 10.0)).with_radio(RadioModel::mica2().with_loss(0.2));
        let mut handler = forward_all;
        let rep = net.simulate_stream(0, 200, 1000, report, &mut handler, 3);
        assert!(rep.radio_losses > 0);
        assert!(rep.deliveries.len() < 200);
        // 10 hops at 20% loss → ~10% end-to-end delivery.
        let rate = rep.delivery_rate(200);
        assert!((0.02..0.35).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn energy_charged_along_path() {
        let net = Network::new(Topology::chain(3, 10.0));
        let mut handler = forward_all;
        let rep = net.simulate_stream(0, 1, 0, report, &mut handler, 1);
        // Node 0 transmits only; nodes 1,2 receive and transmit.
        assert!(rep.ledger.node_total_nj(0) > 0);
        assert!(rep.ledger.node_total_nj(1) > rep.ledger.node_total_nj(0));
        assert_eq!(rep.ledger.network_total_nj(), {
            let m = EnergyModel::mica2();
            let bytes = report(0).encoded_len() as u64;
            // 3 tx + 2 rx of the same-size packet.
            3 * m.tx_nj_per_byte * bytes + 2 * m.rx_nj_per_byte * bytes
        });
    }

    #[test]
    fn disconnected_source_is_undeliverable() {
        let topo = Topology::random_geometric(10, 1000.0, 5.0, 1);
        let net = Network::new(topo);
        // Find an unreachable node.
        let u = (0..10u16)
            .find(|&i| net.routing().hops_to_sink(i).is_none())
            .expect("isolated node exists");
        let mut handler = forward_all;
        let rep = net.simulate_stream(u, 3, 0, report, &mut handler, 1);
        assert_eq!(rep.deliveries.len(), 0);
        assert_eq!(rep.undeliverable, 3);
    }

    #[test]
    fn grid_routes_deliver() {
        let net = Network::new(Topology::grid(5, 5, 10.0));
        let mut handler = forward_all;
        let rep = net.simulate_stream(24, 10, 5_000, report, &mut handler, 2);
        assert_eq!(rep.deliveries.len(), 10);
    }

    #[test]
    fn contention_serializes_a_hotspot() {
        // Two packets injected simultaneously at the same node: without
        // contention both arrive after one hop time; with contention the
        // second waits for the radio.
        let topo = Topology::chain(1, 10.0);
        let injections = |_: ()| {
            vec![
                Injection {
                    source: 0,
                    packet: report(0),
                    time_us: 0,
                },
                Injection {
                    source: 0,
                    packet: report(1),
                    time_us: 0,
                },
            ]
        };
        let mut h1 = forward_all;
        let ideal = Network::new(topo.clone()).simulate(injections(()), &mut h1, 1);
        let mut h2 = forward_all;
        let contended = Network::new(topo)
            .with_contention()
            .simulate(injections(()), &mut h2, 1);
        assert_eq!(ideal.deliveries.len(), 2);
        assert_eq!(contended.deliveries.len(), 2);
        // Idealized: identical arrival times. Contended: strictly later
        // second arrival, by one full transmission time.
        assert_eq!(ideal.deliveries[0].time_us, ideal.deliveries[1].time_us);
        let gap = contended.deliveries[1].time_us - contended.deliveries[0].time_us;
        let hop = RadioModel::mica2().hop_time_us(report(1).encoded_len());
        assert_eq!(gap, hop);
    }

    #[test]
    fn contention_preserves_delivery_count() {
        let net = Network::new(Topology::chain(6, 10.0)).with_contention();
        let mut handler = forward_all;
        let rep = net.simulate_stream(0, 40, 1_000, report, &mut handler, 2);
        assert_eq!(rep.deliveries.len(), 40);
        // Arrival order is monotone.
        assert!(rep
            .deliveries
            .windows(2)
            .all(|w| w[0].time_us <= w[1].time_us));
        // Saturated injection (1 ms interval vs ~15 ms service) backs up:
        // the last delivery is far later than the idealized pipeline.
        let mut h2 = forward_all;
        let ideal = Network::new(Topology::chain(6, 10.0))
            .simulate_stream(0, 40, 1_000, report, &mut h2, 2);
        assert!(
            rep.end_time_us > ideal.end_time_us * 2,
            "contended {} vs ideal {}",
            rep.end_time_us,
            ideal.end_time_us
        );
    }

    #[test]
    fn simulation_is_deterministic_in_seed() {
        let net =
            Network::new(Topology::chain(8, 10.0)).with_radio(RadioModel::mica2().with_loss(0.1));
        let mut h1 = forward_all;
        let mut h2 = forward_all;
        let a = net.simulate_stream(0, 50, 1000, report, &mut h1, 42);
        let b = net.simulate_stream(0, 50, 1000, report, &mut h2, 42);
        assert_eq!(a.deliveries.len(), b.deliveries.len());
        assert_eq!(a.radio_losses, b.radio_losses);
        assert_eq!(a.end_time_us, b.end_time_us);
    }

    #[test]
    fn handler_mutations_survive_to_sink() {
        let net = Network::new(Topology::chain(3, 10.0));
        let mut handler = |node: u16, p: &mut Packet, _t: u64, _r: &mut StdRng| {
            p.push_mark(pnm_wire::Mark::unauthenticated(pnm_wire::NodeId(node)));
            NodeDecision::Forward
        };
        let rep = net.simulate_stream(0, 1, 0, report, &mut handler, 1);
        let marks: Vec<u16> = rep.deliveries[0]
            .packet
            .marks
            .iter()
            .filter_map(|m| m.id.as_plain().map(|n| n.raw()))
            .collect();
        assert_eq!(marks, vec![0, 1, 2]);
    }
}
