//! Sensor-network simulation substrate for the PNM reproduction.
//!
//! The paper evaluates PNM on multi-hop forwarding paths in a static
//! sensor network (§2.1, §6.2). This crate provides that substrate, built
//! from scratch:
//!
//! - [`topology`] — chain / grid / random-geometric deployments with a
//!   fixed radio range.
//! - [`routing`] — stable sink-rooted routes: BFS tree (TinyDB-style) and
//!   greedy geographic forwarding (GPSR-style).
//! - [`radio`] — Mica2-like radio timing (19.2 kbps, ~50 pkt/s) and loss.
//! - [`faults`] — injectable link faults: Gilbert–Elliott bursty loss,
//!   duplication, bounded reordering, bit corruption.
//! - [`energy`] — per-node transmit/receive energy accounting.
//! - [`des`] — a deterministic discrete-event queue.
//! - [`network`] — the composed simulator, with a [`NodeHandler`] hook
//!   where marking schemes and moles plug in.
//!
//! # Examples
//!
//! ```
//! use pnm_net::{Network, NodeDecision, Topology};
//! use pnm_wire::{Location, Packet, Report};
//!
//! let net = Network::new(Topology::chain(10, 10.0));
//! let mut forward_all = |_node: u16,
//!                        _pkt: &mut Packet,
//!                        _now: u64,
//!                        _rng: &mut rand::rngs::StdRng| NodeDecision::Forward;
//! let report = net.simulate_stream(
//!     0,
//!     5,
//!     20_000,
//!     |seq| Packet::new(Report::new(vec![], Location::default(), seq)),
//!     &mut forward_all,
//!     7,
//! );
//! assert_eq!(report.deliveries.len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod des;
pub mod dynamics;
pub mod energy;
pub mod faults;
pub mod gpsr;
pub mod graph;
pub mod network;
pub mod radio;
pub mod routing;
pub mod topology;
pub mod workload;

pub use des::EventQueue;
pub use dynamics::{heal_tree, relative_order_preserved, FailureSet};
pub use energy::{EnergyLedger, EnergyModel};
pub use faults::{FaultPlan, GilbertElliott};
pub use gpsr::{gabriel_graph, gpsr_coverage, gpsr_route};
pub use graph::{cut_vertices, stranded_by};
pub use network::{
    Delivery, FaultCounters, GarbledDelivery, Injection, Network, NodeDecision, NodeHandler,
    SimReport,
};
pub use radio::RadioModel;
pub use routing::{NextHop, RoutingTable};
pub use topology::Topology;
pub use workload::ArrivalProcess;

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::routing::{NextHop, RoutingTable};
    use crate::topology::Topology;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// BFS tree routes are always loop-free and monotone in hop count.
        #[test]
        fn tree_routes_loop_free(n in 1u16..60, seed in any::<u64>()) {
            let topo = Topology::random_geometric(n, 100.0, 35.0, seed);
            let table = RoutingTable::tree(&topo);
            for id in 0..n {
                if let Some(path) = table.path_to_sink(id) {
                    let set: std::collections::HashSet<u16> = path.iter().copied().collect();
                    prop_assert_eq!(set.len(), path.len());
                    for w in path.windows(2) {
                        prop_assert_eq!(
                            table.hops_to_sink(w[0]).unwrap(),
                            table.hops_to_sink(w[1]).unwrap() + 1
                        );
                    }
                }
            }
        }

        /// Geographic routes strictly decrease distance to the sink at
        /// every hop, hence are loop-free.
        #[test]
        fn geographic_routes_decrease_distance(n in 1u16..60, seed in any::<u64>()) {
            let topo = Topology::random_geometric(n, 100.0, 35.0, seed);
            let table = RoutingTable::geographic(&topo);
            let sink = topo.sink_position();
            for id in 0..n {
                if let NextHop::Node(v) = table.next_hop(id) {
                    prop_assert!(
                        topo.position(v).distance(&sink) < topo.position(id).distance(&sink)
                    );
                }
            }
        }

        /// A node has a tree route iff it is in the sink's connected
        /// component (coverage == connectivity).
        #[test]
        fn tree_coverage_matches_connectivity(n in 1u16..40, seed in any::<u64>()) {
            let topo = Topology::random_geometric(n, 120.0, 30.0, seed);
            let table = RoutingTable::tree(&topo);
            prop_assert_eq!(topo.is_connected(), (table.coverage() - 1.0).abs() < 1e-12);
        }
    }
}
