//! Routing dynamics (§7 "Impact of Routing Dynamics").
//!
//! The paper assumes stable routes during a traceback, arguing the
//! assumption is safe because traceback is fast — and that "even if
//! routing dynamics do occur, PNM can still locate the moles as long as
//! the relative upstream relation among nodes remains the same". This
//! module provides the machinery to test that claim: a node-failure model
//! and route healing that rebuilds the sink tree around failed nodes.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::routing::{NextHop, RoutingTable};
use crate::topology::Topology;

/// A set of failed (dead-battery, jammed, physically removed) nodes.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureSet {
    failed: BTreeSet<u16>,
}

impl FailureSet {
    /// No failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Marks `node` failed. Returns whether it was newly failed.
    pub fn fail(&mut self, node: u16) -> bool {
        self.failed.insert(node)
    }

    /// Revives `node` (e.g., battery replaced). Returns whether it was
    /// failed.
    pub fn revive(&mut self, node: u16) -> bool {
        self.failed.remove(&node)
    }

    /// Whether `node` is currently failed.
    pub fn is_failed(&self, node: u16) -> bool {
        self.failed.contains(&node)
    }

    /// Iterates over failed nodes.
    pub fn iter(&self) -> impl Iterator<Item = u16> + '_ {
        self.failed.iter().copied()
    }

    /// Number of failed nodes.
    pub fn len(&self) -> usize {
        self.failed.len()
    }

    /// `true` if nothing failed.
    pub fn is_empty(&self) -> bool {
        self.failed.is_empty()
    }
}

/// Rebuilds a BFS sink tree that routes *around* failed nodes: failed
/// nodes neither forward nor count as neighbors. Surviving nodes keep a
/// route iff the residual connectivity graph still reaches the sink.
pub fn heal_tree(topology: &Topology, failures: &FailureSet) -> RoutingTable {
    // BFS over the survivor-induced subgraph.
    let n = topology.len();
    let mut next_hop = vec![NextHop::Unreachable; n];
    let mut hops: Vec<Option<u32>> = vec![None; n];
    let mut queue = std::collections::VecDeque::new();

    for id in 0..n as u16 {
        if failures.is_failed(id) {
            continue;
        }
        if topology.sink_in_range(id) {
            next_hop[id as usize] = NextHop::Sink;
            hops[id as usize] = Some(1);
            queue.push_back(id);
        }
    }
    while let Some(u) = queue.pop_front() {
        let d = hops[u as usize].expect("queued");
        for v in topology.neighbors(u) {
            if failures.is_failed(v) || hops[v as usize].is_some() {
                continue;
            }
            hops[v as usize] = Some(d + 1);
            next_hop[v as usize] = NextHop::Node(u);
            queue.push_back(v);
        }
    }
    RoutingTable::from_parts(next_hop, hops)
}

/// Checks the §7 precondition under which traceback survives a route
/// change: for the nodes present on both the old and new forwarding path
/// of `source`, the relative upstream order is identical.
pub fn relative_order_preserved(old: &RoutingTable, new: &RoutingTable, source: u16) -> bool {
    let (Some(old_path), Some(new_path)) = (old.path_to_sink(source), new.path_to_sink(source))
    else {
        return false;
    };
    let common: BTreeSet<u16> = old_path
        .iter()
        .copied()
        .filter(|x| new_path.contains(x))
        .collect();
    let old_order: Vec<u16> = old_path
        .iter()
        .copied()
        .filter(|x| common.contains(x))
        .collect();
    let new_order: Vec<u16> = new_path
        .iter()
        .copied()
        .filter(|x| common.contains(x))
        .collect();
    old_order == new_order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_set_basics() {
        let mut f = FailureSet::none();
        assert!(f.is_empty());
        assert!(f.fail(3));
        assert!(!f.fail(3));
        assert!(f.is_failed(3));
        assert_eq!(f.len(), 1);
        assert!(f.revive(3));
        assert!(!f.revive(3));
        assert!(f.is_empty());
    }

    #[test]
    fn healing_routes_around_failure_on_grid() {
        let topo = Topology::grid(5, 5, 10.0);
        let mut failures = FailureSet::none();
        let healthy = heal_tree(&topo, &failures);
        assert_eq!(healthy.coverage(), 1.0);

        // Fail an on-path node for the far corner.
        let far = 24u16;
        let path = healthy.path_to_sink(far).unwrap();
        let victim = path[path.len() / 2];
        failures.fail(victim);
        let healed = heal_tree(&topo, &failures);
        let new_path = healed.path_to_sink(far).expect("grid has alternatives");
        assert!(!new_path.contains(&victim));
        // Failed node itself is unreachable.
        assert_eq!(healed.next_hop(victim), NextHop::Unreachable);
    }

    #[test]
    fn healing_chain_cannot_route_around() {
        // A chain has no redundancy: failing an interior node cuts off
        // everything upstream of it.
        let topo = Topology::chain(6, 10.0);
        let mut failures = FailureSet::none();
        failures.fail(3);
        let healed = heal_tree(&topo, &failures);
        assert!(healed.path_to_sink(0).is_none());
        assert!(healed.path_to_sink(4).is_some());
    }

    #[test]
    fn order_preserved_when_detour_skips_one_node() {
        let topo = Topology::grid(6, 3, 10.0);
        let old = heal_tree(&topo, &FailureSet::none());
        let far = (6 * 3 - 1) as u16;
        let path = old.path_to_sink(far).unwrap();
        let victim = path[1];
        let mut failures = FailureSet::none();
        failures.fail(victim);
        let new = heal_tree(&topo, &failures);
        // Grid detours keep survivors' relative order along this path.
        assert!(relative_order_preserved(&old, &new, far));
    }

    #[test]
    fn order_not_preserved_when_unroutable() {
        let topo = Topology::chain(5, 10.0);
        let old = heal_tree(&topo, &FailureSet::none());
        let mut failures = FailureSet::none();
        failures.fail(2);
        let new = heal_tree(&topo, &failures);
        assert!(!relative_order_preserved(&old, &new, 0));
    }

    #[test]
    fn revive_restores_coverage() {
        let topo = Topology::chain(5, 10.0);
        let mut failures = FailureSet::none();
        failures.fail(2);
        assert!(heal_tree(&topo, &failures).path_to_sink(0).is_none());
        failures.revive(2);
        assert_eq!(heal_tree(&topo, &failures).coverage(), 1.0);
    }
}
