//! A minimal discrete-event engine: a time-ordered queue with stable
//! FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled event.
#[derive(Clone, Debug)]
struct Scheduled<T> {
    time_us: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time_us == other.time_us && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time_us
            .cmp(&self.time_us)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list ordered by simulated time (microseconds), with
/// insertion-order tie-breaking for determinism.
///
/// # Examples
///
/// ```
/// use pnm_net::des::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(20, "second");
/// q.schedule(10, "first");
/// assert_eq!(q.pop(), Some((10, "first")));
/// assert_eq!(q.pop(), Some((20, "second")));
/// assert!(q.pop().is_none());
/// ```
#[derive(Clone, Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
    now_us: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now_us: 0,
        }
    }

    /// Schedules `payload` at absolute time `time_us`.
    ///
    /// # Panics
    ///
    /// Panics if `time_us` is in the simulated past.
    pub fn schedule(&mut self, time_us: u64, payload: T) {
        assert!(
            time_us >= self.now_us,
            "cannot schedule in the simulated past ({time_us}µs), current time is {}µs",
            self.now_us
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time_us,
            seq,
            payload,
        });
    }

    /// Schedules `payload` at `delay_us` after the current time.
    pub fn schedule_after(&mut self, delay_us: u64, payload: T) {
        self.schedule(self.now_us.saturating_add(delay_us), payload);
    }

    /// Removes and returns the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        let s = self.heap.pop()?;
        self.now_us = s.time_us;
        Some((s.time_us, s.payload))
    }

    /// The current simulated time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(30, 'c');
        q.schedule(10, 'a');
        q.schedule(20, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.schedule(10, ());
        q.schedule(25, ());
        assert_eq!(q.now_us(), 0);
        q.pop();
        assert_eq!(q.now_us(), 10);
        q.pop();
        assert_eq!(q.now_us(), 10);
        q.pop();
        assert_eq!(q.now_us(), 25);
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(100, "base");
        q.pop();
        q.schedule_after(50, "later");
        assert_eq!(q.pop(), Some((150, "later")));
    }

    #[test]
    #[should_panic(expected = "simulated past")]
    #[allow(unused_must_use)]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        q.pop();
        q.schedule(50, ());
    }

    #[test]
    fn len_tracking() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, ());
        q.schedule(2, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
