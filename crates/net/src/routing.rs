//! Sink-rooted routing (§2.1: "routes do not change frequently…each node
//! has only one next-hop neighbor in its forwarding path").
//!
//! Two route-construction disciplines from the paper's citations:
//! breadth-first **tree routing** (TinyDB-style \[6]) and greedy
//! **geographic forwarding** (GPSR-style \[5]). Both produce a
//! [`RoutingTable`] mapping every node to a single stable next hop.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::topology::Topology;

/// Where a node forwards packets bound for the sink.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NextHop {
    /// Deliver directly to the sink.
    Sink,
    /// Forward to this neighbor.
    Node(u16),
    /// No route (disconnected, or a geographic local minimum).
    Unreachable,
}

/// A stable next-hop table for every node.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoutingTable {
    next_hop: Vec<NextHop>,
    hops_to_sink: Vec<Option<u32>>,
}

impl RoutingTable {
    /// Assembles a table from raw parts (used by route healing in
    /// [`crate::dynamics`]).
    ///
    /// # Panics
    ///
    /// Panics if the two vectors disagree in length.
    pub(crate) fn from_parts(next_hop: Vec<NextHop>, hops_to_sink: Vec<Option<u32>>) -> Self {
        assert_eq!(next_hop.len(), hops_to_sink.len());
        RoutingTable {
            next_hop,
            hops_to_sink,
        }
    }

    /// Builds a BFS tree rooted at the sink: every node's next hop is a
    /// neighbor one level closer to the sink (ties broken by lowest id,
    /// keeping routes deterministic).
    pub fn tree(topology: &Topology) -> Self {
        let n = topology.len();
        let mut next_hop = vec![NextHop::Unreachable; n];
        let mut hops = vec![None; n];
        let mut queue = VecDeque::new();

        for id in 0..n as u16 {
            if topology.sink_in_range(id) {
                next_hop[id as usize] = NextHop::Sink;
                hops[id as usize] = Some(1);
                queue.push_back(id);
            }
        }
        while let Some(u) = queue.pop_front() {
            let d = hops[u as usize].expect("queued nodes have depth");
            for v in topology.neighbors(u) {
                if hops[v as usize].is_none() {
                    hops[v as usize] = Some(d + 1);
                    next_hop[v as usize] = NextHop::Node(u);
                    queue.push_back(v);
                }
            }
        }
        RoutingTable {
            next_hop,
            hops_to_sink: hops,
        }
    }

    /// Greedy geographic forwarding: each node forwards to the neighbor
    /// strictly closest to the sink (or to the sink if in range). Nodes in
    /// a local minimum are [`NextHop::Unreachable`] — the paper assumes
    /// deployments dense enough for greedy forwarding to succeed.
    pub fn geographic(topology: &Topology) -> Self {
        let n = topology.len();
        let sink = topology.sink_position();
        let mut next_hop = vec![NextHop::Unreachable; n];
        for id in 0..n as u16 {
            if topology.sink_in_range(id) {
                next_hop[id as usize] = NextHop::Sink;
                continue;
            }
            let my_dist = topology.position(id).distance(&sink);
            let best = topology
                .neighbors(id)
                .into_iter()
                .map(|v| (topology.position(v).distance(&sink), v))
                .filter(|(d, _)| *d < my_dist)
                .min_by(|a, b| a.partial_cmp(b).expect("distances are finite"));
            if let Some((_, v)) = best {
                next_hop[id as usize] = NextHop::Node(v);
            }
        }
        // Derive hop counts by walking each node's path (with cycle guard).
        let mut hops = vec![None; n];
        for id in 0..n as u16 {
            let mut steps = 0u32;
            let mut cur = id;
            let reach = loop {
                match next_hop[cur as usize] {
                    NextHop::Sink => break Some(steps + 1),
                    NextHop::Node(v) => {
                        steps += 1;
                        if steps as usize > n {
                            break None; // cycle guard (should not happen)
                        }
                        cur = v;
                    }
                    NextHop::Unreachable => break None,
                }
            };
            hops[id as usize] = reach;
        }
        RoutingTable {
            next_hop,
            hops_to_sink: hops,
        }
    }

    /// The next hop for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn next_hop(&self, id: u16) -> NextHop {
        self.next_hop[id as usize]
    }

    /// Hop count from `id` to the sink, if reachable.
    pub fn hops_to_sink(&self, id: u16) -> Option<u32> {
        self.hops_to_sink[id as usize]
    }

    /// The full forwarding path from `id` to the sink: `[id, …, last]`
    /// where `last` delivers to the sink. `None` if unreachable.
    pub fn path_to_sink(&self, id: u16) -> Option<Vec<u16>> {
        let mut path = vec![id];
        let mut cur = id;
        loop {
            match self.next_hop(cur) {
                NextHop::Sink => return Some(path),
                NextHop::Node(v) => {
                    if path.len() > self.next_hop.len() {
                        return None;
                    }
                    path.push(v);
                    cur = v;
                }
                NextHop::Unreachable => return None,
            }
        }
    }

    /// Fraction of nodes with a route to the sink.
    pub fn coverage(&self) -> f64 {
        if self.next_hop.is_empty() {
            return 1.0;
        }
        let reachable = self.hops_to_sink.iter().filter(|h| h.is_some()).count();
        reachable as f64 / self.next_hop.len() as f64
    }

    /// Number of nodes in the table.
    pub fn len(&self) -> usize {
        self.next_hop.len()
    }

    /// `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.next_hop.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_tree_routes_along_chain() {
        let t = Topology::chain(5, 10.0);
        let r = RoutingTable::tree(&t);
        assert_eq!(r.next_hop(4), NextHop::Sink);
        assert_eq!(r.next_hop(0), NextHop::Node(1));
        assert_eq!(r.hops_to_sink(0), Some(5));
        assert_eq!(r.hops_to_sink(4), Some(1));
        assert_eq!(r.path_to_sink(0), Some(vec![0, 1, 2, 3, 4]));
        assert_eq!(r.coverage(), 1.0);
    }

    #[test]
    fn chain_geographic_equals_tree() {
        let t = Topology::chain(8, 10.0);
        let tree = RoutingTable::tree(&t);
        let geo = RoutingTable::geographic(&t);
        for i in 0..8u16 {
            assert_eq!(tree.next_hop(i), geo.next_hop(i), "node {i}");
        }
    }

    #[test]
    fn grid_tree_covers_everything() {
        let t = Topology::grid(6, 6, 10.0);
        let r = RoutingTable::tree(&t);
        assert_eq!(r.coverage(), 1.0);
        // Paths are monotone: each path step decreases hop count by one.
        for id in 0..36u16 {
            let path = r.path_to_sink(id).expect("covered");
            for w in path.windows(2) {
                assert_eq!(
                    r.hops_to_sink(w[0]).unwrap(),
                    r.hops_to_sink(w[1]).unwrap() + 1
                );
            }
        }
    }

    #[test]
    fn grid_geographic_covers_everything() {
        let t = Topology::grid(6, 6, 10.0);
        let r = RoutingTable::geographic(&t);
        assert_eq!(r.coverage(), 1.0);
        // Every path is loop-free and ends at the sink.
        for id in 0..36u16 {
            let path = r.path_to_sink(id).expect("covered");
            let set: std::collections::HashSet<u16> = path.iter().copied().collect();
            assert_eq!(set.len(), path.len(), "loop in path {path:?}");
        }
    }

    #[test]
    fn disconnected_nodes_are_unreachable() {
        let t = Topology::random_geometric(10, 1000.0, 5.0, 1);
        let r = RoutingTable::tree(&t);
        assert!(r.coverage() < 1.0);
        let unreachable = (0..10u16).find(|&i| r.hops_to_sink(i).is_none());
        let u = unreachable.expect("some node is isolated");
        assert_eq!(r.next_hop(u), NextHop::Unreachable);
        assert_eq!(r.path_to_sink(u), None);
    }

    #[test]
    fn routes_are_stable_deterministic() {
        let t = Topology::random_geometric(80, 100.0, 25.0, 42);
        let a = RoutingTable::tree(&t);
        let b = RoutingTable::tree(&t);
        for i in 0..80u16 {
            assert_eq!(a.next_hop(i), b.next_hop(i));
        }
    }

    #[test]
    fn dense_random_geographic_mostly_covers() {
        let t = Topology::random_geometric(150, 100.0, 30.0, 9);
        let r = RoutingTable::geographic(&t);
        assert!(r.coverage() > 0.9, "coverage = {}", r.coverage());
    }

    #[test]
    fn empty_table() {
        let t = Topology::new(vec![], pnm_wire::Location::default(), 1.0);
        let r = RoutingTable::tree(&t);
        assert!(r.is_empty());
        assert_eq!(r.coverage(), 1.0);
        assert_eq!(r.len(), 0);
    }
}
