//! Injectable link faults: bursty loss, duplication, reordering, corruption.
//!
//! The base [`RadioModel`](crate::RadioModel) models i.i.d. per-hop loss —
//! the paper's idealized substrate. Real sensor links misbehave in richer
//! ways: loss comes in *bursts* (interference, congested neighborhoods),
//! MAC-layer retransmissions *duplicate* frames, queueing jitter *reorders*
//! them, and marginal links *corrupt* bits that slip past the CRC. This
//! module provides a seeded, deterministic [`FaultPlan`] describing all
//! four, which [`Network::with_faults`](crate::Network::with_faults) wires
//! into delivery. Every injected fault is tallied in
//! [`FaultCounters`](crate::network::FaultCounters) on the run report, so
//! degradation experiments can correlate sink-side precision with the
//! exact fault mix the network experienced.
//!
//! The fault layer draws from its **own** RNG stream (seeded by
//! [`FaultPlan::seed`]), never from the simulation RNG: enabling a fault
//! plan with all intensities at zero reproduces the fault-free run
//! bit-for-bit, and sweeping one fault axis never perturbs the draws of
//! another.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Draws a uniform f64 in `[0, 1)` from 53 random bits.
fn unit(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn assert_probability(p: f64, what: &str) {
    assert!(
        (0.0..=1.0).contains(&p),
        "{what} {p} not a probability in [0, 1]"
    );
}

/// A two-state Gilbert–Elliott bursty-loss channel.
///
/// The channel is a Markov chain over `{Good, Bad}`: each transmission
/// first advances the state (`p_gb` = P\[Good→Bad\], `p_bg` = P\[Bad→Good\]),
/// then drops the packet with the state's loss probability. Small `p_bg`
/// means long bad bursts — the regime where consecutive marked packets
/// vanish together and i.i.d.-loss analysis is most misleading.
///
/// # Examples
///
/// ```
/// use pnm_net::GilbertElliott;
///
/// // ~20% long-run loss in bursts averaging 10 transmissions.
/// let ge = GilbertElliott::bursty(0.2, 10.0);
/// assert!((ge.steady_state_loss() - 0.2).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// P\[Good → Bad\] per transmission.
    pub p_gb: f64,
    /// P\[Bad → Good\] per transmission.
    pub p_bg: f64,
    /// Loss probability while Good (usually ~0).
    pub loss_good: f64,
    /// Loss probability while Bad (usually ~1).
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// Builds a channel from the four chain parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is outside `[0, 1]`.
    pub fn new(p_gb: f64, p_bg: f64, loss_good: f64, loss_bad: f64) -> Self {
        assert_probability(p_gb, "P[good->bad]");
        assert_probability(p_bg, "P[bad->good]");
        assert_probability(loss_good, "good-state loss");
        assert_probability(loss_bad, "bad-state loss");
        GilbertElliott {
            p_gb,
            p_bg,
            loss_good,
            loss_bad,
        }
    }

    /// The classic simplification: lossless Good state, total-loss Bad
    /// state, parameterized by the long-run loss fraction
    /// `target_loss` in `[0, 1)` and the mean burst length in
    /// transmissions (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `target_loss` is not in `[0, 1)` or `mean_burst_len < 1`.
    pub fn bursty(target_loss: f64, mean_burst_len: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&target_loss),
            "target loss {target_loss} not in [0, 1)"
        );
        assert!(
            mean_burst_len >= 1.0,
            "mean burst length {mean_burst_len} < 1"
        );
        // Stationary P[Bad] = p_gb / (p_gb + p_bg); mean burst = 1 / p_bg.
        let p_bg = 1.0 / mean_burst_len;
        let p_gb = if target_loss <= 0.0 {
            0.0
        } else {
            p_bg * target_loss / (1.0 - target_loss)
        };
        GilbertElliott::new(p_gb.min(1.0), p_bg, 0.0, 1.0)
    }

    /// Long-run loss fraction of the chain.
    pub fn steady_state_loss(&self) -> f64 {
        let denom = self.p_gb + self.p_bg;
        if denom <= 0.0 {
            // A frozen chain stays in its initial (Good) state.
            return self.loss_good;
        }
        let p_bad = self.p_gb / denom;
        p_bad * self.loss_bad + (1.0 - p_bad) * self.loss_good
    }
}

/// Per-node channel state for the Gilbert–Elliott chain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) enum ChannelState {
    /// Low-loss state.
    #[default]
    Good,
    /// Burst-loss state.
    Bad,
}

impl ChannelState {
    /// Advances the chain one step and samples a loss decision.
    pub(crate) fn step(&mut self, ge: &GilbertElliott, rng: &mut StdRng) -> bool {
        let flip = unit(rng);
        *self = match *self {
            ChannelState::Good if flip < ge.p_gb => ChannelState::Bad,
            ChannelState::Bad if flip < ge.p_bg => ChannelState::Good,
            s => s,
        };
        let loss_p = match *self {
            ChannelState::Good => ge.loss_good,
            ChannelState::Bad => ge.loss_bad,
        };
        loss_p > 0.0 && unit(rng) < loss_p
    }
}

/// A seeded, deterministic description of every fault the network injects.
///
/// All axes default off; [`FaultPlan::default`] (or `FaultPlan::new(seed)`)
/// is therefore a no-op plan, and enabling it must not change a
/// simulation's outcome. Builder methods switch individual axes on:
///
/// ```
/// use pnm_net::{FaultPlan, GilbertElliott};
///
/// let plan = FaultPlan::new(7)
///     .with_burst_loss(GilbertElliott::bursty(0.2, 8.0))
///     .with_duplication(0.05)
///     .with_reordering(0.1, 40_000)
///     .with_corruption(0.01);
/// assert!(plan.any_enabled());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the dedicated fault RNG stream.
    pub seed: u64,
    /// Bursty-loss channel, applied per transmitting node.
    pub burst: Option<GilbertElliott>,
    /// Probability a transmission is duplicated at the receiver.
    pub duplicate_probability: f64,
    /// Probability a transmission is held back by extra delay (reordering).
    pub reorder_probability: f64,
    /// Maximum extra delay for a reordered transmission, in microseconds.
    pub reorder_max_extra_us: u64,
    /// Per-byte probability that one bit of the encoded packet flips.
    pub corrupt_byte_probability: f64,
}

impl FaultPlan {
    /// An all-off plan drawing from the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            burst: None,
            duplicate_probability: 0.0,
            reorder_probability: 0.0,
            reorder_max_extra_us: 0,
            corrupt_byte_probability: 0.0,
        }
    }

    /// Enables Gilbert–Elliott bursty loss.
    pub fn with_burst_loss(mut self, channel: GilbertElliott) -> Self {
        self.burst = Some(channel);
        self
    }

    /// Enables per-hop duplication with probability `p` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_duplication(mut self, p: f64) -> Self {
        assert_probability(p, "duplication probability");
        self.duplicate_probability = p;
        self
    }

    /// Enables bounded reordering: with probability `p` a transmission is
    /// delayed by up to `max_extra_us` additional microseconds, letting
    /// later packets overtake it.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_reordering(mut self, p: f64, max_extra_us: u64) -> Self {
        assert_probability(p, "reorder probability");
        self.reorder_probability = p;
        self.reorder_max_extra_us = max_extra_us;
        self
    }

    /// Enables bit corruption: each byte of the encoded packet flips one
    /// (uniformly chosen) bit with probability `p` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_corruption(mut self, p: f64) -> Self {
        assert_probability(p, "corruption probability");
        self.corrupt_byte_probability = p;
        self
    }

    /// `true` if any fault axis is switched on.
    pub fn any_enabled(&self) -> bool {
        self.burst.is_some()
            || self.duplicate_probability > 0.0
            || self.reorder_probability > 0.0
            || self.corrupt_byte_probability > 0.0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new(0)
    }
}

/// Live fault-injection state during one simulation run: the dedicated RNG
/// plus per-node channel states.
#[derive(Clone, Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: StdRng,
    channels: Vec<ChannelState>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, nodes: usize) -> Self {
        FaultState {
            rng: StdRng::seed_from_u64(plan.seed),
            channels: vec![ChannelState::default(); nodes],
            plan,
        }
    }

    /// The plan this state was built from.
    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether the bursty channel eats this transmission from `node`.
    pub(crate) fn burst_lost(&mut self, node: u16) -> bool {
        match self.plan.burst {
            Some(ge) => self.channels[node as usize].step(&ge, &mut self.rng),
            None => false,
        }
    }

    /// Whether this transmission is duplicated at the receiver.
    pub(crate) fn duplicated(&mut self) -> bool {
        self.plan.duplicate_probability > 0.0
            && unit(&mut self.rng) < self.plan.duplicate_probability
    }

    /// Extra reordering delay for this transmission (0 = in order).
    pub(crate) fn reorder_delay_us(&mut self) -> u64 {
        if self.plan.reorder_probability <= 0.0
            || self.plan.reorder_max_extra_us == 0
            || unit(&mut self.rng) >= self.plan.reorder_probability
        {
            return 0;
        }
        // 1..=max so a "reordered" packet is always actually late.
        1 + self.rng.next_u64() % self.plan.reorder_max_extra_us
    }

    /// Applies per-byte bit flips to `bytes`; returns the number of bytes
    /// corrupted (0 = untouched).
    pub(crate) fn corrupt(&mut self, bytes: &mut [u8]) -> usize {
        if self.plan.corrupt_byte_probability <= 0.0 {
            return 0;
        }
        let mut flipped = 0;
        for b in bytes.iter_mut() {
            if unit(&mut self.rng) < self.plan.corrupt_byte_probability {
                *b ^= 1 << (self.rng.next_u64() % 8) as u8;
                flipped += 1;
            }
        }
        flipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursty_hits_target_loss_rate() {
        for target in [0.05, 0.2, 0.5] {
            let ge = GilbertElliott::bursty(target, 8.0);
            assert!((ge.steady_state_loss() - target).abs() < 1e-9);
            let mut state = ChannelState::default();
            let mut rng = StdRng::seed_from_u64(7);
            let losses = (0..50_000).filter(|_| state.step(&ge, &mut rng)).count() as f64;
            let rate = losses / 50_000.0;
            assert!((rate - target).abs() < 0.03, "target {target}: got {rate}");
        }
    }

    #[test]
    fn bursty_losses_are_actually_bursty() {
        // With mean burst length 20, loss runs should be far longer than
        // under i.i.d. loss at the same rate (mean run 1/(1-p) ≈ 1.25).
        let ge = GilbertElliott::bursty(0.2, 20.0);
        let mut state = ChannelState::default();
        let mut rng = StdRng::seed_from_u64(3);
        let outcomes: Vec<bool> = (0..100_000).map(|_| state.step(&ge, &mut rng)).collect();
        let mut runs = Vec::new();
        let mut run = 0usize;
        for lost in outcomes {
            if lost {
                run += 1;
            } else if run > 0 {
                runs.push(run);
                run = 0;
            }
        }
        let mean_run = runs.iter().sum::<usize>() as f64 / runs.len() as f64;
        assert!(mean_run > 5.0, "mean loss run {mean_run} not bursty");
    }

    #[test]
    fn zero_target_loss_never_drops() {
        let ge = GilbertElliott::bursty(0.0, 4.0);
        let mut state = ChannelState::default();
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..10_000).all(|_| !state.step(&ge, &mut rng)));
    }

    #[test]
    fn frozen_chain_stays_good() {
        let ge = GilbertElliott::new(0.0, 0.0, 0.0, 1.0);
        assert_eq!(ge.steady_state_loss(), 0.0);
    }

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.any_enabled());
        let mut state = FaultState::new(plan, 4);
        let mut bytes = vec![0xa5; 64];
        let orig = bytes.clone();
        for _ in 0..100 {
            assert!(!state.burst_lost(0));
            assert!(!state.duplicated());
            assert_eq!(state.reorder_delay_us(), 0);
            assert_eq!(state.corrupt(&mut bytes), 0);
        }
        assert_eq!(bytes, orig);
    }

    #[test]
    fn corruption_flips_roughly_expected_bytes() {
        let plan = FaultPlan::new(11).with_corruption(0.1);
        let mut state = FaultState::new(plan, 1);
        let mut flipped = 0usize;
        for _ in 0..100 {
            let mut bytes = vec![0u8; 100];
            flipped += state.corrupt(&mut bytes);
        }
        // 10_000 bytes at 10%: ~1000 flips.
        assert!((700..1300).contains(&flipped), "flipped {flipped}");
    }

    #[test]
    fn corruption_flips_exactly_one_bit_per_hit_byte() {
        let plan = FaultPlan::new(5).with_corruption(1.0);
        let mut state = FaultState::new(plan, 1);
        let mut bytes = vec![0u8; 32];
        let n = state.corrupt(&mut bytes);
        assert_eq!(n, 32);
        assert!(bytes.iter().all(|b| b.count_ones() == 1));
    }

    #[test]
    fn reordering_bounded_and_sometimes_zero() {
        let plan = FaultPlan::new(9).with_reordering(0.5, 1_000);
        let mut state = FaultState::new(plan, 1);
        let delays: Vec<u64> = (0..1000).map(|_| state.reorder_delay_us()).collect();
        assert!(delays.iter().all(|&d| d <= 1_000));
        assert!(delays.contains(&0));
        assert!(delays.iter().any(|&d| d > 0));
    }

    #[test]
    fn fault_stream_is_deterministic_in_seed() {
        let plan = FaultPlan::new(42)
            .with_burst_loss(GilbertElliott::bursty(0.3, 4.0))
            .with_duplication(0.2)
            .with_reordering(0.2, 500)
            .with_corruption(0.05);
        let sample = |p: FaultPlan| {
            let mut s = FaultState::new(p, 2);
            let mut trace = Vec::new();
            let mut bytes = vec![0u8; 16];
            for i in 0..200u16 {
                trace.push((
                    s.burst_lost(i % 2),
                    s.duplicated(),
                    s.reorder_delay_us(),
                    s.corrupt(&mut bytes),
                ));
            }
            (trace, bytes)
        };
        assert_eq!(sample(plan), sample(plan));
        let other = FaultPlan { seed: 43, ..plan };
        assert_ne!(sample(plan), sample(other));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_duplication_rejected() {
        let _ = FaultPlan::new(0).with_duplication(1.5);
    }

    #[test]
    #[should_panic(expected = "not in [0, 1)")]
    fn invalid_burst_target_rejected() {
        let _ = GilbertElliott::bursty(1.0, 4.0);
    }
}
