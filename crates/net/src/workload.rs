//! Traffic workload models: deterministic, Poisson, and burst arrival
//! processes for injection schedules.
//!
//! The paper's evaluation injects packets back to back; real deployments
//! (and the background-traffic experiment) need legitimate event traffic
//! with realistic arrival statistics. All generators are seeded and
//! deterministic.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// An arrival process producing monotone timestamps in microseconds.
#[derive(Clone, Debug)]
pub enum ArrivalProcess {
    /// Fixed inter-arrival gap.
    Periodic {
        /// Gap between packets, µs.
        interval_us: u64,
    },
    /// Poisson process: exponential inter-arrival times.
    Poisson {
        /// Mean rate, packets per second.
        rate_pps: f64,
        /// RNG seed.
        seed: u64,
    },
    /// On/off bursts: `burst_len` back-to-back packets at `interval_us`,
    /// then an `idle_us` gap.
    Bursty {
        /// Packets per burst.
        burst_len: usize,
        /// Intra-burst gap, µs.
        interval_us: u64,
        /// Inter-burst idle, µs.
        idle_us: u64,
    },
}

impl ArrivalProcess {
    /// Generates the first `count` arrival times, starting at `start_us`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (zero rate, zero-length bursts).
    pub fn times(&self, count: usize, start_us: u64) -> Vec<u64> {
        match *self {
            ArrivalProcess::Periodic { interval_us } => (0..count as u64)
                .map(|i| start_us + i * interval_us)
                .collect(),
            ArrivalProcess::Poisson { rate_pps, seed } => {
                assert!(rate_pps > 0.0, "rate must be positive");
                let mut rng = StdRng::seed_from_u64(seed);
                let mean_gap_us = 1_000_000.0 / rate_pps;
                let mut t = start_us as f64;
                (0..count)
                    .map(|_| {
                        // Inverse-CDF exponential sampling.
                        let u = loop {
                            use rand::Rng as _;
                            let raw = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                            if raw > 0.0 {
                                break raw;
                            }
                        };
                        t += -mean_gap_us * u.ln();
                        t as u64
                    })
                    .collect()
            }
            ArrivalProcess::Bursty {
                burst_len,
                interval_us,
                idle_us,
            } => {
                assert!(burst_len > 0, "burst length must be positive");
                let mut out = Vec::with_capacity(count);
                let mut t = start_us;
                let mut in_burst = 0usize;
                for _ in 0..count {
                    out.push(t);
                    in_burst += 1;
                    if in_burst == burst_len {
                        t += idle_us;
                        in_burst = 0;
                    } else {
                        t += interval_us;
                    }
                }
                out
            }
        }
    }

    /// Empirical mean rate of the first `count` arrivals, packets/second.
    pub fn empirical_rate(&self, count: usize) -> f64 {
        let times = self.times(count, 0);
        if times.len() < 2 {
            return 0.0;
        }
        let span = (times[times.len() - 1] - times[0]) as f64 / 1e6;
        if span <= 0.0 {
            return f64::INFINITY;
        }
        (times.len() - 1) as f64 / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_times() {
        let p = ArrivalProcess::Periodic { interval_us: 100 };
        assert_eq!(p.times(4, 50), vec![50, 150, 250, 350]);
        assert!((p.empirical_rate(101) - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn poisson_rate_converges() {
        let p = ArrivalProcess::Poisson {
            rate_pps: 50.0,
            seed: 7,
        };
        let rate = p.empirical_rate(20_000);
        assert!((rate - 50.0).abs() < 2.0, "rate = {rate}");
    }

    #[test]
    fn poisson_is_seeded_and_monotone() {
        let a = ArrivalProcess::Poisson {
            rate_pps: 10.0,
            seed: 1,
        }
        .times(100, 0);
        let b = ArrivalProcess::Poisson {
            rate_pps: 10.0,
            seed: 1,
        }
        .times(100, 0);
        let c = ArrivalProcess::Poisson {
            rate_pps: 10.0,
            seed: 2,
        }
        .times(100, 0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn poisson_interarrival_variance_is_exponential_like() {
        // For an exponential distribution the coefficient of variation is 1.
        let times = ArrivalProcess::Poisson {
            rate_pps: 100.0,
            seed: 3,
        }
        .times(20_000, 0);
        let gaps: Vec<f64> = times.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.1, "cv = {cv}");
    }

    #[test]
    fn bursty_pattern() {
        let p = ArrivalProcess::Bursty {
            burst_len: 3,
            interval_us: 10,
            idle_us: 1000,
        };
        let t = p.times(7, 0);
        assert_eq!(t, vec![0, 10, 20, 1020, 1030, 1040, 2040]);
    }

    #[test]
    fn start_offset_respected() {
        for p in [
            ArrivalProcess::Periodic { interval_us: 5 },
            ArrivalProcess::Poisson {
                rate_pps: 1000.0,
                seed: 1,
            },
            ArrivalProcess::Bursty {
                burst_len: 2,
                interval_us: 5,
                idle_us: 50,
            },
        ] {
            let t = p.times(5, 777);
            assert!(t[0] >= 777, "{t:?}");
        }
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn zero_rate_rejected() {
        let _ = ArrivalProcess::Poisson {
            rate_pps: 0.0,
            seed: 0,
        }
        .times(1, 0);
    }
}
