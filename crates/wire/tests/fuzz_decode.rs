//! Decode-totality fuzzing for the wire formats.
//!
//! The sink's robustness story (graceful degradation under the fault
//! layer's bit corruption) rests on one wire-level guarantee: decoding is
//! **total**. For any byte string — random garbage, a bit-flipped valid
//! packet, a truncated prefix — every decoder returns `Ok` or a
//! structured [`WireError`]; it never panics, and it never allocates
//! unboundedly from an attacker-controlled length field. These properties
//! drive each decoder with both shapes of hostile input.

use pnm_crypto::MacKey;
use pnm_wire::{Frame, Location, Mark, NodeId, Packet, Report};
use proptest::collection::vec;
use proptest::prelude::*;

/// A realistic marked packet: `n_marks` nested MACs over the running
/// encoding, exactly as a forwarding chain would produce.
fn marked_packet(event: &[u8], n_marks: usize) -> Packet {
    let report = Report::new(event.to_vec(), Location::new(1.5, -2.5), 42);
    let mut pkt = Packet::new(report);
    for i in 0..n_marks {
        let key = MacKey::derive(b"fuzz", i as u64);
        let mac = key.mark_mac(&pkt.to_bytes(), 8);
        pkt.push_mark(Mark::plain(NodeId(i as u16), mac));
    }
    pkt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes: every decoder returns without panicking, and a
    /// successful parse implies the input was the canonical encoding
    /// (re-encoding reproduces it byte for byte).
    #[test]
    fn arbitrary_bytes_decode_totally(bytes in vec(any::<u8>(), 0..256)) {
        if let Ok(pkt) = Packet::from_bytes(&bytes) {
            prop_assert_eq!(pkt.to_bytes(), bytes.clone());
        }
        if let Ok((report, used)) = Report::parse(&bytes) {
            prop_assert!(used <= bytes.len());
            prop_assert_eq!(&report.to_bytes()[..], &bytes[..used]);
        }
        let _ = Frame::from_bytes(&bytes);
        if bytes.len() >= 2 {
            let _ = NodeId::from_bytes([bytes[0], bytes[1]]);
        }
        if let Some((&first, rest)) = bytes.split_first() {
            let _ = first; // discriminant position is byte 0 for marks
            let _ = Mark::parse(&bytes);
            let _ = Mark::parse(rest);
        }
    }

    /// A valid marked packet with a single flipped bit — the fault
    /// layer's exact corruption primitive — either still parses (the flip
    /// hit a payload byte) or fails with a structured error. Never a
    /// panic, and a successful parse is still canonical.
    #[test]
    fn bit_flipped_packets_decode_totally(
        event in vec(any::<u8>(), 0..24),
        n_marks in 0usize..12,
        byte_salt in any::<u64>(),
        bit in 0u8..8,
    ) {
        let bytes = marked_packet(&event, n_marks).to_bytes();
        let mut flipped = bytes.clone();
        let idx = (byte_salt % flipped.len() as u64) as usize;
        flipped[idx] ^= 1 << bit;
        // A structured `Err` is the other legal outcome; only a parse
        // that succeeds owes us canonicality.
        if let Ok(pkt) = Packet::from_bytes(&flipped) {
            prop_assert_eq!(pkt.to_bytes(), flipped);
        }
    }

    /// Every strict prefix of a valid packet is rejected (never panics,
    /// never mis-parses): the length-prefixed encoding leaves no byte
    /// optional.
    #[test]
    fn truncated_packets_are_rejected(
        event in vec(any::<u8>(), 0..16),
        n_marks in 0usize..8,
        cut_salt in any::<u64>(),
    ) {
        let bytes = marked_packet(&event, n_marks).to_bytes();
        let cut = (cut_salt % bytes.len() as u64) as usize;
        prop_assert!(Packet::from_bytes(&bytes[..cut]).is_err());
    }
}
