//! Node identifiers.

use core::fmt;

use serde::{Deserialize, Serialize};

/// A unique sensor-node identifier (§2.1: "each sensor node has a unique
/// ID and shares a unique secret key with the sink").
///
/// Wraps a `u16`, which comfortably covers the "few thousand nodes" network
/// sizes the paper considers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The raw integer id.
    pub fn raw(self) -> u16 {
        self.0
    }

    /// The id as a `usize`, for indexing node tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Big-endian wire encoding.
    pub fn to_bytes(self) -> [u8; 2] {
        self.0.to_be_bytes()
    }

    /// Decodes from big-endian bytes.
    pub fn from_bytes(bytes: [u8; 2]) -> Self {
        NodeId(u16::from_be_bytes(bytes))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(raw: u16) -> Self {
        NodeId(raw)
    }
}

impl From<NodeId> for u16 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_bytes() {
        for raw in [0u16, 1, 255, 256, u16::MAX] {
            let id = NodeId(raw);
            assert_eq!(NodeId::from_bytes(id.to_bytes()), id);
        }
    }

    #[test]
    fn conversions() {
        let id: NodeId = 42u16.into();
        assert_eq!(id.raw(), 42);
        assert_eq!(id.index(), 42);
        assert_eq!(u16::from(id), 42);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(NodeId(7).to_string(), "v7");
        assert_eq!(format!("{:?}", NodeId(7)), "NodeId(7)");
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(5), NodeId(5));
    }
}
