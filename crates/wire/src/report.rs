//! Sensing reports — the paper's `M = E | L | T` (§2.3).
//!
//! Each report carries an event description `E`, a location `L`, and a
//! timestamp `T`. Bogus reports forged by a source mole must differ in
//! content (identical copies are suppressed as duplicates by legitimate
//! forwarders, §2.3 / footnote 4), which is why the anonymous-ID mapping
//! `H'_k(M | i)` changes per packet.

use serde::{Deserialize, Serialize};

use crate::error::WireError;

/// Maximum encoded event payload, in bytes.
///
/// Mica2-class radios carry ~29-byte TinyOS payloads per frame; we allow a
/// kilobyte so experiments can also model aggregated reports.
pub const MAX_EVENT_LEN: usize = 1024;

/// A geographic location, in meters within the deployment plane.
#[derive(Clone, Copy, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct Location {
    /// X coordinate (m).
    pub x: f32,
    /// Y coordinate (m).
    pub y: f32,
}

impl Location {
    /// Creates a location.
    pub fn new(x: f32, y: f32) -> Self {
        Location { x, y }
    }

    /// Euclidean distance to `other` in meters.
    pub fn distance(&self, other: &Location) -> f32 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// A sensing report `M = E | L | T`.
///
/// # Examples
///
/// ```
/// use pnm_wire::report::{Location, Report};
///
/// let r = Report::new(b"temp=23C".to_vec(), Location::new(10.0, 20.0), 1234);
/// let bytes = r.to_bytes();
/// assert_eq!(Report::from_bytes(&bytes)?, r);
/// # Ok::<(), pnm_wire::WireError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Event description `E` (sensor readings, event type, …).
    pub event: Vec<u8>,
    /// Claimed event location `L`.
    pub location: Location,
    /// Claimed event timestamp `T` (simulated microseconds).
    pub timestamp: u64,
}

impl Report {
    /// Creates a report.
    ///
    /// # Panics
    ///
    /// Panics if `event` exceeds [`MAX_EVENT_LEN`].
    pub fn new(event: Vec<u8>, location: Location, timestamp: u64) -> Self {
        assert!(
            event.len() <= MAX_EVENT_LEN,
            "event payload {} exceeds {MAX_EVENT_LEN} bytes",
            event.len()
        );
        Report {
            event,
            location,
            timestamp,
        }
    }

    /// Canonical wire encoding: `len(E) | E | L.x | L.y | T`, all
    /// big-endian. MACs are always computed over these bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&(self.event.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.event);
        out.extend_from_slice(&self.location.x.to_be_bytes());
        out.extend_from_slice(&self.location.y.to_be_bytes());
        out.extend_from_slice(&self.timestamp.to_be_bytes());
        out
    }

    /// Parses a report, requiring the buffer to be exactly consumed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation, oversized event length, or
    /// trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let (report, used) = Self::parse(bytes)?;
        if used != bytes.len() {
            return Err(WireError::TrailingBytes {
                remaining: bytes.len() - used,
            });
        }
        Ok(report)
    }

    /// Parses a report from the front of `bytes`, returning it and the
    /// number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation or an oversized event length.
    pub fn parse(bytes: &[u8]) -> Result<(Self, usize), WireError> {
        let need = |n: usize, have: usize, ctx: &'static str| {
            Err(WireError::Truncated {
                context: ctx,
                needed: n,
                available: have,
            })
        };
        if bytes.len() < 2 {
            return need(2, bytes.len(), "report event length");
        }
        let event_len = u16::from_be_bytes([bytes[0], bytes[1]]) as usize;
        if event_len > MAX_EVENT_LEN {
            return Err(WireError::LengthOutOfRange {
                context: "report event",
                declared: event_len,
                max: MAX_EVENT_LEN,
            });
        }
        let total = 2 + event_len + 4 + 4 + 8;
        if bytes.len() < total {
            return need(total, bytes.len(), "report body");
        }
        let event = bytes[2..2 + event_len].to_vec();
        let mut off = 2 + event_len;
        let x = f32::from_be_bytes(bytes[off..off + 4].try_into().unwrap());
        off += 4;
        let y = f32::from_be_bytes(bytes[off..off + 4].try_into().unwrap());
        off += 4;
        let timestamp = u64::from_be_bytes(bytes[off..off + 8].try_into().unwrap());
        off += 8;
        Ok((
            Report {
                event,
                location: Location::new(x, y),
                timestamp,
            },
            off,
        ))
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        2 + self.event.len() + 4 + 4 + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report::new(b"event-7".to_vec(), Location::new(1.5, -2.5), 0xdead_beef)
    }

    #[test]
    fn round_trip() {
        let r = sample();
        let bytes = r.to_bytes();
        assert_eq!(bytes.len(), r.encoded_len());
        assert_eq!(Report::from_bytes(&bytes).unwrap(), r);
    }

    #[test]
    fn empty_event_round_trips() {
        let r = Report::new(vec![], Location::default(), 0);
        assert_eq!(Report::from_bytes(&r.to_bytes()).unwrap(), r);
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let err = Report::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Report::from_bytes(&bytes).unwrap_err(),
            WireError::TrailingBytes { remaining: 1 }
        ));
    }

    #[test]
    fn oversized_event_rejected_on_parse() {
        let mut bytes = vec![0xff, 0xff]; // event_len = 65535
        bytes.extend_from_slice(&[0u8; 64]);
        assert!(matches!(
            Report::from_bytes(&bytes).unwrap_err(),
            WireError::LengthOutOfRange { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_event_rejected_on_construction() {
        let _ = Report::new(vec![0u8; MAX_EVENT_LEN + 1], Location::default(), 0);
    }

    #[test]
    fn distance() {
        let a = Location::new(0.0, 0.0);
        let b = Location::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-6);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn distinct_reports_distinct_bytes() {
        let a = Report::new(b"x".to_vec(), Location::new(0.0, 0.0), 1);
        let b = Report::new(b"x".to_vec(), Location::new(0.0, 0.0), 2);
        assert_ne!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn parse_reports_consumed_length() {
        let r = sample();
        let mut bytes = r.to_bytes();
        let orig_len = bytes.len();
        bytes.extend_from_slice(b"extra");
        let (parsed, used) = Report::parse(&bytes).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(used, orig_len);
    }
}
