//! Traceback marks left by forwarding nodes.
//!
//! A mark is an identifier plus (usually) a MAC. The identifier is either a
//! plain node ID (basic nested marking §4.1, extended AMS §3) or an
//! anonymous ID `i' = H'_{k_i}(M | i)` (PNM §4.2). Internet-style plain
//! marking carries no MAC at all, which is one of the baselines the paper
//! dismantles — represented here by `mac = None`.

use core::fmt;

use pnm_crypto::{AnonId, MacTag, ANON_ID_LEN};
use serde::{Deserialize, Serialize};

use crate::error::WireError;
use crate::id::NodeId;

/// The identifier part of a mark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MarkId {
    /// A plain-text node ID — visible to every forwarder (and to moles).
    Plain(NodeId),
    /// An anonymous per-message ID, opaque without the node's key.
    Anon(AnonId),
}

impl MarkId {
    /// Returns the plain node id, if this is a plain mark.
    pub fn as_plain(&self) -> Option<NodeId> {
        match self {
            MarkId::Plain(id) => Some(*id),
            MarkId::Anon(_) => None,
        }
    }

    /// Returns the anonymous id, if this is an anonymous mark.
    pub fn as_anon(&self) -> Option<AnonId> {
        match self {
            MarkId::Plain(_) => None,
            MarkId::Anon(a) => Some(*a),
        }
    }

    /// Encoded size in bytes, including the discriminant.
    pub fn encoded_len(&self) -> usize {
        1 + match self {
            MarkId::Plain(_) => 2,
            MarkId::Anon(_) => ANON_ID_LEN,
        }
    }
}

impl fmt::Display for MarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkId::Plain(id) => write!(f, "{id}"),
            MarkId::Anon(a) => write!(f, "anon:{a}"),
        }
    }
}

const ID_KIND_PLAIN: u8 = 0x00;
const ID_KIND_ANON: u8 = 0x01;

/// One traceback mark: an identifier and an optional truncated MAC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mark {
    /// Who (claims to have) forwarded the packet.
    pub id: MarkId,
    /// MAC over whatever the emitting scheme protects; `None` for
    /// Internet-style unauthenticated marks.
    pub mac: Option<MacTag>,
}

impl Mark {
    /// Creates an authenticated mark with a plain node id.
    pub fn plain(id: NodeId, mac: MacTag) -> Self {
        Mark {
            id: MarkId::Plain(id),
            mac: Some(mac),
        }
    }

    /// Creates an authenticated mark with an anonymous id.
    pub fn anon(id: AnonId, mac: MacTag) -> Self {
        Mark {
            id: MarkId::Anon(id),
            mac: Some(mac),
        }
    }

    /// Creates an unauthenticated (Internet-style) mark.
    pub fn unauthenticated(id: NodeId) -> Self {
        Mark {
            id: MarkId::Plain(id),
            mac: None,
        }
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.id.encoded_len() + 1 + self.mac.map_or(0, |m| m.len())
    }

    /// Appends the wire encoding to `out`:
    /// `id_kind | id_bytes | mac_len | mac_bytes`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self.id {
            MarkId::Plain(id) => {
                out.push(ID_KIND_PLAIN);
                out.extend_from_slice(&id.to_bytes());
            }
            MarkId::Anon(a) => {
                out.push(ID_KIND_ANON);
                out.extend_from_slice(a.as_bytes());
            }
        }
        match &self.mac {
            None => out.push(0),
            Some(mac) => {
                out.push(mac.len() as u8);
                out.extend_from_slice(mac.as_bytes());
            }
        }
    }

    /// Parses a mark from the front of `bytes`, returning it and the bytes
    /// consumed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation or an unknown id-kind byte.
    pub fn parse(bytes: &[u8]) -> Result<(Self, usize), WireError> {
        let truncated = |needed: usize, ctx: &'static str| WireError::Truncated {
            context: ctx,
            needed,
            available: bytes.len(),
        };
        if bytes.is_empty() {
            return Err(truncated(1, "mark id kind"));
        }
        let (id, mut off) = match bytes[0] {
            ID_KIND_PLAIN => {
                if bytes.len() < 3 {
                    return Err(truncated(3, "plain mark id"));
                }
                (
                    MarkId::Plain(NodeId::from_bytes([bytes[1], bytes[2]])),
                    3usize,
                )
            }
            ID_KIND_ANON => {
                if bytes.len() < 1 + ANON_ID_LEN {
                    return Err(truncated(1 + ANON_ID_LEN, "anonymous mark id"));
                }
                let mut a = [0u8; ANON_ID_LEN];
                a.copy_from_slice(&bytes[1..1 + ANON_ID_LEN]);
                (MarkId::Anon(AnonId::from_bytes(a)), 1 + ANON_ID_LEN)
            }
            other => {
                return Err(WireError::InvalidDiscriminant {
                    context: "mark id kind",
                    value: other,
                })
            }
        };
        if bytes.len() < off + 1 {
            return Err(truncated(off + 1, "mark mac length"));
        }
        let mac_len = bytes[off] as usize;
        off += 1;
        let mac = if mac_len == 0 {
            None
        } else {
            if mac_len > 32 {
                return Err(WireError::LengthOutOfRange {
                    context: "mark mac",
                    declared: mac_len,
                    max: 32,
                });
            }
            if bytes.len() < off + mac_len {
                return Err(truncated(off + mac_len, "mark mac"));
            }
            let tag = MacTag::from_bytes(&bytes[off..off + mac_len]);
            off += mac_len;
            Some(tag)
        };
        Ok((Mark { id, mac }, off))
    }
}

impl fmt::Display for Mark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.mac {
            Some(mac) => write!(f, "[{} mac:{:?}]", self.id, mac),
            None => write!(f, "[{} unauth]", self.id),
        }
    }
}

// Serde support for scenario/result recording: serialize via wire bytes.
impl Serialize for Mark {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut buf);
        serializer.serialize_bytes(&buf)
    }
}

impl<'de> Deserialize<'de> for Mark {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let bytes: Vec<u8> = Vec::deserialize(deserializer)?;
        let (mark, used) = Mark::parse(&bytes).map_err(serde::de::Error::custom)?;
        if used != bytes.len() {
            return Err(serde::de::Error::custom("trailing bytes in mark"));
        }
        Ok(mark)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnm_crypto::MacKey;

    fn tag() -> MacTag {
        MacKey::derive(b"m", 1).mark_mac(b"msg", 8)
    }

    fn anon() -> AnonId {
        pnm_crypto::anon_id(&MacKey::derive(b"m", 1), b"msg", 1)
    }

    #[test]
    fn plain_round_trip() {
        let m = Mark::plain(NodeId(513), tag());
        let mut buf = Vec::new();
        m.encode_into(&mut buf);
        assert_eq!(buf.len(), m.encoded_len());
        let (parsed, used) = Mark::parse(&buf).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn anon_round_trip() {
        let m = Mark::anon(anon(), tag());
        let mut buf = Vec::new();
        m.encode_into(&mut buf);
        let (parsed, used) = Mark::parse(&buf).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn unauthenticated_round_trip() {
        let m = Mark::unauthenticated(NodeId(7));
        let mut buf = Vec::new();
        m.encode_into(&mut buf);
        assert_eq!(buf.len(), 4); // kind + id + zero mac len
        let (parsed, _) = Mark::parse(&buf).unwrap();
        assert_eq!(parsed, m);
        assert!(parsed.mac.is_none());
    }

    #[test]
    fn unknown_kind_rejected() {
        assert!(matches!(
            Mark::parse(&[0x7f, 0, 0, 0]).unwrap_err(),
            WireError::InvalidDiscriminant { value: 0x7f, .. }
        ));
    }

    #[test]
    fn truncation_rejected_at_every_cut() {
        let m = Mark::anon(anon(), tag());
        let mut buf = Vec::new();
        m.encode_into(&mut buf);
        for cut in 0..buf.len() {
            assert!(
                Mark::parse(&buf[..cut]).is_err(),
                "cut {cut} should not parse"
            );
        }
    }

    #[test]
    fn oversized_mac_len_rejected() {
        let mut buf = vec![ID_KIND_PLAIN, 0, 1, 40];
        buf.extend_from_slice(&[0u8; 40]);
        assert!(matches!(
            Mark::parse(&buf).unwrap_err(),
            WireError::LengthOutOfRange { declared: 40, .. }
        ));
    }

    #[test]
    fn accessors() {
        let p = Mark::plain(NodeId(3), tag());
        assert_eq!(p.id.as_plain(), Some(NodeId(3)));
        assert_eq!(p.id.as_anon(), None);
        let a = Mark::anon(anon(), tag());
        assert!(a.id.as_plain().is_none());
        assert!(a.id.as_anon().is_some());
    }

    #[test]
    fn display_forms() {
        assert!(Mark::plain(NodeId(3), tag()).to_string().contains("v3"));
        assert!(Mark::unauthenticated(NodeId(3))
            .to_string()
            .contains("unauth"));
        assert!(Mark::anon(anon(), tag()).to_string().contains("anon:"));
    }
}
