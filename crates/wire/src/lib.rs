//! Wire formats for the PNM reproduction: node ids, reports, marks,
//! packets, and their canonical byte encodings.
//!
//! Every MAC in the system is computed over the canonical encodings defined
//! here, so the encodings are injective (length-prefixed fields) and
//! round-trip exactly.
//!
//! # Examples
//!
//! ```
//! use pnm_wire::{Location, Packet, Report};
//!
//! let report = Report::new(b"intrusion@gate-7".to_vec(), Location::new(120.0, 48.0), 42);
//! let pkt = Packet::new(report);
//! let restored = Packet::from_bytes(&pkt.to_bytes())?;
//! assert_eq!(restored, pkt);
//! # Ok::<(), pnm_wire::WireError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fragment;
pub mod id;
pub mod mark;
pub mod packet;
pub mod report;

pub use error::WireError;
pub use fragment::{fragment, frames_needed, Frame, Reassembler, FRAME_HEADER, FRAME_PAYLOAD};
pub use id::NodeId;
pub use mark::{Mark, MarkId};
pub use packet::{Packet, MAX_MARKS};
pub use report::{Location, Report, MAX_EVENT_LEN};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::{Location, Mark, MarkId, NodeId, Packet, Report};
    use pnm_crypto::{AnonId, MacTag};

    fn arb_report() -> impl Strategy<Value = Report> {
        (
            proptest::collection::vec(any::<u8>(), 0..64),
            any::<f32>(),
            any::<f32>(),
            any::<u64>(),
        )
            .prop_map(|(event, x, y, t)| Report::new(event, Location::new(x, y), t))
    }

    fn arb_mark() -> impl Strategy<Value = Mark> {
        let id = prop_oneof![
            any::<u16>().prop_map(|v| MarkId::Plain(NodeId(v))),
            any::<[u8; 8]>().prop_map(|b| MarkId::Anon(AnonId::from_bytes(b))),
        ];
        let mac = prop_oneof![
            Just(None),
            (proptest::collection::vec(any::<u8>(), 1..=32))
                .prop_map(|b| Some(MacTag::from_bytes(&b))),
        ];
        (id, mac).prop_map(|(id, mac)| Mark { id, mac })
    }

    proptest! {
        /// Report encoding round-trips for arbitrary contents, including
        /// NaN coordinates (bit-exact f32 encoding).
        #[test]
        fn report_round_trip(report in arb_report()) {
            let bytes = report.to_bytes();
            let parsed = Report::from_bytes(&bytes).unwrap();
            // NaN != NaN under PartialEq, so compare re-encodings.
            prop_assert_eq!(parsed.to_bytes(), bytes);
        }

        /// Packet encoding round-trips for arbitrary mark stacks.
        #[test]
        fn packet_round_trip(
            report in arb_report(),
            marks in proptest::collection::vec(arb_mark(), 0..12),
        ) {
            let mut pkt = Packet::new(report);
            for m in marks {
                pkt.push_mark(m);
            }
            let bytes = pkt.to_bytes();
            let parsed = Packet::from_bytes(&bytes).unwrap();
            prop_assert_eq!(parsed.to_bytes(), bytes);
            prop_assert_eq!(parsed.marks.len(), pkt.marks.len());
        }

        /// The canonical encoding is injective over mark stacks: packets
        /// with different mark sequences encode differently.
        #[test]
        fn encoding_injective_over_marks(
            report in arb_report(),
            a in proptest::collection::vec(arb_mark(), 0..6),
            b in proptest::collection::vec(arb_mark(), 0..6),
        ) {
            let mut pa = Packet::new(report.clone());
            for m in &a { pa.push_mark(*m); }
            let mut pb = Packet::new(report);
            for m in &b { pb.push_mark(*m); }
            if a != b {
                prop_assert_ne!(pa.to_bytes(), pb.to_bytes());
            } else {
                prop_assert_eq!(pa.to_bytes(), pb.to_bytes());
            }
        }

        /// Parsing never panics on arbitrary garbage.
        #[test]
        fn parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = Packet::from_bytes(&bytes);
            let _ = Report::from_bytes(&bytes);
            let _ = Mark::parse(&bytes);
        }
    }
}
