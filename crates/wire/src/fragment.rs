//! Link-layer fragmentation for Mica2-class radios.
//!
//! TinyOS frames on Mica2 hardware carry ~29 bytes of payload, but a
//! marked packet easily exceeds 50 bytes (and a fully nested-marked one,
//! hundreds). Multi-frame packets are the physical reality behind the
//! paper's overhead argument: every extra mark costs frames, and losing
//! *any* fragment loses the packet — so marking overhead amplifies loss.
//!
//! [`fragment`] splits a packet's canonical bytes into [`Frame`]s;
//! [`Reassembler`] rebuilds packets at the receiving side, tolerating
//! interleaved and duplicated fragments and discarding incomplete packets
//! after a capacity bound (sensor memory is finite).

use std::collections::HashMap;

use crate::error::WireError;

/// Default Mica2/TinyOS frame payload size in bytes.
pub const FRAME_PAYLOAD: usize = 29;

/// Per-frame header: packet id (2) + index (1) + total (1).
pub const FRAME_HEADER: usize = 4;

/// One link-layer fragment of a packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Identifies which packet this fragment belongs to (link-local).
    pub packet_id: u16,
    /// This fragment's index, `0..total`.
    pub index: u8,
    /// Total fragments in the packet.
    pub total: u8,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// On-air size of this frame, including the fragment header.
    pub fn wire_len(&self) -> usize {
        FRAME_HEADER + self.payload.len()
    }

    /// Encodes the frame: `packet_id | index | total | payload`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.packet_id.to_be_bytes());
        out.push(self.index);
        out.push(self.total);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses a frame.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if the buffer is shorter than the header or
    /// the index/total pair is inconsistent.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() < FRAME_HEADER {
            return Err(WireError::Truncated {
                context: "frame header",
                needed: FRAME_HEADER,
                available: bytes.len(),
            });
        }
        let packet_id = u16::from_be_bytes([bytes[0], bytes[1]]);
        let index = bytes[2];
        let total = bytes[3];
        if total == 0 || index >= total {
            return Err(WireError::InvalidDiscriminant {
                context: "frame index/total",
                value: index,
            });
        }
        Ok(Frame {
            packet_id,
            index,
            total,
            payload: bytes[FRAME_HEADER..].to_vec(),
        })
    }
}

/// Number of frames a payload of `len` bytes needs at the given frame
/// payload size.
pub fn frames_needed(len: usize, frame_payload: usize) -> usize {
    assert!(frame_payload > 0, "frame payload must be positive");
    len.div_ceil(frame_payload).max(1)
}

/// Splits packet bytes into frames of at most [`FRAME_PAYLOAD`] payload.
///
/// # Panics
///
/// Panics if the packet would need more than 255 fragments.
pub fn fragment(packet_id: u16, bytes: &[u8]) -> Vec<Frame> {
    let total = frames_needed(bytes.len(), FRAME_PAYLOAD);
    assert!(total <= u8::MAX as usize, "packet needs {total} fragments");
    if bytes.is_empty() {
        return vec![Frame {
            packet_id,
            index: 0,
            total: 1,
            payload: Vec::new(),
        }];
    }
    bytes
        .chunks(FRAME_PAYLOAD)
        .enumerate()
        .map(|(i, chunk)| Frame {
            packet_id,
            index: i as u8,
            total: total as u8,
            payload: chunk.to_vec(),
        })
        .collect()
}

/// Reassembles packets from interleaved fragments, with bounded memory.
#[derive(Clone, Debug)]
pub struct Reassembler {
    capacity: usize,
    pending: HashMap<u16, Vec<Option<Vec<u8>>>>,
    /// Insertion order for capacity eviction.
    order: Vec<u16>,
    /// Packets discarded because the buffer was full.
    pub evicted: u64,
    /// Fragments dropped as malformed (zero total, index out of range)
    /// or inconsistent with the first-seen fragment geometry. A nonzero
    /// count is a loud signal of corruption or a misbehaving sender —
    /// these drops used to be silent.
    pub dropped: u64,
}

impl Reassembler {
    /// Creates a reassembler tracking at most `capacity` in-flight packets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Reassembler {
            capacity,
            pending: HashMap::new(),
            order: Vec::new(),
            evicted: 0,
            dropped: 0,
        }
    }

    /// Accepts one fragment; returns the complete packet bytes when the
    /// last missing fragment arrives. Duplicate fragments are ignored;
    /// malformed fragments and fragments inconsistent with the
    /// first-seen `total` are dropped and counted in
    /// [`dropped`](Reassembler::dropped) — never a panic, never silent.
    pub fn accept(&mut self, frame: Frame) -> Option<Vec<u8>> {
        // `Frame::from_bytes` enforces these invariants, but a hand-built
        // frame can violate them; drop-and-count instead of indexing out
        // of bounds below.
        if frame.total == 0 || frame.index >= frame.total {
            self.dropped += 1;
            return None;
        }
        let total = frame.total as usize;
        // A single-fragment packet is complete on arrival: it needs no
        // buffer slot, so it must not evict an in-flight packet.
        if total == 1 && !self.pending.contains_key(&frame.packet_id) {
            return Some(frame.payload);
        }
        if !self.pending.contains_key(&frame.packet_id) {
            if self.order.len() == self.capacity {
                let evict = self.order.remove(0);
                self.pending.remove(&evict);
                self.evicted += 1;
            }
            self.pending.insert(frame.packet_id, vec![None; total]);
            self.order.push(frame.packet_id);
        }
        let slots = self.pending.get_mut(&frame.packet_id)?;
        if slots.len() != total {
            self.dropped += 1; // inconsistent with first-seen geometry
            return None;
        }
        let idx = frame.index as usize;
        if slots[idx].is_none() {
            slots[idx] = Some(frame.payload);
        }
        if slots.iter().all(Option::is_some) {
            let slots = self.pending.remove(&frame.packet_id)?;
            self.order.retain(|&id| id != frame.packet_id);
            let mut out = Vec::new();
            for s in slots {
                out.extend_from_slice(&s.expect("all present"));
            }
            Some(out)
        } else {
            None
        }
    }

    /// In-flight (incomplete) packets currently buffered.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use crate::report::{Location, Report};

    fn marked_packet_bytes(marks: usize) -> Vec<u8> {
        let mut pkt = Packet::new(Report::new(b"frag-test".to_vec(), Location::default(), 1));
        for i in 0..marks {
            pkt.push_mark(crate::mark::Mark::unauthenticated(crate::id::NodeId(
                i as u16,
            )));
        }
        pkt.to_bytes()
    }

    #[test]
    fn round_trip_in_order() {
        let bytes = marked_packet_bytes(10);
        let frames = fragment(7, &bytes);
        assert!(frames.len() > 1, "must actually fragment");
        let mut r = Reassembler::new(4);
        let mut out = None;
        for f in frames {
            out = out.or(r.accept(f));
        }
        assert_eq!(out.unwrap(), bytes);
        assert_eq!(r.in_flight(), 0);
    }

    #[test]
    fn round_trip_out_of_order_and_duplicated() {
        let bytes = marked_packet_bytes(6);
        let mut frames = fragment(9, &bytes);
        frames.reverse();
        let dup = frames[0].clone();
        frames.insert(1, dup);
        let mut r = Reassembler::new(4);
        let mut out = None;
        for f in frames {
            let res = r.accept(f);
            assert!(out.is_none() || res.is_none(), "completed twice");
            out = out.or(res);
        }
        assert_eq!(out.unwrap(), bytes);
    }

    #[test]
    fn interleaved_packets_reassemble_independently() {
        let a = marked_packet_bytes(5);
        let b = marked_packet_bytes(8);
        let fa = fragment(1, &a);
        let fb = fragment(2, &b);
        let mut r = Reassembler::new(4);
        let mut done = Vec::new();
        for (x, y) in fa.iter().zip(fb.iter()) {
            if let Some(p) = r.accept(x.clone()) {
                done.push(p);
            }
            if let Some(p) = r.accept(y.clone()) {
                done.push(p);
            }
        }
        for f in fb.iter().skip(fa.len()) {
            if let Some(p) = r.accept(f.clone()) {
                done.push(p);
            }
        }
        assert_eq!(done.len(), 2);
        assert!(done.contains(&a));
        assert!(done.contains(&b));
    }

    #[test]
    fn missing_fragment_never_completes() {
        let bytes = marked_packet_bytes(10);
        let mut frames = fragment(3, &bytes);
        frames.remove(1); // lost in the air
        let mut r = Reassembler::new(4);
        for f in frames {
            assert!(r.accept(f).is_none());
        }
        assert_eq!(r.in_flight(), 1);
    }

    #[test]
    fn capacity_eviction_counts() {
        let mut r = Reassembler::new(2);
        for id in 0..4u16 {
            // First fragment only: stays in flight.
            let bytes = marked_packet_bytes(10);
            let f = fragment(id, &bytes).remove(0);
            assert!(r.accept(f).is_none());
        }
        assert_eq!(r.in_flight(), 2);
        assert_eq!(r.evicted, 2);
    }

    #[test]
    fn single_frame_packet_at_capacity_completes_without_evicting() {
        // Regression: a complete-on-arrival packet used to claim a buffer
        // slot first, spuriously evicting an in-flight packet.
        let big = marked_packet_bytes(10);
        let mut r = Reassembler::new(2);
        let fa = fragment(1, &big);
        let fb = fragment(2, &big);
        assert!(r.accept(fa[0].clone()).is_none());
        assert!(r.accept(fb[0].clone()).is_none());
        assert_eq!(r.in_flight(), 2);
        // A storm of single-frame packets at full capacity...
        for id in 10..30u16 {
            let small = fragment(id, b"tiny");
            assert_eq!(r.accept(small[0].clone()).unwrap(), b"tiny");
        }
        // ...evicts nothing: both partials are still completable.
        assert_eq!(r.evicted, 0);
        assert_eq!(r.in_flight(), 2);
        let mut done = 0;
        for f in fa.into_iter().skip(1).chain(fb.into_iter().skip(1)) {
            if let Some(p) = r.accept(f) {
                assert_eq!(p, big);
                done += 1;
            }
        }
        assert_eq!(done, 2);
    }

    #[test]
    fn interleaved_storm_eviction_is_exactly_counted() {
        // Eight multi-fragment packets round-robined through a capacity-2
        // buffer: memory stays bounded, nothing completes (each restart
        // evicts the oldest entry before it can fill), and the eviction
        // count is exact. Every fragment arrival for a not-pending packet
        // is a fresh start, so starts = evicted + in_flight at the end.
        let bytes = marked_packet_bytes(10);
        let storms: Vec<Vec<Frame>> = (0..8u16).map(|id| fragment(id, &bytes)).collect();
        let n_frags = storms[0].len();
        assert!(n_frags > 1);
        let mut r = Reassembler::new(2);
        for i in 0..n_frags {
            for s in &storms {
                assert!(r.accept(s[i].clone()).is_none(), "thrash cannot complete");
                assert!(r.in_flight() <= 2, "capacity bound violated");
            }
        }
        // Round 0 starts 8 and keeps 2 (6 evictions); every later round
        // restarts all 8 (8 evictions each).
        assert_eq!(r.evicted, 6 + 8 * (n_frags as u64 - 1));
        assert_eq!(r.in_flight(), 2);
        assert_eq!(r.dropped, 0);

        // The same storm through a buffer that fits all eight packets:
        // every packet completes, nothing is evicted.
        let mut r = Reassembler::new(8);
        let mut completed = 0;
        for i in 0..n_frags {
            for s in &storms {
                if let Some(p) = r.accept(s[i].clone()) {
                    assert_eq!(p, bytes);
                    completed += 1;
                }
            }
        }
        assert_eq!(completed, 8);
        assert_eq!(r.evicted, 0);
        assert_eq!(r.in_flight(), 0);
    }

    #[test]
    fn hand_built_out_of_range_fragment_is_counted_drop_not_panic() {
        // Regression: `index >= total` from a hand-built frame used to
        // panic on the slot index; zero-total used to insert a
        // zero-slot entry that "completed" as an empty packet.
        let mut r = Reassembler::new(2);
        assert_eq!(
            r.accept(Frame {
                packet_id: 1,
                index: 5,
                total: 2,
                payload: vec![0xaa],
            }),
            None
        );
        assert_eq!(
            r.accept(Frame {
                packet_id: 2,
                index: 0,
                total: 0,
                payload: vec![0xbb],
            }),
            None
        );
        assert_eq!(r.dropped, 2);
        assert_eq!(r.in_flight(), 0, "malformed fragments buffer nothing");
    }

    #[test]
    fn inconsistent_total_is_a_counted_drop() {
        // Regression: these drops used to be silent.
        let bytes = marked_packet_bytes(10);
        let frames = fragment(5, &bytes);
        assert!(frames.len() >= 2);
        let mut r = Reassembler::new(2);
        assert!(r.accept(frames[0].clone()).is_none());
        // Same packet id, different claimed geometry: dropped, counted,
        // and the original reassembly is unharmed.
        let mut liar = frames[1].clone();
        liar.total = frames.len() as u8 + 3;
        assert!(r.accept(liar).is_none());
        assert_eq!(r.dropped, 1);
        let mut out = None;
        for f in frames.iter().skip(1) {
            out = out.or(r.accept(f.clone()));
        }
        assert_eq!(out.unwrap(), bytes);
    }

    #[test]
    fn frame_wire_round_trip() {
        let bytes = marked_packet_bytes(4);
        for f in fragment(0xBEEF, &bytes) {
            let parsed = Frame::from_bytes(&f.to_bytes()).unwrap();
            assert_eq!(parsed, f);
        }
    }

    #[test]
    fn bad_frames_rejected() {
        assert!(Frame::from_bytes(&[1, 2, 3]).is_err());
        // index >= total
        assert!(Frame::from_bytes(&[0, 1, 2, 2, 0xaa]).is_err());
        // total == 0
        assert!(Frame::from_bytes(&[0, 1, 0, 0]).is_err());
    }

    #[test]
    fn frames_needed_math() {
        assert_eq!(frames_needed(0, 29), 1);
        assert_eq!(frames_needed(29, 29), 1);
        assert_eq!(frames_needed(30, 29), 2);
        assert_eq!(frames_needed(100, 29), 4);
    }

    #[test]
    fn empty_packet_is_one_frame() {
        let frames = fragment(1, &[]);
        assert_eq!(frames.len(), 1);
        let mut r = Reassembler::new(1);
        assert_eq!(r.accept(frames[0].clone()).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn marking_overhead_amplifies_frame_count() {
        // The physical point: more marks -> more frames -> more exposure
        // to per-frame loss.
        let lean = marked_packet_bytes(0);
        let heavy = marked_packet_bytes(30);
        assert!(
            frames_needed(heavy.len(), FRAME_PAYLOAD)
                >= 2 * frames_needed(lean.len(), FRAME_PAYLOAD)
        );
    }
}
