//! Packets: a report plus the marks accumulated along the forwarding path.
//!
//! The paper's message chain is
//! `M_0 = M`, `M_i = M_{i-1} | mark_i` — marks are *appended*, never
//! replaced (§1: "Different from Internet marking schemes where a new mark
//! may replace an existing one, in PNM new marks are simply appended").
//! [`Packet::to_bytes`] is the canonical encoding of `M_i`; every nested MAC
//! is computed over exactly these bytes, so the encoding must be injective —
//! guaranteed by length-prefixing every variable-size field.

use serde::{Deserialize, Serialize};

use crate::error::WireError;
use crate::mark::Mark;
use crate::report::Report;

/// Hard cap on marks per packet, bounding parser memory even when a mole
/// floods a packet with inserted marks.
pub const MAX_MARKS: usize = 4096;

/// A packet in flight: the original report plus appended marks.
///
/// # Examples
///
/// ```
/// use pnm_wire::{Location, Mark, NodeId, Packet, Report};
///
/// let report = Report::new(b"ev".to_vec(), Location::new(0.0, 0.0), 1);
/// let mut pkt = Packet::new(report);
/// pkt.push_mark(Mark::unauthenticated(NodeId(4)));
/// let bytes = pkt.to_bytes();
/// assert_eq!(Packet::from_bytes(&bytes)?, pkt);
/// # Ok::<(), pnm_wire::WireError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// The report `M` as injected by the source.
    pub report: Report,
    /// Marks appended by forwarding nodes, oldest first.
    pub marks: Vec<Mark>,
}

impl Packet {
    /// Wraps a report in an unmarked packet (`M_0 = M`).
    pub fn new(report: Report) -> Self {
        Packet {
            report,
            marks: Vec::new(),
        }
    }

    /// Appends a mark (the `M_i = M_{i-1} | mark_i` step).
    ///
    /// # Panics
    ///
    /// Panics if the packet already holds [`MAX_MARKS`] marks.
    pub fn push_mark(&mut self, mark: Mark) {
        assert!(
            self.marks.len() < MAX_MARKS,
            "packet mark count would exceed MAX_MARKS"
        );
        self.marks.push(mark);
    }

    /// Canonical wire encoding of `M_i`:
    /// `report | mark_count(u16) | marks…`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&self.report.to_bytes());
        out.extend_from_slice(&(self.marks.len() as u16).to_be_bytes());
        for mark in &self.marks {
            mark.encode_into(&mut out);
        }
        out
    }

    /// Parses a packet, requiring the buffer to be exactly consumed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation, bad discriminants, an oversized
    /// mark count, or trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let (report, mut off) = Report::parse(bytes)?;
        if bytes.len() < off + 2 {
            return Err(WireError::Truncated {
                context: "packet mark count",
                needed: off + 2,
                available: bytes.len(),
            });
        }
        let count = u16::from_be_bytes([bytes[off], bytes[off + 1]]) as usize;
        off += 2;
        if count > MAX_MARKS {
            return Err(WireError::LengthOutOfRange {
                context: "packet mark count",
                declared: count,
                max: MAX_MARKS,
            });
        }
        let mut marks = Vec::with_capacity(count);
        for _ in 0..count {
            let (mark, used) = Mark::parse(&bytes[off..])?;
            marks.push(mark);
            off += used;
        }
        if off != bytes.len() {
            return Err(WireError::TrailingBytes {
                remaining: bytes.len() - off,
            });
        }
        Ok(Packet { report, marks })
    }

    /// Total encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.report.encoded_len() + 2 + self.marks.iter().map(Mark::encoded_len).sum::<usize>()
    }

    /// Bytes of traceback overhead this packet carries (everything beyond
    /// the bare report) — the quantity probabilistic marking minimizes.
    pub fn marking_overhead(&self) -> usize {
        self.encoded_len() - self.report.encoded_len()
    }

    /// Number of marks currently on the packet.
    pub fn mark_count(&self) -> usize {
        self.marks.len()
    }
}

impl From<Report> for Packet {
    fn from(report: Report) -> Self {
        Packet::new(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::NodeId;
    use crate::report::Location;
    use pnm_crypto::MacKey;

    fn sample_packet(marks: usize) -> Packet {
        let report = Report::new(b"sample".to_vec(), Location::new(3.0, 4.0), 99);
        let mut pkt = Packet::new(report);
        for i in 0..marks {
            let key = MacKey::derive(b"m", i as u64);
            let mac = key.mark_mac(&pkt.to_bytes(), 8);
            pkt.push_mark(Mark::plain(NodeId(i as u16), mac));
        }
        pkt
    }

    #[test]
    fn round_trip_no_marks() {
        let pkt = sample_packet(0);
        assert_eq!(Packet::from_bytes(&pkt.to_bytes()).unwrap(), pkt);
    }

    #[test]
    fn round_trip_many_marks() {
        for n in [1, 3, 10, 50] {
            let pkt = sample_packet(n);
            let bytes = pkt.to_bytes();
            assert_eq!(bytes.len(), pkt.encoded_len());
            assert_eq!(Packet::from_bytes(&bytes).unwrap(), pkt, "{n} marks");
        }
    }

    #[test]
    fn truncation_detected_everywhere() {
        let bytes = sample_packet(3).to_bytes();
        for cut in 0..bytes.len() {
            assert!(Packet::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = sample_packet(2).to_bytes();
        bytes.extend_from_slice(&[1, 2, 3]);
        assert!(matches!(
            Packet::from_bytes(&bytes).unwrap_err(),
            WireError::TrailingBytes { remaining: 3 }
        ));
    }

    #[test]
    fn oversized_mark_count_rejected() {
        let report = Report::new(vec![], Location::default(), 0);
        let mut bytes = report.to_bytes();
        bytes.extend_from_slice(&(MAX_MARKS as u16 + 1).to_be_bytes());
        assert!(matches!(
            Packet::from_bytes(&bytes).unwrap_err(),
            WireError::LengthOutOfRange { .. }
        ));
    }

    #[test]
    fn encoding_is_injective_for_mark_order() {
        // Mark re-ordering must change the canonical bytes, otherwise
        // nested MACs could not detect re-order attacks.
        let pkt = sample_packet(2);
        let mut swapped = pkt.clone();
        swapped.marks.swap(0, 1);
        assert_ne!(pkt.to_bytes(), swapped.to_bytes());
    }

    #[test]
    fn overhead_accounting() {
        let pkt0 = sample_packet(0);
        assert_eq!(pkt0.marking_overhead(), 2); // just the mark-count field
        let pkt3 = sample_packet(3);
        assert_eq!(
            pkt3.marking_overhead(),
            2 + pkt3.marks.iter().map(Mark::encoded_len).sum::<usize>()
        );
        assert_eq!(pkt3.mark_count(), 3);
    }

    #[test]
    fn from_report() {
        let report = Report::new(vec![1], Location::default(), 5);
        let pkt: Packet = report.clone().into();
        assert_eq!(pkt.report, report);
        assert!(pkt.marks.is_empty());
    }
}
