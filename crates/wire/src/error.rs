//! Wire-format error types.

use core::fmt;

/// Errors produced while parsing wire bytes into packets, reports, or marks.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer ended before the encoded structure was complete.
    Truncated {
        /// What was being parsed when the buffer ran out.
        context: &'static str,
        /// Bytes needed beyond what was available.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A discriminant byte had no defined meaning.
    InvalidDiscriminant {
        /// What was being parsed.
        context: &'static str,
        /// The offending byte.
        value: u8,
    },
    /// A length field exceeded the format's hard limit.
    LengthOutOfRange {
        /// What was being parsed.
        context: &'static str,
        /// The declared length.
        declared: usize,
        /// The maximum allowed.
        max: usize,
    },
    /// Bytes remained after the structure was fully parsed.
    TrailingBytes {
        /// How many bytes were left over.
        remaining: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "truncated {context}: needed {needed} bytes, only {available} available"
            ),
            WireError::InvalidDiscriminant { context, value } => {
                write!(
                    f,
                    "invalid discriminant {value:#04x} while parsing {context}"
                )
            }
            WireError::LengthOutOfRange {
                context,
                declared,
                max,
            } => write!(
                f,
                "length {declared} out of range while parsing {context} (max {max})"
            ),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after packet")
            }
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = WireError::Truncated {
            context: "mark",
            needed: 8,
            available: 3,
        };
        assert!(e.to_string().contains("truncated mark"));
        let e = WireError::InvalidDiscriminant {
            context: "mark id",
            value: 0xff,
        };
        assert!(e.to_string().contains("0xff"));
        let e = WireError::LengthOutOfRange {
            context: "event",
            declared: 70000,
            max: 1024,
        };
        assert!(e.to_string().contains("70000"));
        let e = WireError::TrailingBytes { remaining: 4 };
        assert!(e.to_string().contains("4 trailing"));
    }

    #[test]
    fn is_std_error() {
        fn takes_error<E: std::error::Error + Send + Sync>(_: E) {}
        takes_error(WireError::TrailingBytes { remaining: 1 });
    }
}
