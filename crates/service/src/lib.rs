//! # pnm-service — a sharded, concurrent traceback service
//!
//! The sink engine in `pnm-core` is a sequential pipeline: one call, one
//! packet, one verdict. This crate wraps it in a long-running service
//! shape suitable for a real sink node:
//!
//! * **Sharding.** A [`ServicePool`] owns `k` worker threads, each with a
//!   private [`SinkEngine`](pnm_core::SinkEngine). Packets are
//!   hash-partitioned by report bytes, so all deliveries of one report
//!   land on the same shard — the report-keyed anonymous-ID table cache
//!   stays shard-local (no locks on the hot path), and `k` shards hold
//!   `k×` the aggregate table-cache capacity.
//! * **Backpressure.** Ingestion goes through bounded queues with an
//!   explicit full-queue policy ([`BackpressurePolicy`]): block the
//!   producer, or shed the packet and count the drop exactly.
//! * **Drain.** [`ServicePool::drain`] closes ingestion, lets shards
//!   finish their backlogs, then merges every shard's evidence — counters,
//!   route graph, quarantine — into one engine via
//!   [`SinkEngine::absorb`](pnm_core::SinkEngine::absorb). The route graph
//!   is a set union, so the merged localization equals what a single
//!   sequential engine would have computed over the same packets, for any
//!   shard count and any arrival interleaving. Isolation policy is applied
//!   once, to the merged graph, at drain time (shard-local quarantine
//!   would be partition-dependent).
//! * **Supervision.** Shard workers run every packet under
//!   `catch_unwind`: a packet that panics the pipeline is recorded as
//!   poison ([`PoisonRecord`]) and quarantined, and the shard restarts
//!   from a fresh engine plus its last good checkpoint. A drain watchdog
//!   ([`ServiceConfig::drain_timeout`]) bounds how long
//!   [`ServicePool::drain`] waits for a wedged shard, and
//!   [`ServicePool::ingest_with_retry`] adds bounded retry-with-backoff
//!   under shedding.
//! * **Durability.** [`ServiceConfig::store`] attaches an
//!   [`EvidenceStore`](pnm_core::EvidenceStore) (typically the
//!   append-only [`LogStore`](pnm_core::LogStore)): each shard appends an
//!   evidence delta at every checkpoint and once more at drain, and
//!   [`ServicePool::recover`] (or the [`ServicePool::recover_from_log`]
//!   shortcut) rebuilds a pool from the log after a process crash — the
//!   replayed engines are byte-identical in evidence to what the crashed
//!   shards had last checkpointed. The poison-quarantine restart reuses
//!   the same replay semantics. Store append failures are counted per
//!   shard ([`ShardSnapshot::store_errors`]), never fatal.
//! * **Telemetry.** Every shard records queue-wait, service, and total
//!   latency in mergeable power-of-two histograms (the
//!   [`LatencyHistogram`] from `pnm-obs`, re-exported here), plus a
//!   per-stage pipeline breakdown
//!   ([`StageMetrics`](pnm_core::StageMetrics));
//!   [`ServicePool::snapshot`] folds them with the per-shard
//!   [`SinkCounters`](pnm_core::SinkCounters) into a serializable
//!   [`ServiceSnapshot`], and [`ServicePool::metrics_text`] exposes the
//!   same state through a `pnm-obs` [`Registry`](pnm_obs::Registry) in
//!   Prometheus text format. [`ServiceConfig::tracer`] attaches a span
//!   collector to every shard engine.
//!
//! Classifier caveat: registry-backed verdicts are per-report and thus
//! partition-invariant, but the volume monitor's rate window is
//! shard-local, so pure volume anomalies are detected per-shard
//! (approximately) rather than globally. The field study and background
//! simulations in `pnm-sim` run on this service.

mod config;
mod pool;
mod telemetry;

pub use config::{BackpressurePolicy, PoisonHook, ServiceConfig};
pub use pool::{DrainReport, IngestError, PoisonRecord, RecoveryStats, ServicePool};
pub use telemetry::{
    counters_json, counters_json_value, LatencyHistogram, ServiceSnapshot, ShardSnapshot,
};

#[cfg(test)]
mod send_sync {
    use super::*;

    #[test]
    fn service_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServicePool>();
        assert_send_sync::<ServiceConfig>();
        assert_send_sync::<BackpressurePolicy>();
        assert_send_sync::<ServiceSnapshot>();
        assert_send_sync::<ShardSnapshot>();
        assert_send_sync::<LatencyHistogram>();
        assert_send_sync::<DrainReport>();
        assert_send_sync::<IngestError>();
        assert_send_sync::<PoisonRecord>();
        assert_send_sync::<PoisonHook>();
        assert_send_sync::<RecoveryStats>();
    }
}
