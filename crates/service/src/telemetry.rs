//! Service telemetry: per-stage latency histograms and the serializable
//! snapshot the pool publishes.
//!
//! Every shard records, for each packet it processes, how long the packet
//! waited in its bounded queue (`queue_wait_us`), how long the sink
//! pipeline spent on it (`service_us`), and the end-to-end total
//! (`total_us`). Histograms use power-of-two buckets so recording is a
//! couple of integer ops, merging across shards is element-wise addition,
//! and quantile queries come back as conservative (upper-bound) estimates.
//! [`ServiceSnapshot`] merges the per-shard [`SinkCounters`] and
//! histograms into one picture and renders itself as JSON without any
//! format-crate dependency.

use pnm_core::SinkCounters;
use serde::{Deserialize, Serialize};

/// Number of power-of-two latency buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` microseconds, except bucket 0 which also holds 0 µs.
/// 40 buckets cover up to ~2^40 µs ≈ 12.7 days, far past any real latency.
const BUCKETS: usize = 40;

/// A mergeable power-of-two latency histogram (microsecond samples).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(us: u64) -> usize {
        // floor(log2(us)) with 0 mapped to bucket 0, clamped to the top.
        (63 - (us | 1).leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, us: u64) {
        self.buckets[Self::bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Folds another histogram into this one (element-wise sum).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Conservative (upper-bound) estimate of the `q`-quantile, `q` in
    /// `[0, 1]`. Returns the inclusive upper edge of the bucket holding the
    /// quantile sample, capped at the true maximum; 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                // The top bucket is open-ended; its only honest upper
                // bound is the recorded maximum.
                let upper = if i + 1 >= BUCKETS {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.min(self.max_us);
            }
        }
        self.max_us
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"mean_us\": {:.1}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
            self.count,
            self.mean_us(),
            self.quantile_us(0.50),
            self.quantile_us(0.90),
            self.quantile_us(0.99),
            self.max_us,
        )
    }
}

/// One shard's view at snapshot time.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// Shard index (also the hash-partition slot).
    pub shard: usize,
    /// Packets accepted into this shard's queue.
    pub accepted: u64,
    /// Packets shed at this shard's queue under the shed policy.
    pub shed: u64,
    /// Packets fully processed by this shard's engine.
    pub processed: u64,
    /// Packets that crashed this shard's worker (each one was quarantined
    /// as poison and the shard restarted from its last good checkpoint).
    pub panics: u64,
    /// The shard engine's pipeline counters.
    pub counters: SinkCounters,
    /// Time spent waiting in the bounded queue.
    pub queue_wait_us: LatencyHistogram,
    /// Time spent inside the sink pipeline.
    pub service_us: LatencyHistogram,
    /// End-to-end (enqueue → verdict) latency.
    pub total_us: LatencyHistogram,
}

/// The merged, serializable service view: per-shard snapshots plus
/// cross-shard totals.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ServiceSnapshot {
    /// Per-shard state, indexed by shard.
    pub shards: Vec<ShardSnapshot>,
    /// Sum of all shard engine counters ([`SinkCounters::merge`]).
    pub totals: SinkCounters,
    /// Total packets accepted into any queue.
    pub accepted: u64,
    /// Total packets shed across all queues.
    pub shed: u64,
    /// Total packets fully processed.
    pub processed: u64,
    /// Total packets that crashed a shard worker (quarantined as poison).
    pub panics: u64,
}

impl ServiceSnapshot {
    /// Packets accepted but not yet processed (in queues or in flight).
    /// Poison packets are accounted separately — they were consumed by a
    /// crash, not left in flight.
    pub fn backlog(&self) -> u64 {
        self.accepted.saturating_sub(self.processed + self.panics)
    }

    /// Cross-shard end-to-end latency histogram (merge of every shard's
    /// `total_us`).
    pub fn total_latency(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for s in &self.shards {
            h.merge(&s.total_us);
        }
        h
    }

    /// Renders the snapshot as a self-contained JSON document.
    ///
    /// The vendored serde stub performs no format serialization, so the
    /// service renders its own JSON; the derives keep the types compatible
    /// with real serde if a future PR vendors it.
    pub fn to_json(&self) -> String {
        let shards: Vec<String> = self
            .shards
            .iter()
            .map(|s| {
                format!(
                    concat!(
                        "    {{\"shard\": {}, \"accepted\": {}, \"shed\": {}, ",
                        "\"processed\": {}, \"panics\": {},\n",
                        "     \"counters\": {},\n",
                        "     \"queue_wait_us\": {},\n",
                        "     \"service_us\": {},\n",
                        "     \"total_us\": {}}}"
                    ),
                    s.shard,
                    s.accepted,
                    s.shed,
                    s.processed,
                    s.panics,
                    counters_json(&s.counters),
                    s.queue_wait_us.to_json(),
                    s.service_us.to_json(),
                    s.total_us.to_json(),
                )
            })
            .collect();
        format!(
            concat!(
                "{{\n",
                "  \"accepted\": {},\n",
                "  \"shed\": {},\n",
                "  \"processed\": {},\n",
                "  \"panics\": {},\n",
                "  \"backlog\": {},\n",
                "  \"totals\": {},\n",
                "  \"shards\": [\n{}\n  ]\n",
                "}}"
            ),
            self.accepted,
            self.shed,
            self.processed,
            self.panics,
            self.backlog(),
            counters_json(&self.totals),
            shards.join(",\n"),
        )
    }
}

/// Renders [`SinkCounters`] as a JSON object.
pub fn counters_json(c: &SinkCounters) -> String {
    format!(
        concat!(
            "{{\"packets\": {}, \"hash_count\": {}, \"marks_verified\": {}, ",
            "\"marks_rejected\": {}, \"table_builds\": {}, \"table_cache_hits\": {}, ",
            "\"table_cache_hit_rate\": {}, \"resolver_fallback_scans\": {}, ",
            "\"suspicious\": {}, \"benign\": {}, \"malformed\": {}, ",
            "\"duplicates_suppressed\": {}}}"
        ),
        c.packets,
        c.hash_count,
        c.marks_verified,
        c.marks_rejected,
        c.table_builds,
        c.table_cache_hits,
        c.table_cache_hit_rate()
            .map_or("null".to_string(), |r| format!("{r:.4}")),
        c.resolver_fallback_scans,
        c.suspicious,
        c.benign,
        c.malformed,
        c.duplicates_suppressed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::new();
        for us in [0, 1, 2, 3, 5, 9, 17, 100, 1000] {
            h.record(us);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.max_us(), 1000);
        assert!(h.mean_us() > 0.0);
        // Quantiles are conservative upper bounds, never past the max.
        assert!(h.quantile_us(0.5) >= 3);
        assert_eq!(h.quantile_us(1.0), 1000);
        assert!(h.quantile_us(0.99) <= 1000);
        assert_eq!(LatencyHistogram::new().quantile_us(0.5), 0);
    }

    #[test]
    fn histogram_merge_matches_combined_stream() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for us in 0..200u64 {
            whole.record(us * 7);
            if us % 2 == 0 {
                a.record(us * 7);
            } else {
                b.record(us * 7);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn huge_samples_clamp_to_top_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_us(0.5), u64::MAX);
    }

    #[test]
    fn snapshot_json_is_well_formed_enough() {
        let snap = ServiceSnapshot {
            shards: vec![ShardSnapshot::default(), ShardSnapshot::default()],
            ..ServiceSnapshot::default()
        };
        let json = snap.to_json();
        assert!(json.contains("\"shards\""));
        assert!(json.contains("\"totals\""));
        assert_eq!(json.matches("\"shard\":").count(), 2);
        // Balanced braces (cheap structural sanity check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
