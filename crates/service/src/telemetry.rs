//! Service telemetry: per-stage latency histograms and the serializable
//! snapshot the pool publishes.
//!
//! Every shard records, for each packet it processes, how long the packet
//! waited in its bounded queue (`queue_wait_us`), how long the sink
//! pipeline spent on it (`service_us`), and the end-to-end total
//! (`total_us`). Histograms are the mergeable power-of-two
//! [`LatencyHistogram`] from `pnm-obs` (re-exported here for
//! compatibility): recording is a couple of integer ops, merging across
//! shards is element-wise addition, and quantile queries come back as
//! conservative (upper-bound) estimates. [`ServiceSnapshot`] merges the
//! per-shard [`SinkCounters`], latency histograms, and per-stage pipeline
//! breakdowns ([`StageMetrics`]) into one picture and renders itself as
//! JSON through the `pnm-obs` JSON model — one renderer for the whole
//! workspace, no format-crate dependency.

use pnm_core::{SinkCounters, StageMetrics};
use pnm_obs::JsonValue;
use serde::{Deserialize, Serialize};

pub use pnm_obs::LatencyHistogram;

/// One shard's view at snapshot time.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// Shard index (also the hash-partition slot).
    pub shard: usize,
    /// Packets accepted into this shard's queue.
    pub accepted: u64,
    /// Packets shed at this shard's queue under the shed policy.
    pub shed: u64,
    /// Packets fully processed by this shard's engine.
    pub processed: u64,
    /// Packets that crashed this shard's worker (each one was quarantined
    /// as poison and the shard restarted from its last good checkpoint).
    pub panics: u64,
    /// Evidence-store appends that failed for this shard. Failures are
    /// counted, not fatal: the engine keeps its in-memory evidence and
    /// retries the cumulative delta at the next checkpoint. Always 0
    /// without an attached store.
    #[serde(default)]
    pub store_errors: u64,
    /// The shard engine's pipeline counters.
    pub counters: SinkCounters,
    /// Per-stage latency breakdown of the shard engine's pipeline
    /// (classify → verify → resolve → reconstruct → localize). Empty when
    /// the service was configured with stage timing off.
    pub stages: StageMetrics,
    /// Time spent waiting in the bounded queue.
    pub queue_wait_us: LatencyHistogram,
    /// Time spent inside the sink pipeline.
    pub service_us: LatencyHistogram,
    /// End-to-end (enqueue → verdict) latency.
    pub total_us: LatencyHistogram,
}

impl ShardSnapshot {
    /// The shard's snapshot as a structured JSON value.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("shard", JsonValue::UInt(self.shard as u64)),
            ("accepted", JsonValue::UInt(self.accepted)),
            ("shed", JsonValue::UInt(self.shed)),
            ("processed", JsonValue::UInt(self.processed)),
            ("panics", JsonValue::UInt(self.panics)),
            ("store_errors", JsonValue::UInt(self.store_errors)),
            ("counters", counters_json_value(&self.counters)),
            ("stages", self.stages.to_json_value()),
            ("queue_wait_us", self.queue_wait_us.to_json_value()),
            ("service_us", self.service_us.to_json_value()),
            ("total_us", self.total_us.to_json_value()),
        ])
    }
}

/// The merged, serializable service view: per-shard snapshots plus
/// cross-shard totals.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ServiceSnapshot {
    /// Per-shard state, indexed by shard.
    pub shards: Vec<ShardSnapshot>,
    /// Sum of all shard engine counters ([`SinkCounters::merge`]).
    pub totals: SinkCounters,
    /// Total packets accepted into any queue.
    pub accepted: u64,
    /// Total packets shed across all queues.
    pub shed: u64,
    /// Total packets fully processed.
    pub processed: u64,
    /// Total packets that crashed a shard worker (quarantined as poison).
    pub panics: u64,
    /// Total evidence-store append failures across all shards (0 without
    /// an attached store).
    #[serde(default)]
    pub store_errors: u64,
}

impl ServiceSnapshot {
    /// Packets accepted but not yet processed (in queues or in flight).
    /// Poison packets are accounted separately — they were consumed by a
    /// crash, not left in flight.
    pub fn backlog(&self) -> u64 {
        self.accepted.saturating_sub(self.processed + self.panics)
    }

    /// Cross-shard end-to-end latency histogram (merge of every shard's
    /// `total_us`).
    pub fn total_latency(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for s in &self.shards {
            h.merge(&s.total_us);
        }
        h
    }

    /// Cross-shard per-stage pipeline breakdown (merge of every shard's
    /// [`StageMetrics`]).
    pub fn stage_metrics(&self) -> StageMetrics {
        let mut m = StageMetrics::new();
        for s in &self.shards {
            m.merge(&s.stages);
        }
        m
    }

    /// The snapshot as a structured JSON value.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("accepted", JsonValue::UInt(self.accepted)),
            ("shed", JsonValue::UInt(self.shed)),
            ("processed", JsonValue::UInt(self.processed)),
            ("panics", JsonValue::UInt(self.panics)),
            ("store_errors", JsonValue::UInt(self.store_errors)),
            ("backlog", JsonValue::UInt(self.backlog())),
            ("totals", counters_json_value(&self.totals)),
            ("stages", self.stage_metrics().to_json_value()),
            (
                "shards",
                JsonValue::Array(self.shards.iter().map(|s| s.to_json_value()).collect()),
            ),
        ])
    }

    /// Renders the snapshot as a self-contained JSON document via the
    /// shared `pnm-obs` renderer.
    pub fn to_json(&self) -> String {
        self.to_json_value().render_pretty()
    }
}

/// [`SinkCounters`] as a structured JSON value.
pub fn counters_json_value(c: &SinkCounters) -> JsonValue {
    JsonValue::obj(vec![
        ("packets", JsonValue::UInt(c.packets as u64)),
        ("hash_count", JsonValue::UInt(c.hash_count as u64)),
        ("marks_verified", JsonValue::UInt(c.marks_verified as u64)),
        ("marks_rejected", JsonValue::UInt(c.marks_rejected as u64)),
        ("table_builds", JsonValue::UInt(c.table_builds as u64)),
        (
            "table_cache_hits",
            JsonValue::UInt(c.table_cache_hits as u64),
        ),
        (
            "table_cache_hit_rate",
            c.table_cache_hit_rate()
                .map_or(JsonValue::Null, JsonValue::f4),
        ),
        (
            "resolver_fallback_scans",
            JsonValue::UInt(c.resolver_fallback_scans as u64),
        ),
        ("suspicious", JsonValue::UInt(c.suspicious as u64)),
        ("benign", JsonValue::UInt(c.benign as u64)),
        ("malformed", JsonValue::UInt(c.malformed as u64)),
        (
            "duplicates_suppressed",
            JsonValue::UInt(c.duplicates_suppressed as u64),
        ),
    ])
}

/// Renders [`SinkCounters`] as a JSON object.
pub fn counters_json(c: &SinkCounters) -> String {
    counters_json_value(c).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relocated_histogram_still_saturates_and_quantiles() {
        // The histogram now lives in pnm-obs; the re-export must behave
        // identically to the old local type.
        let mut h = LatencyHistogram::new();
        for us in [0, 1, 2, 3, 5, 9, 17, 100, 1000] {
            h.record(us);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.max_us(), 1000);
        assert!(h.quantile_us(0.5) >= 3);
        assert_eq!(h.quantile_us(1.0), 1000);
        h.record(u64::MAX);
        assert_eq!(h.quantile_us(1.0), u64::MAX);
        assert_eq!(h.count(), 10);
    }

    #[test]
    fn snapshot_json_is_well_formed_enough() {
        let snap = ServiceSnapshot {
            shards: vec![ShardSnapshot::default(), ShardSnapshot::default()],
            ..ServiceSnapshot::default()
        };
        let json = snap.to_json();
        assert!(json.contains("\"shards\""));
        assert!(json.contains("\"totals\""));
        assert!(json.contains("\"stages\""));
        assert_eq!(json.matches("\"shard\":").count(), 2);
        // Balanced braces (cheap structural sanity check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // The shared renderer round-trips through the shared parser.
        let parsed = pnm_obs::json::parse(&json).expect("snapshot JSON parses");
        assert_eq!(parsed.get("processed").and_then(JsonValue::as_u64), Some(0));
    }

    #[test]
    fn counters_json_renders_null_hit_rate_when_no_lookups() {
        let json = counters_json(&SinkCounters::default());
        assert!(json.contains("\"table_cache_hit_rate\": null"));
        pnm_obs::json::parse(&json).expect("counters JSON parses");
    }

    #[test]
    fn stage_metrics_merge_across_shards() {
        let mut a = ShardSnapshot::default();
        a.stages.classify.record(10);
        let mut b = ShardSnapshot::default();
        b.stages.classify.record(20);
        b.stages.localize.record(5);
        let snap = ServiceSnapshot {
            shards: vec![a, b],
            ..ServiceSnapshot::default()
        };
        let merged = snap.stage_metrics();
        assert_eq!(merged.classify.count(), 2);
        assert_eq!(merged.localize.count(), 1);
        assert_eq!(merged.verify.count(), 0);
    }
}
