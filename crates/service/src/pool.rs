//! The sharded worker pool: bounded-queue ingestion, hash partitioning,
//! backpressure, shard supervision, drain, and cross-shard merge.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use std::collections::BTreeMap;
use std::path::Path;

use pnm_core::store::{Evidence, EvidenceStore, LogStore, StoreError};
use pnm_core::{SinkConfig, SinkEngine, SinkOutcome, StageMetrics};
use pnm_crypto::KeyStore;
use pnm_obs::{Counter, FieldValue, FlightRecorder, Registry, TraceContext};
use pnm_wire::Packet;

use crate::config::{BackpressurePolicy, PoisonHook, ServiceConfig};
use crate::telemetry::{LatencyHistogram, ServiceSnapshot, ShardSnapshot};

/// Why `ingest` refused a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// The service is closed (draining or drained); the packet was not
    /// enqueued.
    Closed,
    /// The target shard's queue was full under
    /// [`BackpressurePolicy::Shed`]; the drop was counted in the shard's
    /// shed counter.
    Shed,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Closed => write!(f, "service is closed to new packets"),
            IngestError::Shed => write!(f, "shard queue full; packet shed"),
        }
    }
}

impl std::error::Error for IngestError {}

/// One enqueued unit of work.
struct Job {
    seq: u64,
    now_us: u64,
    enqueued: Instant,
    /// Trace context carried across the queue hand-off: the shard engine
    /// opens its `sink.ingest` span inside it, so the packet's pool pass
    /// stays in the trace the caller (gateway/client) started.
    ctx: TraceContext,
    packet: Packet,
}

/// Live telemetry a worker publishes after every packet.
#[derive(Default)]
struct ShardTelemetry {
    counters: pnm_core::SinkCounters,
    processed: u64,
    panics: u64,
    store_errors: u64,
    stages: StageMetrics,
    queue_wait_us: LatencyHistogram,
    service_us: LatencyHistogram,
    total_us: LatencyHistogram,
}

/// A packet that crashed a shard worker. The supervisor caught the panic,
/// quarantined the packet's encoded bytes here, and restarted the shard
/// engine from its last good checkpoint — the poison packet contributes
/// no evidence and cannot crash the service again.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoisonRecord {
    /// Admission sequence number of the poison packet.
    pub seq: u64,
    /// Index of the shard the packet crashed.
    pub shard: usize,
    /// The packet's encoded bytes, kept for offline analysis.
    pub bytes: Vec<u8>,
    /// The panic message the crash produced.
    pub panic: String,
}

/// What a worker hands back when it exits.
struct ShardFinal {
    engine: SinkEngine,
    outcomes: Vec<(u64, SinkOutcome)>,
    poisoned: Vec<PoisonRecord>,
}

/// Everything a shard worker needs besides its job queue.
struct ShardContext {
    shard: usize,
    keys: Arc<KeyStore>,
    sink: SinkConfig,
    slot: Arc<Mutex<ShardTelemetry>>,
    gate: Arc<(Mutex<bool>, Condvar)>,
    keep_outcomes: bool,
    poison: Option<PoisonHook>,
    checkpoint_interval: u64,
    /// Armed black-box: dumped on poison quarantine and store-append
    /// failure, tagged with the offending trace id.
    flight: Option<Arc<FlightRecorder>>,
    done: Sender<(usize, ShardFinal)>,
    /// Durable evidence backend; when set, checkpoints append deltas here
    /// instead of staying purely in-memory.
    store: Option<Arc<dyn EvidenceStore>>,
    /// Evidence replayed from the store for this shard (crash recovery);
    /// installed into the engine before the store is attached.
    recover: Option<Evidence>,
}

/// What [`ServicePool::recover`] found in the store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Valid records replayed from the store.
    pub records: usize,
    /// Frames found damaged (torn tail, bad CRC) and skipped/truncated.
    pub rejected_frames: usize,
    /// Distinct writer shards present in the store.
    pub source_shards: usize,
    /// Packets of evidence restored (sum of replayed packet counters).
    pub packets_restored: usize,
}

/// Everything the service knows once fully drained.
#[derive(Debug)]
pub struct DrainReport {
    /// The cross-shard merged engine: every shard's counters, route
    /// evidence, and quarantine state absorbed into one
    /// [`SinkEngine`], with the configured isolation policy re-applied to
    /// the merged localization (see [`SinkEngine::absorb`]). Query it like
    /// any sequential engine: `localize()`, `source_regions()`,
    /// `quarantine()`, `counters()`.
    pub engine: SinkEngine,
    /// Final telemetry (identical in shape to a live snapshot).
    pub snapshot: ServiceSnapshot,
    /// Per-packet outcomes keyed by admission sequence number, ascending.
    /// Empty unless the service was configured with
    /// [`keep_outcomes`](crate::ServiceConfig::keep_outcomes).
    pub outcomes: Vec<(u64, SinkOutcome)>,
    /// Packets that crashed a shard worker, ascending by sequence number.
    /// Each one was quarantined and its shard restarted from the last
    /// good checkpoint; none contributed evidence to `engine`.
    pub poisoned: Vec<PoisonRecord>,
    /// Shards that failed to hand in their final state within the drain
    /// watchdog budget ([`ServiceConfig::drain_timeout`]). Their threads
    /// were detached, and their evidence is missing from `engine`.
    pub wedged: Vec<usize>,
}

/// A long-running, sharded traceback service.
///
/// `shards` worker threads each own a private [`SinkEngine`]; packets are
/// hash-partitioned by report bytes, so every packet carrying the same
/// report lands on the same shard and the report-keyed anonymous-ID table
/// cache stays shard-local — no locks on the hot path, and `k` shards hold
/// `k×` the aggregate table cache. Ingestion goes through bounded queues
/// with an explicit full-queue policy; [`ServicePool::close`] rejects new
/// packets while workers finish the backlog, and [`ServicePool::drain`]
/// joins the shards and merges their evidence into one engine.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use pnm_core::{MarkingScheme, NodeContext, ProbabilisticNestedMarking, SinkConfig, VerifyMode};
/// use pnm_crypto::KeyStore;
/// use pnm_service::{ServiceConfig, ServicePool};
/// use pnm_wire::{Location, NodeId, Packet, Report};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let keys = Arc::new(KeyStore::derive_from_master(b"deployment", 10));
/// let scheme = ProbabilisticNestedMarking::paper_default(10);
/// let config = ServiceConfig::new(SinkConfig::new(VerifyMode::Nested)).shards(2);
/// let pool = ServicePool::new(Arc::clone(&keys), config);
/// let mut rng = StdRng::seed_from_u64(7);
///
/// for seq in 0..100u64 {
///     let report = Report::new(format!("bogus-{seq}").into_bytes(), Location::new(0.0, 0.0), seq);
///     let mut pkt = Packet::new(report);
///     for hop in 0..10u16 {
///         let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
///         scheme.mark(&ctx, &mut pkt, &mut rng);
///     }
///     pool.ingest(pkt).unwrap();
/// }
/// let report = pool.drain();
/// assert_eq!(report.engine.unequivocal_source(), Some(NodeId(0)));
/// assert_eq!(report.snapshot.processed, 100);
/// ```
pub struct ServicePool {
    config: ServiceConfig,
    /// `None` once closed; senders dropped so workers run the queue dry.
    senders: Mutex<Option<Vec<SyncSender<Job>>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Workers report their final state here before exiting; `drain`
    /// collects with a timeout so a wedged shard cannot hang it.
    done_rx: Mutex<Option<Receiver<(usize, ShardFinal)>>>,
    telemetry: Vec<Arc<Mutex<ShardTelemetry>>>,
    /// Queue-admission counters, registry-backed so a scrape sees the
    /// same atomics the ingest path increments.
    accepted: Vec<Counter>,
    shed: Vec<Counter>,
    registry: Registry,
    next_seq: AtomicU64,
    /// Start gate: workers wait here while `true` (see
    /// [`ServiceConfig::start_paused`]).
    gate: Arc<(Mutex<bool>, Condvar)>,
    keys: Arc<KeyStore>,
}

impl ServicePool {
    /// Spawns the worker shards and returns the running service.
    ///
    /// Every shard engine is built from the same sink config with the
    /// isolation stage stripped: shard-local quarantine would depend on
    /// which packets a shard happened to see, so the service applies the
    /// policy once, to the cross-shard merged route graph, at drain time.
    pub fn new(keys: impl Into<Arc<KeyStore>>, config: ServiceConfig) -> Self {
        Self::build(keys.into(), config, BTreeMap::new())
    }

    /// Rebuilds a pool from the evidence persisted in the config's
    /// attached store — the restart path after a process crash. The store
    /// is replayed once; each persisted shard's evidence is installed
    /// into the worker shard it maps to (`log shard % shard count`, so a
    /// pool may recover a log written with a different shard count), and
    /// the same store is re-attached for continued appends. Because every
    /// worker installs its evidence *before* attaching, recovery never
    /// re-appends what was replayed.
    ///
    /// The same replay also serves the poison-quarantine restart: a shard
    /// recovered this way restarts from replayed evidence exactly as a
    /// panicked shard restarts from its checkpoint.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotAttached`] if the config has no store;
    /// otherwise whatever the store's replay returns (I/O, bad header).
    /// Damaged individual records are *counted* in
    /// [`RecoveryStats::rejected_frames`], not errors.
    pub fn recover(
        keys: impl Into<Arc<KeyStore>>,
        config: ServiceConfig,
    ) -> Result<(Self, RecoveryStats), StoreError> {
        let Some(store) = config.store_handle() else {
            return Err(StoreError::NotAttached);
        };
        let replay = store.replay()?;
        let shards = config.shard_count();
        let mut recover: BTreeMap<usize, Evidence> = BTreeMap::new();
        let mut packets = 0usize;
        for (&log_shard, evidence) in &replay.shards {
            packets += evidence.counters.packets;
            recover
                .entry(log_shard as usize % shards)
                .or_default()
                .merge(evidence);
        }
        let stats = RecoveryStats {
            records: replay.records,
            rejected_frames: replay.rejected_frames,
            source_shards: replay.shards.len(),
            packets_restored: packets,
        };
        Ok((Self::build(keys.into(), config, recover), stats))
    }

    /// Convenience wrapper: opens (or creates) the append-only
    /// [`LogStore`] at `path`, attaches it to `config`, and recovers.
    /// Opening already truncates any torn tail left by the crash, so the
    /// replayed evidence is exactly the log's last consistent prefix.
    ///
    /// # Errors
    ///
    /// Whatever [`LogStore::open`] or [`ServicePool::recover`] return.
    pub fn recover_from_log(
        keys: impl Into<Arc<KeyStore>>,
        config: ServiceConfig,
        path: impl AsRef<Path>,
    ) -> Result<(Self, RecoveryStats), StoreError> {
        let store = Arc::new(LogStore::open(path)?);
        Self::recover(keys, config.store(store))
    }

    fn build(
        keys: Arc<KeyStore>,
        config: ServiceConfig,
        mut recover: BTreeMap<usize, Evidence>,
    ) -> Self {
        // Prewarm the precomputed HMAC schedule before any shard spawns:
        // the build runs exactly once here, and every shard's verifier picks
        // up the same cached `Arc<KeySchedule>` through the shared keystore
        // instead of racing to build its own on first packet.
        let _ = keys.schedule();
        let shards = config.shard_count();
        let shard_sink = config
            .sink()
            .clone()
            .without_isolation()
            .tracer(config.tracer_handle().clone())
            .stage_timing(config.stage_timing_enabled());
        let gate = Arc::new((Mutex::new(config.starts_paused()), Condvar::new()));
        let registry = Registry::new();

        let (done_tx, done_rx) = std::sync::mpsc::channel::<(usize, ShardFinal)>();
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        let mut telemetry = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(config.queue_capacity_per_shard());
            let slot = Arc::new(Mutex::new(ShardTelemetry::default()));
            let ctx = ShardContext {
                shard,
                keys: Arc::clone(&keys),
                sink: shard_sink.clone(),
                slot: Arc::clone(&slot),
                gate: Arc::clone(&gate),
                keep_outcomes: config.keeps_outcomes(),
                poison: config.poison_hook_fn().cloned(),
                checkpoint_interval: config.checkpoint_interval_packets(),
                flight: config.flight_recorder_handle().cloned(),
                done: done_tx.clone(),
                store: config.store_handle().cloned(),
                recover: recover.remove(&shard),
            };
            handles.push(std::thread::spawn(move || shard_worker(rx, ctx)));
            senders.push(tx);
            telemetry.push(slot);
        }
        // Workers hold the only senders: once every shard has exited (or
        // wedged), the done channel disconnects instead of blocking drain.
        drop(done_tx);

        ServicePool {
            senders: Mutex::new(Some(senders)),
            handles: Mutex::new(handles),
            done_rx: Mutex::new(Some(done_rx)),
            telemetry,
            accepted: (0..shards)
                .map(|i| {
                    registry.counter("pnm_service_accepted_total", &[("shard", &i.to_string())])
                })
                .collect(),
            shed: (0..shards)
                .map(|i| registry.counter("pnm_service_shed_total", &[("shard", &i.to_string())]))
                .collect(),
            registry,
            next_seq: AtomicU64::new(0),
            gate,
            keys,
            config,
        }
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.config.shard_count()
    }

    /// The shard a packet partitions to (FNV-1a over the report bytes —
    /// the same key the anonymous-ID table cache uses, which is the point:
    /// all deliveries of one report share one shard's cache entry).
    pub fn shard_of(&self, packet: &Packet) -> usize {
        (fnv1a64(&packet.report.to_bytes()) % self.shards() as u64) as usize
    }

    /// Enqueues a packet, stamped with the report's own timestamp (as
    /// [`SinkEngine::ingest`] does). Returns the packet's admission
    /// sequence number.
    pub fn ingest(&self, packet: Packet) -> Result<u64, IngestError> {
        let now_us = packet.report.timestamp;
        self.ingest_at(packet, now_us)
    }

    /// Enqueues a packet with an explicit arrival clock for the
    /// classifier's rate window.
    ///
    /// Under [`BackpressurePolicy::Block`] a full shard queue blocks the
    /// caller until the shard catches up; under
    /// [`BackpressurePolicy::Shed`] the packet is dropped, the drop is
    /// counted, and `Err(IngestError::Shed)` is returned. Sequence numbers
    /// are admission tickets: a shed ticket never reappears, so retained
    /// outcomes may have gaps under shedding.
    pub fn ingest_at(&self, packet: Packet, now_us: u64) -> Result<u64, IngestError> {
        self.ingest_ctx(packet, now_us, TraceContext::NONE)
    }

    /// [`ServicePool::ingest_at`] inside a caller-supplied trace
    /// context. The context rides the shard queue with the packet and
    /// the worker's engine opens its spans inside it — parentage
    /// survives the thread hand-off. [`TraceContext::NONE`] makes this
    /// identical to `ingest_at`.
    pub fn ingest_ctx(
        &self,
        packet: Packet,
        now_us: u64,
        ctx: TraceContext,
    ) -> Result<u64, IngestError> {
        let shard = self.shard_of(&packet);
        // Clone the sender out of the lock so a blocking send never holds
        // the senders mutex against `close`.
        let tx = {
            let guard = self.senders.lock().expect("senders lock");
            match guard.as_ref() {
                Some(senders) => senders[shard].clone(),
                None => return Err(IngestError::Closed),
            }
        };
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let job = Job {
            seq,
            now_us,
            enqueued: Instant::now(),
            ctx,
            packet,
        };
        match self.config.backpressure_policy() {
            BackpressurePolicy::Block => {
                tx.send(job).map_err(|_| IngestError::Closed)?;
            }
            BackpressurePolicy::Shed => match tx.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    self.shed[shard].inc();
                    return Err(IngestError::Shed);
                }
                Err(TrySendError::Disconnected(_)) => return Err(IngestError::Closed),
            },
        }
        self.accepted[shard].inc();
        Ok(seq)
    }

    /// Like [`ingest`](Self::ingest), but when the target shard sheds the
    /// packet, sleeps and retries with exponential backoff — up to
    /// `max_attempts` sends in total — before giving up with
    /// [`IngestError::Shed`]. Every failed attempt is counted in the
    /// shard's shed counter, so `max_attempts` tries that all shed leave
    /// exactly `max_attempts` in the accounting. [`IngestError::Closed`]
    /// is returned immediately — backoff cannot reopen a closed service.
    pub fn ingest_with_retry(
        &self,
        packet: Packet,
        max_attempts: u32,
        initial_backoff: Duration,
    ) -> Result<u64, IngestError> {
        assert!(max_attempts >= 1, "retry needs at least one attempt");
        let now_us = packet.report.timestamp;
        let mut backoff = initial_backoff;
        for attempt in 1..=max_attempts {
            match self.ingest_at(packet.clone(), now_us) {
                Err(IngestError::Shed) if attempt < max_attempts => {
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                }
                result => return result,
            }
        }
        Err(IngestError::Shed)
    }

    /// Releases workers held at the start gate (no-op when not paused).
    pub fn resume(&self) {
        let (lock, cvar) = &*self.gate;
        *lock.lock().expect("gate lock") = false;
        cvar.notify_all();
    }

    /// Closes ingestion: subsequent `ingest` calls return
    /// [`IngestError::Closed`]; already-enqueued packets are still
    /// processed. Idempotent.
    pub fn close(&self) {
        self.senders.lock().expect("senders lock").take();
    }

    /// Whether [`ServicePool::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.senders.lock().expect("senders lock").is_none()
    }

    /// Closes ingestion and waits (until `deadline`) for every shard
    /// worker to run its queue dry and exit — which flushes each shard's
    /// **final durable checkpoint** to the attached store. Returns `true`
    /// if every worker finished in time, `false` if the deadline passed
    /// with a shard still busy (its thread keeps running; nothing is
    /// detached or lost).
    ///
    /// Unlike [`drain`](Self::drain) this borrows the pool: the final
    /// shard states stay queued on the done channel, so a later `drain`
    /// still produces the merged verdict — this is the "flush in-flight
    /// work before the process exits" half of a graceful shutdown, not a
    /// teardown.
    pub fn close_and_join(&self, deadline: Instant) -> bool {
        self.resume();
        self.close();
        loop {
            let all_done = self
                .handles
                .lock()
                .expect("handles lock")
                .iter()
                .all(|h| h.is_finished());
            if all_done {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Live cross-shard telemetry. Callable at any time; counters lag the
    /// queues by whatever is in flight.
    pub fn snapshot(&self) -> ServiceSnapshot {
        let mut shards = Vec::with_capacity(self.shards());
        let mut totals = pnm_core::SinkCounters::default();
        for (i, slot) in self.telemetry.iter().enumerate() {
            let t = slot.lock().expect("telemetry lock");
            totals += t.counters;
            shards.push(ShardSnapshot {
                shard: i,
                accepted: self.accepted[i].get(),
                shed: self.shed[i].get(),
                processed: t.processed,
                panics: t.panics,
                store_errors: t.store_errors,
                counters: t.counters,
                stages: t.stages.clone(),
                queue_wait_us: t.queue_wait_us.clone(),
                service_us: t.service_us.clone(),
                total_us: t.total_us.clone(),
            });
        }
        let accepted = shards.iter().map(|s| s.accepted).sum();
        let shed = shards.iter().map(|s| s.shed).sum();
        let processed = shards.iter().map(|s| s.processed).sum();
        let panics = shards.iter().map(|s| s.panics).sum();
        let store_errors = shards.iter().map(|s| s.store_errors).sum();
        ServiceSnapshot {
            shards,
            totals,
            accepted,
            shed,
            processed,
            panics,
            store_errors,
        }
    }

    /// The metrics registry backing the pool's queue-admission counters.
    /// Scrape-only consumers should prefer [`metrics_text`](Self::metrics_text),
    /// which also mirrors the snapshot-derived metrics before rendering.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Renders the pool's current state in Prometheus text exposition
    /// format. Queue-admission counters (`pnm_service_accepted_total`,
    /// `pnm_service_shed_total`) are live registry atomics; processed and
    /// panic counts, the merged sink counters, the queue/service/total
    /// latency histograms, and the five per-stage pipeline histograms are
    /// mirrored from a fresh [`snapshot`](Self::snapshot) at scrape time.
    pub fn metrics_text(&self) -> String {
        self.metrics_text_labelled(&[])
    }

    /// [`metrics_text`](Self::metrics_text) with extra label pairs merged
    /// into every series. A multi-tenant front-end scrapes one pool per
    /// tenant with `[("tenant", name)]` so all pools share one exposition
    /// namespace without colliding series.
    pub fn metrics_text_labelled(&self, extra: &[(&str, &str)]) -> String {
        let snap = self.snapshot();
        for s in &snap.shards {
            let shard = s.shard.to_string();
            let labels: [(&str, &str); 1] = [("shard", shard.as_str())];
            self.registry
                .counter("pnm_service_processed_total", &labels)
                .store(s.processed);
            self.registry
                .counter("pnm_service_panics_total", &labels)
                .store(s.panics);
            self.registry
                .histogram("pnm_service_queue_wait_us", &labels)
                .set(s.queue_wait_us.clone());
            self.registry
                .histogram("pnm_service_service_us", &labels)
                .set(s.service_us.clone());
            self.registry
                .histogram("pnm_service_total_us", &labels)
                .set(s.total_us.clone());
        }
        let totals = [
            ("packets", snap.totals.packets),
            ("hash_count", snap.totals.hash_count),
            ("marks_verified", snap.totals.marks_verified),
            ("marks_rejected", snap.totals.marks_rejected),
            ("table_builds", snap.totals.table_builds),
            ("table_cache_hits", snap.totals.table_cache_hits),
            (
                "resolver_fallback_scans",
                snap.totals.resolver_fallback_scans,
            ),
            ("suspicious", snap.totals.suspicious),
            ("benign", snap.totals.benign),
            ("malformed", snap.totals.malformed),
            ("duplicates_suppressed", snap.totals.duplicates_suppressed),
        ];
        for (name, value) in totals {
            self.registry
                .counter(&format!("pnm_sink_{name}_total"), &[])
                .store(value as u64);
        }
        for (stage, hist) in snap.stage_metrics().iter() {
            self.registry
                .histogram("pnm_sink_stage_ns", &[("stage", stage)])
                .set(hist.clone());
        }
        self.registry.prometheus_text_with(extra)
    }

    /// Gracefully drains and shuts down: closes ingestion, lets every
    /// shard finish its backlog, joins the workers, and merges their
    /// evidence (counters, route graph, quarantine) into one engine via
    /// [`SinkEngine::absorb`]. If an isolation policy was configured, the
    /// merged engine re-derives the quarantine from the merged
    /// localization and source regions — a pure function of the ingested
    /// packet set, independent of shard count and arrival interleaving.
    ///
    /// A drain watchdog bounds the wait: shards have
    /// [`ServiceConfig::drain_timeout`] in total to hand in their final
    /// state; any shard that misses the deadline is recorded in
    /// [`DrainReport::wedged`] and its thread detached, so `drain` returns
    /// even if a shard is stuck mid-packet.
    pub fn drain(self) -> DrainReport {
        self.resume();
        self.close();
        let handles = std::mem::take(&mut *self.handles.lock().expect("handles lock"));
        let done_rx = self
            .done_rx
            .lock()
            .expect("done lock")
            .take()
            .expect("drain consumes the pool, so the receiver is present");
        let shard_count = handles.len();
        let deadline = Instant::now() + self.config.drain_timeout_budget();
        let mut finals: Vec<Option<ShardFinal>> = Vec::new();
        finals.resize_with(shard_count, || None);
        let mut received = 0usize;
        while received < shard_count {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match done_rx.recv_timeout(remaining) {
                Ok((shard, fin)) => {
                    finals[shard] = Some(fin);
                    received += 1;
                }
                // Timeout: the budget is spent. Disconnected: every
                // remaining worker died without reporting. Either way the
                // missing shards are wedged.
                Err(_) => break,
            }
        }
        let mut wedged = Vec::new();
        for (shard, handle) in handles.into_iter().enumerate() {
            if finals[shard].is_some() {
                // Reported shards return right after sending; join is
                // bounded. A panicked-after-report worker is harmless.
                let _ = handle.join();
            } else {
                wedged.push(shard);
                drop(handle);
            }
        }
        if !wedged.is_empty() {
            // A detached shard is an anomaly: its evidence is gone from
            // the merge. Black-box the run-up for the post-mortem.
            if let Some(flight) = self.config.flight_recorder_handle() {
                let _ = flight.dump(
                    "watchdog_detach",
                    &[
                        ("wedged_shards", FieldValue::U64(wedged.len() as u64)),
                        ("first_shard", FieldValue::U64(wedged[0] as u64)),
                    ],
                );
            }
        }
        let mut merged = SinkEngine::new(Arc::clone(&self.keys), self.config.sink().clone());
        let mut outcomes: Vec<(u64, SinkOutcome)> = Vec::new();
        let mut poisoned: Vec<PoisonRecord> = Vec::new();
        for fin in finals.into_iter().flatten() {
            merged.absorb(&fin.engine);
            outcomes.extend(fin.outcomes);
            poisoned.extend(fin.poisoned);
        }
        merged.refresh_quarantine();
        merged.quarantine_source_regions();
        outcomes.sort_by_key(|(seq, _)| *seq);
        poisoned.sort_by_key(|p| p.seq);
        DrainReport {
            snapshot: self.snapshot(),
            engine: merged,
            outcomes,
            poisoned,
            wedged,
        }
    }
}

impl Drop for ServicePool {
    fn drop(&mut self) {
        // Un-drained pools must not strand workers: release the gate and
        // drop the senders so every shard runs dry and exits.
        self.resume();
        self.close();
    }
}

/// One shard's supervised processing loop.
///
/// Each packet runs under [`catch_unwind`]: a panic — whether from the
/// engine or from an injected [`PoisonHook`](crate::config::PoisonHook) —
/// is caught, the packet is recorded as poison, and the shard restarts
/// from a fresh engine plus [`SinkEngine::absorb`] of the last good
/// checkpoint, taken every `checkpoint_interval` successful packets.
/// Before exiting, the worker hands its final state to the drain watchdog
/// through the `done` channel.
fn shard_worker(rx: Receiver<Job>, ctx: ShardContext) {
    {
        let (lock, cvar) = &*ctx.gate;
        let mut paused = lock.lock().expect("gate lock");
        while *paused {
            paused = cvar.wait(paused).expect("gate wait");
        }
    }
    let mut engine = SinkEngine::new(Arc::clone(&ctx.keys), ctx.sink.clone());
    if let Some(evidence) = &ctx.recover {
        engine.install_evidence(evidence);
    }
    if let Some(store) = &ctx.store {
        // Install before attach: attachment pins the persistence
        // high-water mark at the current evidence, so replayed evidence
        // is never appended a second time.
        engine.attach_store(Arc::clone(store), ctx.shard as u32);
    }
    let mut checkpoint = engine.clone();
    let mut since_checkpoint = 0u64;
    let mut outcomes = Vec::new();
    let mut poisoned = Vec::new();
    while let Ok(job) = rx.recv() {
        let dequeued = Instant::now();
        let queue_wait = dequeued.duration_since(job.enqueued).as_micros() as u64;
        let result = catch_unwind(AssertUnwindSafe(|| {
            if let Some(hook) = &ctx.poison {
                if hook(&job.packet) {
                    panic!("injected poison packet (seq {})", job.seq);
                }
            }
            engine.ingest_ctx(&job.packet, job.now_us, job.ctx)
        }));
        let service = dequeued.elapsed().as_micros() as u64;
        match result {
            Ok(outcome) => {
                since_checkpoint += 1;
                let mut store_failed = false;
                if since_checkpoint >= ctx.checkpoint_interval {
                    checkpoint = engine.clone();
                    since_checkpoint = 0;
                    // Durable checkpoint: append the evidence delta. A
                    // failed append is counted, never fatal — the
                    // high-water mark stays put, so the next checkpoint
                    // retries the cumulative delta.
                    if engine.store_attached() {
                        store_failed = engine.checkpoint_to_store().is_err();
                    }
                }
                if store_failed {
                    // Growing store_errors is an anomaly: black-box the
                    // events that led to the failed append.
                    if let Some(flight) = &ctx.flight {
                        let _ = flight.dump(
                            "store_error",
                            &[
                                ("trace", FieldValue::U64(job.ctx.trace)),
                                ("seq", FieldValue::U64(job.seq)),
                                ("shard", FieldValue::U64(ctx.shard as u64)),
                            ],
                        );
                    }
                }
                {
                    let mut t = ctx.slot.lock().expect("telemetry lock");
                    t.counters = engine.counters();
                    t.processed += 1;
                    t.store_errors += u64::from(store_failed);
                    t.stages = engine.stage_metrics().clone();
                    t.queue_wait_us.record(queue_wait);
                    t.service_us.record(service);
                    t.total_us.record(queue_wait.saturating_add(service));
                }
                if ctx.keep_outcomes {
                    outcomes.push((job.seq, outcome));
                }
            }
            Err(payload) => {
                // The panic may have left the engine mid-mutation (memory
                // safe but logically partial), so restart from the last
                // state known to be a complete merge.
                let mut fresh = SinkEngine::new(Arc::clone(&ctx.keys), ctx.sink.clone());
                fresh.absorb(&checkpoint);
                if let Some(store) = &ctx.store {
                    // Re-attach with the checkpoint's evidence as the
                    // high-water mark: checkpoint clones and store
                    // appends share the same cadence point, so this is
                    // exactly what the log already holds for this shard.
                    fresh.attach_store(Arc::clone(store), ctx.shard as u32);
                }
                engine = fresh;
                since_checkpoint = 0;
                let record = PoisonRecord {
                    seq: job.seq,
                    shard: ctx.shard,
                    bytes: job.packet.to_bytes(),
                    panic: panic_message(payload.as_ref()),
                };
                // Black-box the quarantine: the dump names the poisoned
                // trace so an operator can walk the packet's whole
                // journey up to the crash.
                if let Some(flight) = &ctx.flight {
                    let _ = flight.dump(
                        "poison_quarantine",
                        &[
                            ("trace", FieldValue::U64(job.ctx.trace)),
                            ("seq", FieldValue::U64(job.seq)),
                            ("shard", FieldValue::U64(ctx.shard as u64)),
                            ("panic", FieldValue::Str(record.panic.clone())),
                        ],
                    );
                }
                poisoned.push(record);
                let mut t = ctx.slot.lock().expect("telemetry lock");
                t.panics += 1;
                t.counters = engine.counters();
                t.stages = engine.stage_metrics().clone();
            }
        }
    }
    // Final durable checkpoint: whatever accrued since the last cadence
    // point is flushed before the shard hands in its state, so a drained
    // pool's log always holds its complete evidence.
    if engine.store_attached() && engine.checkpoint_to_store().is_err() {
        ctx.slot.lock().expect("telemetry lock").store_errors += 1;
    }
    // The receiver is gone when drain's watchdog already gave up on the
    // whole pool; nothing useful remains to do with the state then.
    let _ = ctx.done.send((
        ctx.shard,
        ShardFinal {
            engine,
            outcomes,
            poisoned,
        },
    ));
}

/// Best-effort extraction of a human-readable panic message.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// FNV-1a 64-bit — a stable, dependency-free partitioning hash.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnm_core::{
        MarkingScheme, NodeContext, ProbabilisticNestedMarking, SinkConfig, VerifyMode,
    };
    use pnm_wire::{Location, NodeId, Report};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys(n: u16) -> Arc<KeyStore> {
        Arc::new(KeyStore::derive_from_master(b"service-test", n))
    }

    fn marked_report(ks: &KeyStore, n: u16, report: Report, rng: &mut StdRng) -> Packet {
        let scheme = ProbabilisticNestedMarking::paper_default(n as usize);
        let mut pkt = Packet::new(report);
        for hop in 0..n {
            let ctx = NodeContext::new(NodeId(hop), *ks.key(hop).unwrap());
            scheme.mark(&ctx, &mut pkt, rng);
        }
        pkt
    }

    fn marked_packet(ks: &KeyStore, n: u16, seq: u64, rng: &mut StdRng) -> Packet {
        let report = Report::new(
            format!("svc-{seq}").into_bytes(),
            Location::new(seq as f32, 0.0),
            seq,
        );
        marked_report(ks, n, report, rng)
    }

    #[test]
    fn pool_converges_like_a_single_engine() {
        let n = 10u16;
        let ks = keys(n);
        let config = ServiceConfig::new(SinkConfig::new(VerifyMode::Nested)).shards(3);
        let pool = ServicePool::new(Arc::clone(&ks), config);
        let mut rng = StdRng::seed_from_u64(17);
        for seq in 0..120 {
            pool.ingest(marked_packet(&ks, n, seq, &mut rng)).unwrap();
        }
        let report = pool.drain();
        assert_eq!(report.engine.unequivocal_source(), Some(NodeId(0)));
        assert_eq!(report.snapshot.accepted, 120);
        assert_eq!(report.snapshot.processed, 120);
        assert_eq!(report.snapshot.shed, 0);
        assert_eq!(report.snapshot.totals.packets, 120);
        assert_eq!(report.engine.counters(), report.snapshot.totals);
        assert_eq!(report.snapshot.backlog(), 0);
        assert_eq!(report.snapshot.total_latency().count(), 120);
    }

    #[test]
    fn partitioning_is_stable_and_report_keyed() {
        let n = 6u16;
        let ks = keys(n);
        let config = ServiceConfig::new(SinkConfig::new(VerifyMode::Nested)).shards(4);
        let pool = ServicePool::new(Arc::clone(&ks), config);
        let mut rng = StdRng::seed_from_u64(3);
        let a1 = marked_packet(&ks, n, 1, &mut rng);
        let a2 = marked_packet(&ks, n, 1, &mut rng); // same report, new marks
        let b = marked_packet(&ks, n, 2, &mut rng);
        assert_eq!(pool.shard_of(&a1), pool.shard_of(&a2));
        // Not a guarantee in general, but these two reports differ.
        let _ = pool.shard_of(&b);
        drop(pool);
    }

    #[test]
    fn snapshot_json_renders() {
        let ks = keys(4);
        let config = ServiceConfig::new(SinkConfig::new(VerifyMode::Nested)).shards(2);
        let pool = ServicePool::new(Arc::clone(&ks), config);
        let mut rng = StdRng::seed_from_u64(5);
        for seq in 0..10 {
            pool.ingest(marked_packet(&ks, 4, seq, &mut rng)).unwrap();
        }
        let report = pool.drain();
        let json = report.snapshot.to_json();
        assert!(json.contains("\"processed\": 10"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn stage_metrics_flow_from_engines_to_snapshot_and_drain() {
        let n = 10u16;
        let ks = keys(n);
        let (tracer, ring) = pnm_obs::Tracer::ring(1 << 14);
        let config = ServiceConfig::new(SinkConfig::new(VerifyMode::Nested))
            .shards(3)
            .tracer(tracer);
        let pool = ServicePool::new(Arc::clone(&ks), config);
        let mut rng = StdRng::seed_from_u64(29);
        for seq in 0..90 {
            pool.ingest(marked_packet(&ks, n, seq, &mut rng)).unwrap();
        }
        let report = pool.drain();
        // Every distinct suspicious packet ran all five stages; the merged
        // engine and the snapshot agree on the breakdown.
        let merged = report.snapshot.stage_metrics();
        for (stage, hist) in merged.iter() {
            assert_eq!(hist.count(), 90, "stage {stage} undercounted");
        }
        assert_eq!(&merged, report.engine.stage_metrics());
        // The shard engines traced into the shared ring: spans balance.
        let events = ring.events();
        assert!(!events.is_empty());
        let opens = events
            .iter()
            .filter(|e| e.kind == pnm_obs::EventKind::SpanOpen)
            .count();
        let closes = events
            .iter()
            .filter(|e| e.kind == pnm_obs::EventKind::SpanClose)
            .count();
        assert_eq!(opens, closes);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn stage_timing_off_leaves_snapshot_stages_empty() {
        let ks = keys(6);
        let config = ServiceConfig::new(SinkConfig::new(VerifyMode::Nested))
            .shards(2)
            .stage_timing(false);
        let pool = ServicePool::new(Arc::clone(&ks), config);
        let mut rng = StdRng::seed_from_u64(41);
        for seq in 0..20 {
            pool.ingest(marked_packet(&ks, 6, seq, &mut rng)).unwrap();
        }
        let report = pool.drain();
        assert_eq!(report.snapshot.processed, 20);
        assert!(report.snapshot.stage_metrics().is_empty());
    }

    #[test]
    fn metrics_text_exposes_counters_and_stage_histograms() {
        let n = 8u16;
        let ks = keys(n);
        let config = ServiceConfig::new(SinkConfig::new(VerifyMode::Nested)).shards(2);
        let pool = ServicePool::new(Arc::clone(&ks), config);
        let mut rng = StdRng::seed_from_u64(53);
        for seq in 0..30 {
            pool.ingest(marked_packet(&ks, n, seq, &mut rng)).unwrap();
        }
        pool.close();
        let deadline = Instant::now() + Duration::from_secs(30);
        while pool.snapshot().backlog() > 0 {
            assert!(Instant::now() < deadline, "backlog never drained");
            std::thread::sleep(Duration::from_millis(2));
        }
        let text = pool.metrics_text();
        assert!(text.contains("# TYPE pnm_service_accepted_total counter"));
        assert!(text.contains("pnm_service_accepted_total{shard=\"0\"}"));
        assert!(text.contains("pnm_service_accepted_total{shard=\"1\"}"));
        assert!(text.contains("pnm_sink_packets_total 30"));
        assert!(text.contains("pnm_service_total_us_bucket"));
        for stage in pnm_core::STAGE_NAMES {
            assert!(
                text.contains(&format!("pnm_sink_stage_ns_count{{stage=\"{stage}\"}} 30")),
                "missing stage series for {stage}:\n{text}"
            );
        }
        // Scrapes are idempotent: mirroring twice must not double-count.
        assert_eq!(text, pool.metrics_text());
        // The labelled variant namespaces every series for multi-tenant
        // exposition without forking the registry.
        let labelled = pool.metrics_text_labelled(&[("tenant", "alpha")]);
        assert!(labelled.contains("pnm_service_accepted_total{shard=\"0\",tenant=\"alpha\"}"));
        assert!(labelled.contains("pnm_sink_packets_total{tenant=\"alpha\"} 30"));
        drop(pool);
    }

    #[test]
    fn poison_packet_is_quarantined_and_shard_restarts() {
        let n = 8u16;
        let ks = keys(n);
        let config = ServiceConfig::new(SinkConfig::new(VerifyMode::Nested))
            .shards(2)
            .keep_outcomes(true)
            .poison_hook(|pkt: &Packet| pkt.report.event.starts_with(b"poison"));
        let pool = ServicePool::new(Arc::clone(&ks), config);
        let mut rng = StdRng::seed_from_u64(21);
        for seq in 0..30 {
            pool.ingest(marked_packet(&ks, n, seq, &mut rng)).unwrap();
        }
        let poison = marked_report(
            &ks,
            n,
            Report::new(b"poison-1".to_vec(), Location::new(0.0, 0.0), 7),
            &mut rng,
        );
        let poison_seq = pool.ingest(poison.clone()).unwrap();
        // The shard must keep processing after its restart.
        for seq in 30..40 {
            pool.ingest(marked_packet(&ks, n, seq, &mut rng)).unwrap();
        }
        let report = pool.drain();

        assert_eq!(report.poisoned.len(), 1);
        assert_eq!(report.poisoned[0].seq, poison_seq);
        assert_eq!(report.poisoned[0].bytes, poison.to_bytes());
        assert!(report.poisoned[0].panic.contains("injected poison"));
        assert!(report.wedged.is_empty());
        assert_eq!(report.snapshot.panics, 1);
        assert_eq!(report.snapshot.processed, 40);
        assert_eq!(report.snapshot.accepted, 41);
        assert_eq!(report.snapshot.backlog(), 0);
        // The poison packet contributed no evidence and no outcome.
        assert_eq!(report.engine.counters().packets, 40);
        assert_eq!(report.outcomes.len(), 40);
        assert!(report.outcomes.iter().all(|(s, _)| *s != poison_seq));
        assert_eq!(report.engine.unequivocal_source(), Some(NodeId(0)));
    }

    #[test]
    fn drain_watchdog_detaches_a_wedged_shard() {
        let ks = keys(4);
        let config = ServiceConfig::new(SinkConfig::new(VerifyMode::Nested))
            .shards(1)
            .drain_timeout(Duration::from_millis(200))
            .poison_hook(|pkt: &Packet| {
                if pkt.report.event.starts_with(b"wedge") {
                    // Not a panic: a worker stuck forever mid-packet.
                    loop {
                        std::thread::park();
                    }
                }
                false
            });
        let pool = ServicePool::new(Arc::clone(&ks), config);
        let mut rng = StdRng::seed_from_u64(33);
        pool.ingest(marked_packet(&ks, 4, 0, &mut rng)).unwrap();
        pool.ingest(marked_report(
            &ks,
            4,
            Report::new(b"wedge".to_vec(), Location::new(0.0, 0.0), 1),
            &mut rng,
        ))
        .unwrap();
        let started = Instant::now();
        let report = pool.drain();
        assert!(started.elapsed() < Duration::from_secs(10));
        assert_eq!(report.wedged, vec![0]);
        // The wedged shard never handed in its state: its evidence is
        // missing rather than the drain hanging.
        assert_eq!(report.engine.counters().packets, 0);
        assert!(report.poisoned.is_empty());
    }

    #[test]
    fn retry_gives_up_with_exact_shed_accounting() {
        let ks = keys(4);
        let config = ServiceConfig::new(SinkConfig::new(VerifyMode::Nested))
            .shards(1)
            .queue_capacity(1)
            .backpressure(BackpressurePolicy::Shed)
            .start_paused(true);
        let pool = ServicePool::new(Arc::clone(&ks), config);
        let mut rng = StdRng::seed_from_u64(2);
        pool.ingest(marked_packet(&ks, 4, 0, &mut rng)).unwrap();
        let err = pool
            .ingest_with_retry(
                marked_packet(&ks, 4, 1, &mut rng),
                3,
                Duration::from_millis(1),
            )
            .unwrap_err();
        assert_eq!(err, IngestError::Shed);
        assert_eq!(pool.snapshot().shed, 3);
        let report = pool.drain();
        assert_eq!(report.snapshot.accepted, 1);
        assert_eq!(report.snapshot.processed, 1);
        assert_eq!(report.snapshot.shed, 3);
    }

    #[test]
    fn retry_succeeds_once_the_shard_catches_up() {
        let ks = keys(4);
        let config = ServiceConfig::new(SinkConfig::new(VerifyMode::Nested))
            .shards(1)
            .queue_capacity(1)
            .backpressure(BackpressurePolicy::Shed)
            .start_paused(true);
        let pool = Arc::new(ServicePool::new(Arc::clone(&ks), config));
        let mut rng = StdRng::seed_from_u64(6);
        pool.ingest(marked_packet(&ks, 4, 0, &mut rng)).unwrap();
        let resumer = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                pool.resume();
            })
        };
        // Failed attempts burn admission tickets, so the eventual ticket
        // is > 1; what matters is that the retry lands.
        pool.ingest_with_retry(
            marked_packet(&ks, 4, 1, &mut rng),
            10,
            Duration::from_millis(10),
        )
        .expect("queue frees up once the worker resumes");
        resumer.join().unwrap();
        let pool = Arc::try_unwrap(pool).unwrap_or_else(|_| panic!("sole owner"));
        let report = pool.drain();
        assert_eq!(report.snapshot.processed, 2);
    }

    #[test]
    fn ingest_after_close_fails_promptly_without_backoff() {
        let ks = keys(4);
        let pool = ServicePool::new(
            Arc::clone(&ks),
            ServiceConfig::new(SinkConfig::new(VerifyMode::Nested)).shards(1),
        );
        pool.close();
        let mut rng = StdRng::seed_from_u64(4);
        let started = Instant::now();
        assert_eq!(
            pool.ingest(marked_packet(&ks, 4, 0, &mut rng)).unwrap_err(),
            IngestError::Closed
        );
        // Closed is terminal: the retry helper must not burn its backoff
        // schedule (5 s initial here) before reporting it.
        assert_eq!(
            pool.ingest_with_retry(
                marked_packet(&ks, 4, 1, &mut rng),
                5,
                Duration::from_secs(5)
            )
            .unwrap_err(),
            IngestError::Closed
        );
        assert!(started.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn dropping_an_undrained_pool_does_not_hang() {
        let ks = keys(4);
        let config = ServiceConfig::new(SinkConfig::new(VerifyMode::Nested))
            .shards(2)
            .start_paused(true);
        let pool = ServicePool::new(Arc::clone(&ks), config);
        let mut rng = StdRng::seed_from_u64(9);
        pool.ingest(marked_packet(&ks, 4, 0, &mut rng)).unwrap();
        drop(pool); // must release the gate and the workers
    }
}
