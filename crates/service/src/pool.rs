//! The sharded worker pool: bounded-queue ingestion, hash partitioning,
//! backpressure, drain, and cross-shard merge.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use pnm_core::{SinkEngine, SinkOutcome};
use pnm_crypto::KeyStore;
use pnm_wire::Packet;

use crate::config::{BackpressurePolicy, ServiceConfig};
use crate::telemetry::{LatencyHistogram, ServiceSnapshot, ShardSnapshot};

/// Why `ingest` refused a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// The service is closed (draining or drained); the packet was not
    /// enqueued.
    Closed,
    /// The target shard's queue was full under
    /// [`BackpressurePolicy::Shed`]; the drop was counted in the shard's
    /// shed counter.
    Shed,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Closed => write!(f, "service is closed to new packets"),
            IngestError::Shed => write!(f, "shard queue full; packet shed"),
        }
    }
}

impl std::error::Error for IngestError {}

/// One enqueued unit of work.
struct Job {
    seq: u64,
    now_us: u64,
    enqueued: Instant,
    packet: Packet,
}

/// Live telemetry a worker publishes after every packet.
#[derive(Default)]
struct ShardTelemetry {
    counters: pnm_core::SinkCounters,
    processed: u64,
    queue_wait_us: LatencyHistogram,
    service_us: LatencyHistogram,
    total_us: LatencyHistogram,
}

/// What a worker hands back when it exits.
struct ShardFinal {
    engine: SinkEngine,
    outcomes: Vec<(u64, SinkOutcome)>,
}

/// Everything the service knows once fully drained.
#[derive(Debug)]
pub struct DrainReport {
    /// The cross-shard merged engine: every shard's counters, route
    /// evidence, and quarantine state absorbed into one
    /// [`SinkEngine`], with the configured isolation policy re-applied to
    /// the merged localization (see [`SinkEngine::absorb`]). Query it like
    /// any sequential engine: `localize()`, `source_regions()`,
    /// `quarantine()`, `counters()`.
    pub engine: SinkEngine,
    /// Final telemetry (identical in shape to a live snapshot).
    pub snapshot: ServiceSnapshot,
    /// Per-packet outcomes keyed by admission sequence number, ascending.
    /// Empty unless the service was configured with
    /// [`keep_outcomes`](crate::ServiceConfig::keep_outcomes).
    pub outcomes: Vec<(u64, SinkOutcome)>,
}

/// A long-running, sharded traceback service.
///
/// `shards` worker threads each own a private [`SinkEngine`]; packets are
/// hash-partitioned by report bytes, so every packet carrying the same
/// report lands on the same shard and the report-keyed anonymous-ID table
/// cache stays shard-local — no locks on the hot path, and `k` shards hold
/// `k×` the aggregate table cache. Ingestion goes through bounded queues
/// with an explicit full-queue policy; [`ServicePool::close`] rejects new
/// packets while workers finish the backlog, and [`ServicePool::drain`]
/// joins the shards and merges their evidence into one engine.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use pnm_core::{MarkingScheme, NodeContext, ProbabilisticNestedMarking, SinkConfig, VerifyMode};
/// use pnm_crypto::KeyStore;
/// use pnm_service::{ServiceConfig, ServicePool};
/// use pnm_wire::{Location, NodeId, Packet, Report};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let keys = Arc::new(KeyStore::derive_from_master(b"deployment", 10));
/// let scheme = ProbabilisticNestedMarking::paper_default(10);
/// let config = ServiceConfig::new(SinkConfig::new(VerifyMode::Nested)).shards(2);
/// let pool = ServicePool::new(Arc::clone(&keys), config);
/// let mut rng = StdRng::seed_from_u64(7);
///
/// for seq in 0..100u64 {
///     let report = Report::new(format!("bogus-{seq}").into_bytes(), Location::new(0.0, 0.0), seq);
///     let mut pkt = Packet::new(report);
///     for hop in 0..10u16 {
///         let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
///         scheme.mark(&ctx, &mut pkt, &mut rng);
///     }
///     pool.ingest(pkt).unwrap();
/// }
/// let report = pool.drain();
/// assert_eq!(report.engine.unequivocal_source(), Some(NodeId(0)));
/// assert_eq!(report.snapshot.processed, 100);
/// ```
pub struct ServicePool {
    config: ServiceConfig,
    /// `None` once closed; senders dropped so workers run the queue dry.
    senders: Mutex<Option<Vec<SyncSender<Job>>>>,
    handles: Mutex<Vec<JoinHandle<ShardFinal>>>,
    telemetry: Vec<Arc<Mutex<ShardTelemetry>>>,
    accepted: Vec<AtomicU64>,
    shed: Vec<AtomicU64>,
    next_seq: AtomicU64,
    /// Start gate: workers wait here while `true` (see
    /// [`ServiceConfig::start_paused`]).
    gate: Arc<(Mutex<bool>, Condvar)>,
    keys: Arc<KeyStore>,
}

impl ServicePool {
    /// Spawns the worker shards and returns the running service.
    ///
    /// Every shard engine is built from the same sink config with the
    /// isolation stage stripped: shard-local quarantine would depend on
    /// which packets a shard happened to see, so the service applies the
    /// policy once, to the cross-shard merged route graph, at drain time.
    pub fn new(keys: impl Into<Arc<KeyStore>>, config: ServiceConfig) -> Self {
        let keys = keys.into();
        let shards = config.shard_count();
        let shard_sink = config.sink().clone().without_isolation();
        let gate = Arc::new((Mutex::new(config.starts_paused()), Condvar::new()));

        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        let mut telemetry = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(config.queue_capacity_per_shard());
            let slot = Arc::new(Mutex::new(ShardTelemetry::default()));
            let engine = SinkEngine::new(Arc::clone(&keys), shard_sink.clone());
            let worker_slot = Arc::clone(&slot);
            let worker_gate = Arc::clone(&gate);
            let keep = config.keeps_outcomes();
            handles.push(std::thread::spawn(move || {
                shard_worker(rx, engine, worker_slot, worker_gate, keep)
            }));
            senders.push(tx);
            telemetry.push(slot);
        }

        ServicePool {
            senders: Mutex::new(Some(senders)),
            handles: Mutex::new(handles),
            telemetry,
            accepted: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            shed: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            next_seq: AtomicU64::new(0),
            gate,
            keys,
            config,
        }
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.config.shard_count()
    }

    /// The shard a packet partitions to (FNV-1a over the report bytes —
    /// the same key the anonymous-ID table cache uses, which is the point:
    /// all deliveries of one report share one shard's cache entry).
    pub fn shard_of(&self, packet: &Packet) -> usize {
        (fnv1a64(&packet.report.to_bytes()) % self.shards() as u64) as usize
    }

    /// Enqueues a packet, stamped with the report's own timestamp (as
    /// [`SinkEngine::ingest`] does). Returns the packet's admission
    /// sequence number.
    pub fn ingest(&self, packet: Packet) -> Result<u64, IngestError> {
        let now_us = packet.report.timestamp;
        self.ingest_at(packet, now_us)
    }

    /// Enqueues a packet with an explicit arrival clock for the
    /// classifier's rate window.
    ///
    /// Under [`BackpressurePolicy::Block`] a full shard queue blocks the
    /// caller until the shard catches up; under
    /// [`BackpressurePolicy::Shed`] the packet is dropped, the drop is
    /// counted, and `Err(IngestError::Shed)` is returned. Sequence numbers
    /// are admission tickets: a shed ticket never reappears, so retained
    /// outcomes may have gaps under shedding.
    pub fn ingest_at(&self, packet: Packet, now_us: u64) -> Result<u64, IngestError> {
        let shard = self.shard_of(&packet);
        // Clone the sender out of the lock so a blocking send never holds
        // the senders mutex against `close`.
        let tx = {
            let guard = self.senders.lock().expect("senders lock");
            match guard.as_ref() {
                Some(senders) => senders[shard].clone(),
                None => return Err(IngestError::Closed),
            }
        };
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let job = Job {
            seq,
            now_us,
            enqueued: Instant::now(),
            packet,
        };
        match self.config.backpressure_policy() {
            BackpressurePolicy::Block => {
                tx.send(job).map_err(|_| IngestError::Closed)?;
            }
            BackpressurePolicy::Shed => match tx.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    self.shed[shard].fetch_add(1, Ordering::Relaxed);
                    return Err(IngestError::Shed);
                }
                Err(TrySendError::Disconnected(_)) => return Err(IngestError::Closed),
            },
        }
        self.accepted[shard].fetch_add(1, Ordering::Relaxed);
        Ok(seq)
    }

    /// Releases workers held at the start gate (no-op when not paused).
    pub fn resume(&self) {
        let (lock, cvar) = &*self.gate;
        *lock.lock().expect("gate lock") = false;
        cvar.notify_all();
    }

    /// Closes ingestion: subsequent `ingest` calls return
    /// [`IngestError::Closed`]; already-enqueued packets are still
    /// processed. Idempotent.
    pub fn close(&self) {
        self.senders.lock().expect("senders lock").take();
    }

    /// Whether [`ServicePool::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.senders.lock().expect("senders lock").is_none()
    }

    /// Live cross-shard telemetry. Callable at any time; counters lag the
    /// queues by whatever is in flight.
    pub fn snapshot(&self) -> ServiceSnapshot {
        let mut shards = Vec::with_capacity(self.shards());
        let mut totals = pnm_core::SinkCounters::default();
        for (i, slot) in self.telemetry.iter().enumerate() {
            let t = slot.lock().expect("telemetry lock");
            totals += t.counters;
            shards.push(ShardSnapshot {
                shard: i,
                accepted: self.accepted[i].load(Ordering::Relaxed),
                shed: self.shed[i].load(Ordering::Relaxed),
                processed: t.processed,
                counters: t.counters,
                queue_wait_us: t.queue_wait_us.clone(),
                service_us: t.service_us.clone(),
                total_us: t.total_us.clone(),
            });
        }
        let accepted = shards.iter().map(|s| s.accepted).sum();
        let shed = shards.iter().map(|s| s.shed).sum();
        let processed = shards.iter().map(|s| s.processed).sum();
        ServiceSnapshot {
            shards,
            totals,
            accepted,
            shed,
            processed,
        }
    }

    /// Gracefully drains and shuts down: closes ingestion, lets every
    /// shard finish its backlog, joins the workers, and merges their
    /// evidence (counters, route graph, quarantine) into one engine via
    /// [`SinkEngine::absorb`]. If an isolation policy was configured, the
    /// merged engine re-derives the quarantine from the merged
    /// localization and source regions — a pure function of the ingested
    /// packet set, independent of shard count and arrival interleaving.
    pub fn drain(self) -> DrainReport {
        self.resume();
        self.close();
        let handles = std::mem::take(&mut *self.handles.lock().expect("handles lock"));
        let mut merged = SinkEngine::new(Arc::clone(&self.keys), self.config.sink().clone());
        let mut outcomes: Vec<(u64, SinkOutcome)> = Vec::new();
        for handle in handles {
            let fin = handle.join().expect("shard worker panicked");
            merged.absorb(&fin.engine);
            outcomes.extend(fin.outcomes);
        }
        merged.refresh_quarantine();
        merged.quarantine_source_regions();
        outcomes.sort_by_key(|(seq, _)| *seq);
        DrainReport {
            snapshot: self.snapshot(),
            engine: merged,
            outcomes,
        }
    }
}

impl Drop for ServicePool {
    fn drop(&mut self) {
        // Un-drained pools must not strand workers: release the gate and
        // drop the senders so every shard runs dry and exits.
        self.resume();
        self.close();
    }
}

/// One shard's processing loop.
fn shard_worker(
    rx: Receiver<Job>,
    mut engine: SinkEngine,
    slot: Arc<Mutex<ShardTelemetry>>,
    gate: Arc<(Mutex<bool>, Condvar)>,
    keep_outcomes: bool,
) -> ShardFinal {
    {
        let (lock, cvar) = &*gate;
        let mut paused = lock.lock().expect("gate lock");
        while *paused {
            paused = cvar.wait(paused).expect("gate wait");
        }
    }
    let mut outcomes = Vec::new();
    while let Ok(job) = rx.recv() {
        let dequeued = Instant::now();
        let queue_wait = dequeued.duration_since(job.enqueued).as_micros() as u64;
        let outcome = engine.ingest_at(&job.packet, job.now_us);
        let service = dequeued.elapsed().as_micros() as u64;
        {
            let mut t = slot.lock().expect("telemetry lock");
            t.counters = engine.counters();
            t.processed += 1;
            t.queue_wait_us.record(queue_wait);
            t.service_us.record(service);
            t.total_us.record(queue_wait + service);
        }
        if keep_outcomes {
            outcomes.push((job.seq, outcome));
        }
    }
    ShardFinal { engine, outcomes }
}

/// FNV-1a 64-bit — a stable, dependency-free partitioning hash.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnm_core::{
        MarkingScheme, NodeContext, ProbabilisticNestedMarking, SinkConfig, VerifyMode,
    };
    use pnm_wire::{Location, NodeId, Report};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys(n: u16) -> Arc<KeyStore> {
        Arc::new(KeyStore::derive_from_master(b"service-test", n))
    }

    fn marked_packet(ks: &KeyStore, n: u16, seq: u64, rng: &mut StdRng) -> Packet {
        let scheme = ProbabilisticNestedMarking::paper_default(n as usize);
        let report = Report::new(
            format!("svc-{seq}").into_bytes(),
            Location::new(seq as f32, 0.0),
            seq,
        );
        let mut pkt = Packet::new(report);
        for hop in 0..n {
            let ctx = NodeContext::new(NodeId(hop), *ks.key(hop).unwrap());
            scheme.mark(&ctx, &mut pkt, rng);
        }
        pkt
    }

    #[test]
    fn pool_converges_like_a_single_engine() {
        let n = 10u16;
        let ks = keys(n);
        let config = ServiceConfig::new(SinkConfig::new(VerifyMode::Nested)).shards(3);
        let pool = ServicePool::new(Arc::clone(&ks), config);
        let mut rng = StdRng::seed_from_u64(17);
        for seq in 0..120 {
            pool.ingest(marked_packet(&ks, n, seq, &mut rng)).unwrap();
        }
        let report = pool.drain();
        assert_eq!(report.engine.unequivocal_source(), Some(NodeId(0)));
        assert_eq!(report.snapshot.accepted, 120);
        assert_eq!(report.snapshot.processed, 120);
        assert_eq!(report.snapshot.shed, 0);
        assert_eq!(report.snapshot.totals.packets, 120);
        assert_eq!(report.engine.counters(), report.snapshot.totals);
        assert_eq!(report.snapshot.backlog(), 0);
        assert_eq!(report.snapshot.total_latency().count(), 120);
    }

    #[test]
    fn partitioning_is_stable_and_report_keyed() {
        let n = 6u16;
        let ks = keys(n);
        let config = ServiceConfig::new(SinkConfig::new(VerifyMode::Nested)).shards(4);
        let pool = ServicePool::new(Arc::clone(&ks), config);
        let mut rng = StdRng::seed_from_u64(3);
        let a1 = marked_packet(&ks, n, 1, &mut rng);
        let a2 = marked_packet(&ks, n, 1, &mut rng); // same report, new marks
        let b = marked_packet(&ks, n, 2, &mut rng);
        assert_eq!(pool.shard_of(&a1), pool.shard_of(&a2));
        // Not a guarantee in general, but these two reports differ.
        let _ = pool.shard_of(&b);
        drop(pool);
    }

    #[test]
    fn snapshot_json_renders() {
        let ks = keys(4);
        let config = ServiceConfig::new(SinkConfig::new(VerifyMode::Nested)).shards(2);
        let pool = ServicePool::new(Arc::clone(&ks), config);
        let mut rng = StdRng::seed_from_u64(5);
        for seq in 0..10 {
            pool.ingest(marked_packet(&ks, 4, seq, &mut rng)).unwrap();
        }
        let report = pool.drain();
        let json = report.snapshot.to_json();
        assert!(json.contains("\"processed\": 10"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn dropping_an_undrained_pool_does_not_hang() {
        let ks = keys(4);
        let config = ServiceConfig::new(SinkConfig::new(VerifyMode::Nested))
            .shards(2)
            .start_paused(true);
        let pool = ServicePool::new(Arc::clone(&ks), config);
        let mut rng = StdRng::seed_from_u64(9);
        pool.ingest(marked_packet(&ks, 4, 0, &mut rng)).unwrap();
        drop(pool); // must release the gate and the workers
    }
}
