//! Build-time description of a traceback service.

use std::sync::Arc;
use std::time::Duration;

use pnm_core::{EvidenceStore, SinkConfig};
use pnm_obs::{FlightRecorder, Tracer};
use pnm_wire::Packet;

/// A fault-injection predicate evaluated by each shard worker before a
/// packet reaches the engine; returning `true` makes the worker panic as
/// if the packet had crashed the pipeline. See
/// [`ServiceConfig::poison_hook`].
pub type PoisonHook = Arc<dyn Fn(&Packet) -> bool + Send + Sync>;

/// What `ingest` does when a shard's bounded queue is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block the caller until the shard drains a slot. Ingestion never
    /// loses a packet; a slow sink slows its producers (the default).
    #[default]
    Block,
    /// Shed the packet immediately and count the drop. Producers never
    /// stall; the snapshot accounts every shed packet exactly.
    Shed,
}

/// Configuration for a [`ServicePool`](crate::ServicePool).
///
/// Only the inner [`SinkConfig`] is mandatory; defaults give one shard per
/// available core (capped at 8), a 1024-slot queue per shard, and blocking
/// backpressure.
#[derive(Clone)]
pub struct ServiceConfig {
    sink: SinkConfig,
    shards: usize,
    queue_capacity: usize,
    backpressure: BackpressurePolicy,
    keep_outcomes: bool,
    start_paused: bool,
    poison_hook: Option<PoisonHook>,
    checkpoint_interval: u64,
    drain_timeout: Duration,
    tracer: Tracer,
    stage_timing: bool,
    store: Option<Arc<dyn EvidenceStore>>,
    flight: Option<Arc<FlightRecorder>>,
}

impl std::fmt::Debug for ServiceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceConfig")
            .field("sink", &self.sink)
            .field("shards", &self.shards)
            .field("queue_capacity", &self.queue_capacity)
            .field("backpressure", &self.backpressure)
            .field("keep_outcomes", &self.keep_outcomes)
            .field("start_paused", &self.start_paused)
            .field("poison_hook", &self.poison_hook.as_ref().map(|_| "<fn>"))
            .field("checkpoint_interval", &self.checkpoint_interval)
            .field("drain_timeout", &self.drain_timeout)
            .field("tracer", &self.tracer)
            .field("stage_timing", &self.stage_timing)
            .field("store", &self.store.as_ref().map(|_| "<store>"))
            .field("flight", &self.flight.as_ref().map(|_| "<recorder>"))
            .finish()
    }
}

impl ServiceConfig {
    /// A service running the given sink pipeline in every shard.
    pub fn new(sink: SinkConfig) -> Self {
        let shards = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        ServiceConfig {
            sink,
            shards,
            queue_capacity: 1024,
            backpressure: BackpressurePolicy::Block,
            keep_outcomes: false,
            start_paused: false,
            poison_hook: None,
            checkpoint_interval: 1,
            drain_timeout: Duration::from_secs(30),
            tracer: Tracer::noop(),
            stage_timing: true,
            store: None,
            flight: None,
        }
    }

    /// Sets the number of worker shards (≥ 1), each owning its own
    /// [`SinkEngine`](pnm_core::SinkEngine).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets each shard's bounded queue capacity (≥ 1).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the full-queue policy.
    pub fn backpressure(mut self, policy: BackpressurePolicy) -> Self {
        self.backpressure = policy;
        self
    }

    /// Keeps every per-packet [`SinkOutcome`](pnm_core::SinkOutcome),
    /// keyed by admission sequence number, for the drain report. Off by
    /// default — a long-running service should not grow unboundedly; turn
    /// it on for audits, experiments, and equivalence tests.
    pub fn keep_outcomes(mut self, keep: bool) -> Self {
        self.keep_outcomes = keep;
        self
    }

    /// Starts the workers paused: queues fill (and, under
    /// [`BackpressurePolicy::Shed`], shed deterministically) until
    /// [`ServicePool::resume`](crate::ServicePool::resume) releases them.
    /// Useful for pre-loading a burst and for exact backpressure tests.
    pub fn start_paused(mut self, paused: bool) -> Self {
        self.start_paused = paused;
        self
    }

    /// Installs a fault-injection predicate: each shard worker evaluates
    /// it on every dequeued packet *before* the engine sees the packet,
    /// and panics if it returns `true` — simulating a packet that crashes
    /// the pipeline. The supervisor catches the panic, records the packet
    /// as poison, and restarts the shard from its last checkpoint. Chaos
    /// and supervision tests use this; production services leave it unset.
    pub fn poison_hook(mut self, hook: impl Fn(&Packet) -> bool + Send + Sync + 'static) -> Self {
        self.poison_hook = Some(Arc::new(hook));
        self
    }

    /// Sets how many successfully processed packets a shard handles
    /// between checkpoints of its engine (≥ 1; default 1). The checkpoint
    /// is the "last good merge" a crashed shard restarts from: a larger
    /// interval trades per-packet clone cost for losing up to
    /// `interval − 1` packets of evidence on a crash.
    pub fn checkpoint_interval(mut self, interval: u64) -> Self {
        self.checkpoint_interval = interval.max(1);
        self
    }

    /// Sets the drain watchdog budget: [`drain`](crate::ServicePool::drain)
    /// waits at most this long, in total, for shards to hand in their
    /// final state. Shards that miss the deadline are recorded as wedged
    /// and detached rather than joined, so `drain` can never hang.
    pub fn drain_timeout(mut self, timeout: Duration) -> Self {
        self.drain_timeout = timeout;
        self
    }

    /// Attaches a tracer: every shard engine emits its per-stage spans and
    /// table-build events to this tracer's collector. Defaults to the
    /// inert no-op tracer, which costs nothing on the hot path.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Enables or disables per-stage latency histograms in the shard
    /// engines (on by default). When on, each [`ShardSnapshot`](crate::ShardSnapshot)
    /// (crate::ShardSnapshot) carries a populated
    /// [`StageMetrics`](pnm_core::StageMetrics) breakdown; turning it off
    /// removes the two clock reads per pipeline stage.
    pub fn stage_timing(mut self, enabled: bool) -> Self {
        self.stage_timing = enabled;
        self
    }

    /// Attaches a durable evidence store: every shard appends an evidence
    /// delta at each checkpoint (the [`checkpoint_interval`] cadence) and
    /// again as it exits at drain, so the store always holds the pool's
    /// evidence up to the last checkpoint. A pool killed mid-ingest is
    /// rebuilt with [`ServicePool::recover`](crate::ServicePool::recover).
    /// Append failures are counted per shard (see
    /// [`ShardSnapshot::store_errors`](crate::ShardSnapshot)) rather than
    /// crashing the worker. Without a store, checkpoints stay the
    /// in-memory engine clones they always were.
    ///
    /// [`checkpoint_interval`]: ServiceConfig::checkpoint_interval
    pub fn store(mut self, store: Arc<dyn EvidenceStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// The attached evidence store, if any.
    pub fn store_handle(&self) -> Option<&Arc<dyn EvidenceStore>> {
        self.store.as_ref()
    }

    /// Arms a flight recorder: shard workers dump its ring as an
    /// anomaly-tagged black-box when a poison packet is quarantined,
    /// a drain watchdog detaches a wedged shard, or a store append
    /// fails. Pair it with [`ServiceConfig::tracer`] fed by the same
    /// recorder so the black-box holds the events leading up to the
    /// anomaly. Unset by default: no recording, no dumps.
    pub fn flight_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.flight = Some(recorder);
        self
    }

    /// The armed flight recorder, if any.
    pub fn flight_recorder_handle(&self) -> Option<&Arc<FlightRecorder>> {
        self.flight.as_ref()
    }

    /// The per-shard sink pipeline configuration.
    pub fn sink(&self) -> &SinkConfig {
        &self.sink
    }

    /// The tracer shard engines report to.
    pub fn tracer_handle(&self) -> &Tracer {
        &self.tracer
    }

    /// Whether shard engines record per-stage latency histograms.
    pub fn stage_timing_enabled(&self) -> bool {
        self.stage_timing
    }

    /// The configured fault-injection predicate, if any.
    pub fn poison_hook_fn(&self) -> Option<&PoisonHook> {
        self.poison_hook.as_ref()
    }

    /// Configured checkpoint interval (packets between engine clones).
    pub fn checkpoint_interval_packets(&self) -> u64 {
        self.checkpoint_interval
    }

    /// Configured drain watchdog budget.
    pub fn drain_timeout_budget(&self) -> Duration {
        self.drain_timeout
    }

    /// Configured shard count.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Configured per-shard queue capacity.
    pub fn queue_capacity_per_shard(&self) -> usize {
        self.queue_capacity
    }

    /// Configured full-queue policy.
    pub fn backpressure_policy(&self) -> BackpressurePolicy {
        self.backpressure
    }

    /// Whether per-packet outcomes are retained for the drain report.
    pub fn keeps_outcomes(&self) -> bool {
        self.keep_outcomes
    }

    /// Whether workers start paused.
    pub fn starts_paused(&self) -> bool {
        self.start_paused
    }
}
