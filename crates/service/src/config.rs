//! Build-time description of a traceback service.

use pnm_core::SinkConfig;

/// What `ingest` does when a shard's bounded queue is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block the caller until the shard drains a slot. Ingestion never
    /// loses a packet; a slow sink slows its producers (the default).
    #[default]
    Block,
    /// Shed the packet immediately and count the drop. Producers never
    /// stall; the snapshot accounts every shed packet exactly.
    Shed,
}

/// Configuration for a [`ServicePool`](crate::ServicePool).
///
/// Only the inner [`SinkConfig`] is mandatory; defaults give one shard per
/// available core (capped at 8), a 1024-slot queue per shard, and blocking
/// backpressure.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    sink: SinkConfig,
    shards: usize,
    queue_capacity: usize,
    backpressure: BackpressurePolicy,
    keep_outcomes: bool,
    start_paused: bool,
}

impl ServiceConfig {
    /// A service running the given sink pipeline in every shard.
    pub fn new(sink: SinkConfig) -> Self {
        let shards = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        ServiceConfig {
            sink,
            shards,
            queue_capacity: 1024,
            backpressure: BackpressurePolicy::Block,
            keep_outcomes: false,
            start_paused: false,
        }
    }

    /// Sets the number of worker shards (≥ 1), each owning its own
    /// [`SinkEngine`](pnm_core::SinkEngine).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets each shard's bounded queue capacity (≥ 1).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the full-queue policy.
    pub fn backpressure(mut self, policy: BackpressurePolicy) -> Self {
        self.backpressure = policy;
        self
    }

    /// Keeps every per-packet [`SinkOutcome`](pnm_core::SinkOutcome),
    /// keyed by admission sequence number, for the drain report. Off by
    /// default — a long-running service should not grow unboundedly; turn
    /// it on for audits, experiments, and equivalence tests.
    pub fn keep_outcomes(mut self, keep: bool) -> Self {
        self.keep_outcomes = keep;
        self
    }

    /// Starts the workers paused: queues fill (and, under
    /// [`BackpressurePolicy::Shed`], shed deterministically) until
    /// [`ServicePool::resume`](crate::ServicePool::resume) releases them.
    /// Useful for pre-loading a burst and for exact backpressure tests.
    pub fn start_paused(mut self, paused: bool) -> Self {
        self.start_paused = paused;
        self
    }

    /// The per-shard sink pipeline configuration.
    pub fn sink(&self) -> &SinkConfig {
        &self.sink
    }

    /// Configured shard count.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Configured per-shard queue capacity.
    pub fn queue_capacity_per_shard(&self) -> usize {
        self.queue_capacity
    }

    /// Configured full-queue policy.
    pub fn backpressure_policy(&self) -> BackpressurePolicy {
        self.backpressure
    }

    /// Whether per-packet outcomes are retained for the drain report.
    pub fn keeps_outcomes(&self) -> bool {
        self.keep_outcomes
    }

    /// Whether workers start paused.
    pub fn starts_paused(&self) -> bool {
        self.start_paused
    }
}
