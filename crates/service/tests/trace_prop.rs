//! Trace propagation across the shard hand-off, property-tested: a
//! [`TraceContext`] passed into [`ServicePool::ingest_ctx`] rides the
//! shard queue with its packet, and the worker thread's engine opens its
//! `sink.ingest` and stage spans **inside** that context — parentage
//! survives the thread boundary for any shard count and interleaving.
//!
//! Each ingested packet gets its own root context, so the collector must
//! end up with exactly one `sink.ingest` span per context, parented to
//! the caller's span id, with every stage span under it — and no event
//! may name a trace the test did not mint.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use pnm_core::{MarkingScheme, NodeContext, ProbabilisticNestedMarking, SinkConfig, VerifyMode};
use pnm_crypto::KeyStore;
use pnm_obs::{Event, EventKind, ShardedRingCollector, TraceContext, Tracer};
use pnm_service::{ServiceConfig, ServicePool};
use pnm_wire::{Location, NodeId, Packet, Report};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const NODES: u16 = 6;

fn packets(count: usize, seed: u64) -> (Arc<KeyStore>, Vec<Packet>) {
    let keys = Arc::new(KeyStore::derive_from_master(b"trace-prop", NODES));
    let scheme = ProbabilisticNestedMarking::paper_default(NODES as usize);
    let mut rng = StdRng::seed_from_u64(seed);
    let pkts = (0..count)
        .map(|i| {
            let report = Report::new(
                format!("tp-{i}").into_bytes(),
                Location::new(i as f32, 0.0),
                i as u64,
            );
            let mut pkt = Packet::new(report);
            for hop in 0..NODES {
                let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
                scheme.mark(&ctx, &mut pkt, &mut rng);
            }
            pkt
        })
        .collect();
    (keys, pkts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn context_survives_shard_hand_off(
        shards in 1usize..6,
        count in 4usize..40,
        seed in 0u64..1 << 40,
    ) {
        let (keys, pkts) = packets(count, seed);
        let ring = Arc::new(ShardedRingCollector::new(4, 1 << 13));
        let tracer = Tracer::new(ring.clone());
        let pool = ServicePool::new(
            keys,
            ServiceConfig::new(SinkConfig::new(VerifyMode::Nested))
                .shards(shards)
                .tracer(tracer.clone()),
        );

        // One root span per packet, closed before drain so every chain is
        // complete in the collector. The span id is the context the shard
        // worker must parent under.
        let mut minted: BTreeMap<u64, u64> = BTreeMap::new(); // trace -> parent span
        for pkt in pkts {
            let span = tracer.span_root("caller.ingest");
            let ctx = span.context().unwrap();
            prop_assert!(minted.insert(ctx.trace, ctx.parent).is_none());
            pool.ingest_ctx(pkt, 0, ctx).unwrap();
        }
        // An untraced packet mixed in must stay untraced (legacy path).
        let (_, extra) = packets(1, seed ^ 0xFF);
        pool.ingest_ctx(extra.into_iter().next().unwrap(), 0, TraceContext::NONE)
            .unwrap();
        pool.drain();

        let events = ring.events();
        prop_assert_eq!(ring.dropped(), 0);
        let known: BTreeSet<u64> = minted.keys().copied().collect();
        for e in &events {
            if e.trace != 0 {
                prop_assert!(known.contains(&e.trace), "unknown trace {:#x}", e.trace);
            }
        }
        for (&trace, &parent) in &minted {
            let opens: Vec<&Event> = events
                .iter()
                .filter(|e| e.trace == trace && e.kind == EventKind::SpanOpen)
                .collect();
            let sink: Vec<&&Event> =
                opens.iter().filter(|e| e.name == "sink.ingest").collect();
            prop_assert!(sink.len() == 1, "one sink.ingest per context, got {}", sink.len());
            prop_assert!(
                sink[0].parent == parent,
                "sink.ingest parented to the caller's span across the queue"
            );
            for e in &opens {
                if e.name != "sink.ingest" && e.name != "caller.ingest" {
                    prop_assert!(
                        e.parent == sink[0].span,
                        "stage span {} not under its packet's sink.ingest",
                        e.name
                    );
                }
            }
        }
    }
}
