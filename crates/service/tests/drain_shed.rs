//! Shutdown, drain, and backpressure accounting.
//!
//! Shedding is made deterministic with `start_paused`: workers hold at the
//! start gate, so queues fill to exactly their configured capacity and
//! every overflow packet sheds — no timing dependence. The tests then
//! check the service's books balance to the packet: every admission ticket
//! is either processed (and appears in the retained outcomes) or counted
//! shed, and a closed service rejects everything.

use std::collections::BTreeSet;
use std::sync::Arc;

use pnm_core::{MarkingScheme, NodeContext, ProbabilisticNestedMarking, SinkConfig, VerifyMode};
use pnm_crypto::KeyStore;
use pnm_service::{BackpressurePolicy, IngestError, ServiceConfig, ServicePool};
use pnm_wire::{Location, NodeId, Packet, Report};
use rand::rngs::StdRng;
use rand::SeedableRng;

const PATH_LEN: u16 = 8;

fn keys() -> Arc<KeyStore> {
    Arc::new(KeyStore::derive_from_master(b"svc-drain", PATH_LEN))
}

/// A fully marked packet whose report varies with `rep` (distinct reports
/// spread across shards).
fn packet(ks: &KeyStore, rep: u64, rng: &mut StdRng) -> Packet {
    let scheme = ProbabilisticNestedMarking::paper_default(PATH_LEN as usize);
    let report = Report::new(
        format!("drain-{rep}").into_bytes(),
        Location::new(rep as f32, 0.0),
        rep,
    );
    let mut pkt = Packet::new(report);
    for hop in 0..PATH_LEN {
        let ctx = NodeContext::new(NodeId(hop), *ks.key(hop).unwrap());
        scheme.mark(&ctx, &mut pkt, rng);
    }
    pkt
}

#[test]
fn drain_processes_every_predrain_packet_and_closes_ingestion() {
    let ks = keys();
    let pool = ServicePool::new(
        Arc::clone(&ks),
        ServiceConfig::new(SinkConfig::new(VerifyMode::Nested))
            .shards(3)
            .keep_outcomes(true),
    );
    let mut rng = StdRng::seed_from_u64(41);
    let n = 60u64;
    for rep in 0..n {
        pool.ingest(packet(&ks, rep, &mut rng)).unwrap();
    }

    // Close first: everything already queued must still be verified, and
    // nothing new gets in.
    pool.close();
    assert!(pool.is_closed());
    let late = packet(&ks, 999, &mut rng);
    assert_eq!(pool.ingest(late), Err(IngestError::Closed));

    let report = pool.drain();
    assert_eq!(report.snapshot.accepted, n);
    assert_eq!(report.snapshot.processed, n);
    assert_eq!(report.snapshot.shed, 0);
    assert_eq!(report.snapshot.backlog(), 0);
    assert_eq!(report.snapshot.totals.packets as u64, n);
    // Every pre-drain packet made it through verification: the marks of
    // all 60 packets were verified and the source was localized.
    assert_eq!(report.engine.unequivocal_source(), Some(NodeId(0)));
    // Retained outcomes cover exactly the admitted tickets, in order.
    let tickets: Vec<u64> = report.outcomes.iter().map(|(t, _)| *t).collect();
    assert_eq!(tickets, (0..n).collect::<Vec<_>>());
    assert!(report.outcomes.iter().all(|(_, o)| o.chain.is_some()));
}

#[test]
fn shed_drops_are_exactly_accounted() {
    let ks = keys();
    let shards = 2usize;
    let capacity = 4usize;
    let pool = ServicePool::new(
        Arc::clone(&ks),
        ServiceConfig::new(SinkConfig::new(VerifyMode::Nested))
            .shards(shards)
            .queue_capacity(capacity)
            .backpressure(BackpressurePolicy::Shed)
            .keep_outcomes(true)
            .start_paused(true),
    );
    let mut rng = StdRng::seed_from_u64(43);

    // Workers are parked at the start gate, so each shard's queue holds at
    // most `capacity` packets and every overflow sheds — deterministically.
    let mut expect_accepted = vec![0u64; shards];
    let mut expect_shed = vec![0u64; shards];
    let mut accepted_tickets = BTreeSet::new();
    let mut offered = 0u64;
    for rep in 0..40u64 {
        let pkt = packet(&ks, rep, &mut rng);
        let shard = pool.shard_of(&pkt);
        match pool.ingest(pkt) {
            Ok(ticket) => {
                expect_accepted[shard] += 1;
                assert_eq!(ticket, offered, "tickets are admission-ordered");
                accepted_tickets.insert(ticket);
            }
            Err(IngestError::Shed) => expect_shed[shard] += 1,
            Err(IngestError::Closed) => panic!("service closed prematurely"),
        }
        offered += 1;
        assert!(
            expect_accepted[shard] <= capacity as u64,
            "a parked shard cannot accept past its queue capacity"
        );
    }
    let total_accepted: u64 = expect_accepted.iter().sum();
    let total_shed: u64 = expect_shed.iter().sum();
    assert_eq!(total_accepted + total_shed, offered);
    assert!(total_shed > 0, "the test must actually overflow");

    let report = pool.drain();
    assert_eq!(report.snapshot.accepted, total_accepted);
    assert_eq!(report.snapshot.shed, total_shed);
    assert_eq!(report.snapshot.processed, total_accepted);
    assert_eq!(report.snapshot.totals.packets as u64, total_accepted);
    for (i, shard) in report.snapshot.shards.iter().enumerate() {
        assert_eq!(shard.accepted, expect_accepted[i], "shard {i} accepted");
        assert_eq!(shard.shed, expect_shed[i], "shard {i} shed");
        assert_eq!(shard.processed, expect_accepted[i], "shard {i} processed");
    }
    // A shed ticket never reappears: retained outcomes are exactly the
    // accepted tickets (with gaps where drops were counted).
    let outcome_tickets: BTreeSet<u64> = report.outcomes.iter().map(|(t, _)| *t).collect();
    assert_eq!(outcome_tickets, accepted_tickets);
}

#[test]
fn block_policy_never_sheds_even_past_capacity() {
    let ks = keys();
    let pool = ServicePool::new(
        Arc::clone(&ks),
        ServiceConfig::new(SinkConfig::new(VerifyMode::Nested))
            .shards(2)
            .queue_capacity(2)
            .backpressure(BackpressurePolicy::Block),
    );
    let mut rng = StdRng::seed_from_u64(47);
    // 30 packets through 2-slot queues: the producer must block-and-wait
    // rather than drop.
    for rep in 0..30u64 {
        pool.ingest(packet(&ks, rep, &mut rng)).unwrap();
    }
    let report = pool.drain();
    assert_eq!(report.snapshot.accepted, 30);
    assert_eq!(report.snapshot.shed, 0);
    assert_eq!(report.snapshot.processed, 30);
}

#[test]
fn snapshot_is_safe_while_live() {
    let ks = keys();
    let pool = ServicePool::new(
        Arc::clone(&ks),
        ServiceConfig::new(SinkConfig::new(VerifyMode::Nested)).shards(2),
    );
    let mut rng = StdRng::seed_from_u64(53);
    for rep in 0..20u64 {
        pool.ingest(packet(&ks, rep, &mut rng)).unwrap();
        let snap = pool.snapshot();
        // Live counters may lag in-flight work but never overshoot.
        assert!(snap.processed <= snap.accepted);
        assert_eq!(snap.shed, 0);
    }
    let report = pool.drain();
    assert_eq!(report.snapshot.processed, 20);
}
