//! Crash/restore across the service layer: kill a pool mid-stream,
//! recover from the append-only log, and require the recovered pool's
//! evidence to be byte-identical to an uninterrupted run.
//!
//! The "kill" here is drain-then-damage: dropping a pool flushes final
//! deltas (that is graceful shutdown, not a crash), so these tests
//! simulate a SIGKILL by appending torn/garbage bytes to the log tail —
//! exactly the state a process killed mid-append leaves behind.

use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use pnm_core::store::{EvidenceStore, LogStore, MemStore};
use pnm_core::{
    IsolationPolicy, MarkingScheme, NodeContext, ProbabilisticNestedMarking, SinkConfig,
    SinkEngine, VerifyMode,
};
use pnm_crypto::KeyStore;
use pnm_service::{ServiceConfig, ServicePool};
use pnm_wire::{Location, NodeId, Packet, Report};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn temp_log(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "pnm-recovery-{}-{}-{}.log",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn keys(n: u16) -> Arc<KeyStore> {
    Arc::new(KeyStore::derive_from_master(b"recovery-test", n))
}

fn marked_packet(ks: &KeyStore, n: u16, seq: u64, rng: &mut StdRng) -> Packet {
    let scheme = ProbabilisticNestedMarking::paper_default(n as usize);
    let report = Report::new(
        format!("rec-{seq}").into_bytes(),
        Location::new(seq as f32, 0.0),
        seq,
    );
    let mut pkt = Packet::new(report);
    for hop in 0..n {
        let ctx = NodeContext::new(NodeId(hop), *ks.key(hop).unwrap());
        scheme.mark(&ctx, &mut pkt, rng);
    }
    pkt
}

fn sink_config() -> SinkConfig {
    SinkConfig::new(VerifyMode::Nested).isolation(IsolationPolicy::SuspectsOnly)
}

fn workload(ks: &KeyStore, n: u16, count: u64) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(4057);
    (0..count)
        .map(|s| marked_packet(ks, n, s, &mut rng))
        .collect()
}

/// The uninterrupted sequential reference: one engine over the whole
/// stream, with the drain-time quarantine sweep applied. Comparable to a
/// pooled run on counters, localization, and quarantine — but not on
/// `first_unequivocal`, which is shard-local by design.
fn reference_engine(ks: &Arc<KeyStore>, packets: &[Packet]) -> SinkEngine {
    let mut engine = SinkEngine::new(Arc::clone(ks), sink_config());
    for p in packets {
        engine.ingest(p);
    }
    engine.refresh_quarantine();
    engine.quarantine_source_regions();
    engine
}

/// The uninterrupted pooled reference: a store-less pool with the same
/// shard count over the whole stream. Byte-comparable to a recovered
/// pool (identical partitioning, identical shard-local indices).
fn reference_pool_evidence(ks: &Arc<KeyStore>, packets: &[Packet], shards: usize) -> Vec<u8> {
    let config = ServiceConfig::new(sink_config()).shards(shards);
    let pool = ServicePool::new(Arc::clone(ks), config);
    for p in packets {
        pool.ingest(p.clone()).unwrap();
    }
    pool.drain().engine.evidence().to_bytes()
}

#[test]
fn pool_recovers_from_log_and_matches_uninterrupted_run() {
    let n = 10u16;
    let ks = keys(n);
    let packets = workload(&ks, n, 120);
    let path = temp_log("roundtrip");

    // Phase 1: a pool with a durable log ingests the first half, then
    // "crashes": we drain it (flushing deltas, as every checkpoint
    // already did) and then damage the tail the way a torn write would.
    let store = Arc::new(LogStore::open(&path).unwrap());
    let config = ServiceConfig::new(sink_config())
        .shards(3)
        .store(Arc::clone(&store) as Arc<dyn EvidenceStore>);
    let pool = ServicePool::new(Arc::clone(&ks), config);
    for p in &packets[..60] {
        pool.ingest(p.clone()).unwrap();
    }
    let first = pool.drain();
    assert_eq!(first.snapshot.processed, 60);
    assert_eq!(first.snapshot.store_errors, 0);
    drop(store);
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    f.write_all(&[0xAB; 13]).unwrap(); // torn frame from the "kill"
    drop(f);

    // Phase 2: recover and continue with the second half.
    let config = ServiceConfig::new(sink_config()).shards(3);
    let (pool, stats) = ServicePool::recover_from_log(Arc::clone(&ks), config, &path).unwrap();
    assert_eq!(stats.rejected_frames, 1);
    assert!(stats.records > 0);
    assert_eq!(stats.packets_restored, 60);
    for p in &packets[60..] {
        pool.ingest(p.clone()).unwrap();
    }
    let report = pool.drain();

    // Localization, quarantine, and counters equal the uninterrupted
    // sequential run...
    let reference = reference_engine(&ks, &packets);
    assert_eq!(report.engine.counters(), reference.counters());
    assert_eq!(report.engine.localize(), reference.localize());
    assert_eq!(
        report.engine.unequivocal_source(),
        reference.unequivocal_source()
    );
    let seq_ev = reference.evidence();
    let recovered_evidence = report.engine.evidence();
    assert_eq!(recovered_evidence.quarantined, seq_ev.quarantined);
    // ...and the full evidence is byte-identical to an uninterrupted
    // *pool* of the same shape (shard-local first-unequivocal indices
    // included).
    assert_eq!(
        recovered_evidence.to_bytes(),
        reference_pool_evidence(&ks, &packets, 3),
        "recovered evidence must be byte-identical to the uninterrupted pool"
    );

    // A second recovery from the drained log alone (no further packets)
    // also reproduces the full evidence: the final flush covered it.
    let config = ServiceConfig::new(sink_config()).shards(3);
    let (pool, stats) = ServicePool::recover_from_log(Arc::clone(&ks), config, &path).unwrap();
    assert_eq!(stats.packets_restored, 120);
    let report = pool.drain();
    assert_eq!(
        report.engine.evidence().to_bytes(),
        recovered_evidence.to_bytes()
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn recovery_remaps_shards_when_count_changes() {
    // A log written by a 4-shard pool recovers into a 2-shard pool: the
    // evidence is a commutative monoid, so the remap (log shard % 2)
    // loses nothing.
    let n = 8u16;
    let ks = keys(n);
    let packets = workload(&ks, n, 80);
    let path = temp_log("remap");

    let store = Arc::new(LogStore::open(&path).unwrap());
    let config = ServiceConfig::new(sink_config())
        .shards(4)
        .store(store as Arc<dyn EvidenceStore>);
    let pool = ServicePool::new(Arc::clone(&ks), config);
    for p in &packets {
        pool.ingest(p.clone()).unwrap();
    }
    let original = pool.drain().engine.evidence().to_bytes();

    let config = ServiceConfig::new(sink_config()).shards(2);
    let (pool, stats) = ServicePool::recover_from_log(Arc::clone(&ks), config, &path).unwrap();
    assert_eq!(stats.packets_restored, 80);
    assert_eq!(stats.source_shards, 4);
    let report = pool.drain();
    // The remapped merge is the same monoid sum: byte-identical to what
    // the 4-shard pool drained.
    assert_eq!(report.engine.evidence().to_bytes(), original);
    std::fs::remove_file(&path).ok();
}

#[test]
fn poison_restart_with_store_does_not_double_count() {
    // A shard that panics restarts from its checkpoint and re-attaches
    // the store; the evidence the log accumulates must still match the
    // poison-free packet set exactly (no delta written twice).
    let n = 8u16;
    let ks = keys(n);
    let packets = workload(&ks, n, 40);
    let path = temp_log("poison");

    let store = Arc::new(LogStore::open(&path).unwrap());
    let config = ServiceConfig::new(sink_config())
        .shards(2)
        .store(Arc::clone(&store) as Arc<dyn EvidenceStore>)
        .poison_hook(|pkt: &Packet| pkt.report.event.starts_with(b"poison"));
    let pool = ServicePool::new(Arc::clone(&ks), config);
    let mut rng = StdRng::seed_from_u64(99);
    for p in &packets[..20] {
        pool.ingest(p.clone()).unwrap();
    }
    let poison = {
        let report = Report::new(b"poison-x".to_vec(), Location::new(0.0, 0.0), 7);
        let scheme = ProbabilisticNestedMarking::paper_default(n as usize);
        let mut pkt = Packet::new(report);
        for hop in 0..n {
            let ctx = NodeContext::new(NodeId(hop), *ks.key(hop).unwrap());
            scheme.mark(&ctx, &mut pkt, &mut rng);
        }
        pkt
    };
    pool.ingest(poison).unwrap();
    for p in &packets[20..] {
        pool.ingest(p.clone()).unwrap();
    }
    let report = pool.drain();
    assert_eq!(report.poisoned.len(), 1);
    assert_eq!(report.snapshot.store_errors, 0);

    // Replay equals the merged engine equals the poison-free reference.
    let replayed = store.replay().unwrap().merged();
    let reference = reference_engine(&ks, &packets);
    assert_eq!(replayed.counters, reference.counters());
    assert_eq!(replayed.nodes, reference.evidence().nodes);
    assert_eq!(replayed.edge_support, reference.evidence().edge_support);
    std::fs::remove_file(&path).ok();
}

#[test]
fn memstore_pool_matches_storeless_pool() {
    // MemStore is the null backend: attaching it changes nothing about
    // the drained evidence.
    let n = 8u16;
    let ks = keys(n);
    let packets = workload(&ks, n, 60);

    let mem = Arc::new(MemStore::new());
    let config = ServiceConfig::new(sink_config())
        .shards(2)
        .store(Arc::clone(&mem) as Arc<dyn EvidenceStore>);
    let with_store = ServicePool::new(Arc::clone(&ks), config);
    let config = ServiceConfig::new(sink_config()).shards(2);
    let without = ServicePool::new(Arc::clone(&ks), config);
    for p in &packets {
        with_store.ingest(p.clone()).unwrap();
        without.ingest(p.clone()).unwrap();
    }
    let a = with_store.drain();
    let b = without.drain();
    assert_eq!(
        a.engine.evidence().to_bytes(),
        b.engine.evidence().to_bytes()
    );
    // And the MemStore replay reproduces the same merged evidence (the
    // merged engines carry drain-time quarantine the shards never see).
    let mut replayed = SinkEngine::new(Arc::clone(&ks), sink_config());
    replayed.install_evidence(&mem.replay().unwrap().merged());
    replayed.refresh_quarantine();
    replayed.quarantine_source_regions();
    assert_eq!(
        replayed.evidence().to_bytes(),
        a.engine.evidence().to_bytes()
    );
}

#[test]
fn recover_without_store_is_an_error() {
    let ks = keys(4);
    let config = ServiceConfig::new(sink_config()).shards(1);
    assert!(ServicePool::recover(ks, config).is_err());
}
