//! The service's one load-bearing correctness claim, property-tested:
//! sharded ingestion is observably equivalent to a single sequential
//! [`SinkEngine`] over the same packet stream — verdict for verdict,
//! chain for chain, and quarantine-set for quarantine-set — for any shard
//! count, any number of moles, and any report mix.
//!
//! The sequential baseline mirrors the service's drain semantics exactly:
//! per-packet processing runs without the isolation stage (shard-local
//! quarantine would be partition-dependent), and the configured policy is
//! applied once, at end of stream, to the full route graph — the same
//! refresh + source-region sweep [`ServicePool::drain`] performs on the
//! merged engine.

use std::collections::BTreeSet;
use std::sync::Arc;

use pnm_core::{
    EventRegistry, IsolationPolicy, MarkingScheme, NodeContext, ProbabilisticNestedMarking,
    SinkConfig, SinkEngine, SinkOutcome, TrafficClassifier, VerifyMode,
};
use pnm_crypto::KeyStore;
use pnm_service::{ServiceConfig, ServicePool};
use pnm_wire::{Location, NodeId, Packet, Report};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Nodes reserved per mole path; path `p` marks through nodes
/// `[p*BAND, p*BAND + path_len)`.
const BAND: u16 = 8;

/// Builds a multi-mole stream: `n_paths` disjoint mole routes, each
/// cycling `n_reports` distinct reports, `n_packets` packets total.
/// Even-numbered reports are corroborated by the registry (benign at the
/// classifier); odd ones are not.
fn scenario(
    n_paths: u16,
    path_len: u16,
    n_reports: u64,
    n_packets: usize,
    seed: u64,
) -> (Arc<KeyStore>, SinkConfig, Vec<Packet>) {
    let keys = Arc::new(KeyStore::derive_from_master(b"svc-equiv", n_paths * BAND));
    let scheme = ProbabilisticNestedMarking::paper_default(path_len as usize);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut registry = EventRegistry::new(1.0);
    for p in 0..n_paths {
        for r in (0..n_reports).step_by(2) {
            registry.register(r as f32 * 10.0, p as f32 * 10.0, 0, u64::MAX);
        }
    }
    let config = SinkConfig::new(VerifyMode::Nested)
        .table_cache_capacity(3)
        .classifier(TrafficClassifier::permissive().with_registry(registry))
        .isolation(IsolationPolicy::SuspectsOnly);

    let packets = (0..n_packets)
        .map(|i| {
            let p = (i as u16) % n_paths;
            let r = (i as u64 / n_paths as u64) % n_reports;
            let report = Report::new(
                format!("eq-{p}-{r}").into_bytes(),
                Location::new(r as f32 * 10.0, p as f32 * 10.0),
                r,
            );
            let mut pkt = Packet::new(report);
            for hop in 0..path_len {
                let node = p * BAND + hop;
                let ctx = NodeContext::new(NodeId(node), *keys.key(node).unwrap());
                scheme.mark(&ctx, &mut pkt, &mut rng);
            }
            pkt
        })
        .collect();
    (keys, config, packets)
}

/// The end-of-stream quarantine sweep the service runs at drain, applied
/// to a sequential engine's evidence.
fn drain_sweep(keys: &Arc<KeyStore>, config: &SinkConfig, evidence: &SinkEngine) -> SinkEngine {
    let mut merged = SinkEngine::new(Arc::clone(keys), config.clone());
    merged.absorb(evidence);
    merged.refresh_quarantine();
    merged.quarantine_source_regions();
    merged
}

fn quarantined(engine: &SinkEngine) -> BTreeSet<NodeId> {
    engine.quarantine().quarantined().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any shard count and any stream, `ServicePool` produces the
    /// same per-packet outcomes (in admission order), the same
    /// localization, the same source regions, and the same quarantine set
    /// as one sequential engine.
    #[test]
    fn sharded_service_equals_sequential_engine(
        n_paths in 1u16..4,
        path_len in 2u16..9,
        n_reports in 1u64..5,
        n_packets in 1usize..48,
        shards in 1usize..6,
        seed in any::<u64>(),
    ) {
        let (keys, config, packets) = scenario(n_paths, path_len, n_reports, n_packets, seed);

        // Sequential baseline: isolation stripped per packet, policy
        // applied once at end of stream (the drain semantics).
        let mut seq = SinkEngine::new(
            Arc::clone(&keys),
            config.clone().without_isolation(),
        );
        let seq_out: Vec<SinkOutcome> = packets.iter().map(|p| seq.ingest(p)).collect();
        let seq_final = drain_sweep(&keys, &config, &seq);

        // Sharded service over the identical stream.
        let pool = ServicePool::new(
            Arc::clone(&keys),
            ServiceConfig::new(config.clone())
                .shards(shards)
                .queue_capacity(8)
                .keep_outcomes(true),
        );
        for pkt in &packets {
            pool.ingest(pkt.clone()).expect("block policy never sheds");
        }
        let report = pool.drain();

        // Verdict-for-verdict: admission order is ingestion order here
        // (single producer, no shedding), so seq tickets are 0..n.
        prop_assert_eq!(report.outcomes.len(), seq_out.len());
        for (i, ((ticket, got), want)) in
            report.outcomes.iter().zip(seq_out.iter()).enumerate()
        {
            prop_assert_eq!(*ticket, i as u64);
            prop_assert_eq!(got, want);
        }

        // Same localization story.
        prop_assert_eq!(report.engine.localize(), seq_final.localize());
        prop_assert_eq!(report.engine.source_regions(), seq_final.source_regions());
        prop_assert_eq!(
            report.engine.unequivocal_source(),
            seq_final.unequivocal_source()
        );

        // Quarantine-set identical.
        prop_assert_eq!(quarantined(&report.engine), quarantined(&seq_final));

        // Work accounting: partition-invariant counters match exactly;
        // cache-locality counters (table builds/hits) are allowed to
        // differ across shard counts, but conservation must hold.
        let totals = report.snapshot.totals;
        let base = seq.counters();
        prop_assert_eq!(totals.packets, base.packets);
        prop_assert_eq!(totals.suspicious, base.suspicious);
        prop_assert_eq!(totals.benign, base.benign);
        prop_assert_eq!(totals.marks_verified, base.marks_verified);
        prop_assert_eq!(totals.marks_rejected, base.marks_rejected);
        prop_assert_eq!(
            totals.table_builds + totals.table_cache_hits,
            base.table_builds + base.table_cache_hits
        );
        prop_assert_eq!(report.snapshot.processed as usize, packets.len());
        prop_assert_eq!(report.snapshot.shed, 0);
    }

    /// A shard killed by an injected panicking packet restarts, the
    /// poison packets are quarantined, and the drained merge still equals
    /// a sequential engine fed only the surviving (non-poison) packets —
    /// graceful degradation loses exactly the poison, nothing else.
    #[test]
    fn poisoned_service_equals_sequential_engine_on_survivors(
        n_paths in 1u16..3,
        path_len in 2u16..8,
        n_reports in 1u64..4,
        n_packets in 1usize..32,
        shards in 1usize..5,
        n_poison in 1usize..4,
        seed in any::<u64>(),
    ) {
        let (keys, config, packets) = scenario(n_paths, path_len, n_reports, n_packets, seed);

        // Poison packets are ordinary, fully marked packets whose event
        // bytes trip the injected hook before the engine sees them.
        let scheme = ProbabilisticNestedMarking::paper_default(path_len as usize);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
        let mut stream: Vec<(bool, Packet)> =
            packets.into_iter().map(|p| (false, p)).collect();
        for i in 0..n_poison {
            let report = Report::new(
                format!("poison-{i}").into_bytes(),
                Location::new(0.0, 0.0),
                i as u64,
            );
            let mut pkt = Packet::new(report);
            for hop in 0..path_len {
                let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
                scheme.mark(&ctx, &mut pkt, &mut rng);
            }
            let pos = (seed as usize).wrapping_add(i * 7919) % (stream.len() + 1);
            stream.insert(pos, (true, pkt));
        }

        // Sequential baseline over the survivors only.
        let mut seq = SinkEngine::new(
            Arc::clone(&keys),
            config.clone().without_isolation(),
        );
        let mut seq_out = Vec::new();
        for (is_poison, pkt) in &stream {
            if !*is_poison {
                seq_out.push(seq.ingest(pkt));
            }
        }
        let seq_final = drain_sweep(&keys, &config, &seq);

        let pool = ServicePool::new(
            Arc::clone(&keys),
            ServiceConfig::new(config.clone())
                .shards(shards)
                .queue_capacity(8)
                .keep_outcomes(true)
                .poison_hook(|pkt: &Packet| pkt.report.event.starts_with(b"poison")),
        );
        let mut poison_seqs = BTreeSet::new();
        let mut survivor_seqs = Vec::new();
        for (is_poison, pkt) in &stream {
            let ticket = pool.ingest(pkt.clone()).expect("block policy never sheds");
            if *is_poison {
                poison_seqs.insert(ticket);
            } else {
                survivor_seqs.push(ticket);
            }
        }
        let report = pool.drain();

        // Every poison packet was caught, quarantined, and nothing else.
        prop_assert!(report.wedged.is_empty());
        prop_assert_eq!(report.poisoned.len(), n_poison);
        prop_assert_eq!(report.snapshot.panics as usize, n_poison);
        let caught: BTreeSet<u64> = report.poisoned.iter().map(|p| p.seq).collect();
        prop_assert_eq!(&caught, &poison_seqs);

        // Survivor outcomes: verdict-for-verdict, in admission order.
        prop_assert_eq!(report.outcomes.len(), seq_out.len());
        for (((ticket, got), want), expect_seq) in report
            .outcomes
            .iter()
            .zip(seq_out.iter())
            .zip(survivor_seqs.iter())
        {
            prop_assert_eq!(ticket, expect_seq);
            prop_assert_eq!(got, want);
        }

        // Same localization and quarantine story as the survivor-only
        // sequential engine.
        prop_assert_eq!(report.engine.localize(), seq_final.localize());
        prop_assert_eq!(report.engine.source_regions(), seq_final.source_regions());
        prop_assert_eq!(quarantined(&report.engine), quarantined(&seq_final));
        let totals = report.snapshot.totals;
        let base = seq.counters();
        prop_assert_eq!(totals.packets, base.packets);
        prop_assert_eq!(totals.suspicious, base.suspicious);
        prop_assert_eq!(totals.benign, base.benign);
        prop_assert_eq!(totals.marks_verified, base.marks_verified);
        prop_assert_eq!(totals.marks_rejected, base.marks_rejected);
    }
}
