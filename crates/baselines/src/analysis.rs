//! Closed-form overhead models for the §8 comparison.
//!
//! These formulas price each traceback approach in the currencies that
//! matter on sensor hardware — bytes stored per node and byte·hops of
//! radio traffic — so the `pnm-sim` measurements can be sanity-checked
//! against arithmetic.

/// Bytes of log storage a node needs to keep `window_packets` of history
/// under hash-based logging (32-byte digests).
pub fn logging_storage_bytes(window_packets: usize) -> usize {
    window_packets * 32
}

/// How many packets of history a node can afford with `ram_bytes` of
/// dedicated log memory — the quantity that decides whether a packet can
/// still be traced by the time the sink asks (Mica2-class nodes have a
/// few KB to spare at best).
pub fn logging_window(ram_bytes: usize) -> usize {
    ram_bytes / 32
}

/// Control messages one logging traceback costs: a query and a response
/// per provisioned node.
pub fn logging_query_messages(network_size: usize) -> u64 {
    2 * network_size as u64
}

/// Expected extra *routed* traffic notification-based traceback adds per
/// data packet: each of the `path_len` forwarders notifies with
/// probability `q`, and each notification itself travels its sender's
/// route (≈ half the path on average), costing byte·hops.
pub fn notification_byte_hops_per_packet(
    path_len: usize,
    q: f64,
    notification_bytes: usize,
) -> f64 {
    let expected_notifications = path_len as f64 * q;
    let mean_route = (path_len as f64 + 1.0) / 2.0;
    expected_notifications * notification_bytes as f64 * mean_route
}

/// PNM's in-band byte·hops per data packet: the accumulated marks ride the
/// data packet itself, so hop `h` carries ≈ `h · p` marks of `mark_bytes`
/// each — summing to `p · mark_bytes · n(n+1)/2` byte·hops.
pub fn pnm_byte_hops_per_packet(path_len: usize, p: f64, mark_bytes: usize) -> f64 {
    let n = path_len as f64;
    p * mark_bytes as f64 * n * (n + 1.0) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::notification::NOTIFICATION_BYTES;

    #[test]
    fn logging_storage_math() {
        assert_eq!(logging_storage_bytes(128), 4096);
        assert_eq!(logging_window(4096), 128);
        // Mica2 has ~4KB usable RAM: under a 50 pkt/s attack the whole
        // window turns over in ~2.5 seconds — the paper's storage
        // criticism in one number.
        let seconds = logging_window(4096) as f64 / 50.0;
        assert!(seconds < 3.0, "window lasts {seconds}s");
    }

    #[test]
    fn logging_query_cost_scales_with_network() {
        assert_eq!(logging_query_messages(1000), 2000);
    }

    #[test]
    fn notification_vs_pnm_byte_hops() {
        // Matched information rate: q = p = 3/n.
        let n = 20usize;
        let q = 3.0 / n as f64;
        let notif = notification_byte_hops_per_packet(n, q, NOTIFICATION_BYTES);
        // PNM anonymous mark = 18 bytes on the wire.
        let pnm = pnm_byte_hops_per_packet(n, q, 18);
        // Notification: 3 notifications × 42 B × ~10.5 hops ≈ 1323 B·hops.
        assert!((notif - 1323.0).abs() < 1.0, "notif = {notif}");
        // PNM: 0.15 × 18 × 210 = 567 B·hops — less than half.
        assert!((pnm - 567.0).abs() < 1.0, "pnm = {pnm}");
        assert!(pnm < notif / 2.0);
    }

    #[test]
    fn pnm_byte_hops_quadratic_but_small_constant() {
        // The marks accumulate along the path (quadratic term) but with a
        // small constant; the crossover with notification happens only on
        // very long paths.
        let q = 0.15;
        let short = pnm_byte_hops_per_packet(10, q, 18);
        let long = pnm_byte_hops_per_packet(40, q, 18);
        assert!(long > short * 10.0, "quadratic growth");
        let notif_long = notification_byte_hops_per_packet(40, 3.0 / 40.0, NOTIFICATION_BYTES);
        // Even at n = 40, PNM's in-band cost stays below notification's.
        assert!(
            pnm_byte_hops_per_packet(40, 3.0 / 40.0, 18) < notif_long,
            "pnm {} vs notif {notif_long}",
            pnm_byte_hops_per_packet(40, 3.0 / 40.0, 18)
        );
    }
}
