//! Logging-based traceback (after Snoeren et al., "Hash-Based IP
//! Traceback” — the paper's reference \[9]).
//!
//! Each node stores digests of recently forwarded packets; to trace a
//! packet, the sink *queries* nodes ("did you forward this digest?") and
//! stitches the positive answers into a path. The PNM paper's two
//! criticisms, both modeled here:
//!
//! 1. **Storage** — low-end sensors have tiny memories, so digest tables
//!    are small and evict ([`PacketLog`] is bounded; evicted evidence is
//!    gone).
//! 2. **Insecure signaling** — query/response messages are a new attack
//!    surface: a mole simply *lies* in its responses
//!    ([`RespondPolicy`]), denying forwarding to hide, or claiming
//!    forwarding to frame.

use std::collections::{HashSet, VecDeque};

use serde::{Deserialize, Serialize};

use pnm_crypto::{Digest, Sha256};

/// A node's bounded forwarded-packet digest log.
#[derive(Clone, Debug)]
pub struct PacketLog {
    capacity: usize,
    seen: HashSet<Digest>,
    order: VecDeque<Digest>,
    /// Total packets ever logged (for overhead accounting).
    pub logged_total: u64,
}

impl PacketLog {
    /// Creates a log holding up to `capacity` digests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        PacketLog {
            capacity,
            seen: HashSet::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
            logged_total: 0,
        }
    }

    /// Records a forwarded packet's bytes.
    pub fn record(&mut self, packet_bytes: &[u8]) {
        let d = Sha256::digest(packet_bytes);
        if self.seen.contains(&d) {
            return;
        }
        if self.order.len() == self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        self.order.push_back(d);
        self.seen.insert(d);
        self.logged_total += 1;
    }

    /// Whether the log (still) remembers the packet.
    pub fn remembers(&self, packet_bytes: &[u8]) -> bool {
        self.seen.contains(&Sha256::digest(packet_bytes))
    }

    /// Digests currently held.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` if nothing is logged.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Bytes of storage the log occupies (32 B per digest).
    pub fn storage_bytes(&self) -> usize {
        self.order.len() * 32
    }
}

/// How a node answers traceback queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RespondPolicy {
    /// Answer truthfully from the log.
    Honest,
    /// Always deny having forwarded anything (a hiding mole).
    DenyAll,
    /// Always claim having forwarded everything (framing noise).
    ConfirmAll,
}

/// One node's traceback-query endpoint.
#[derive(Clone, Debug)]
pub struct QueryResponder {
    /// The node's log.
    pub log: PacketLog,
    /// Its (possibly malicious) answer policy.
    pub policy: RespondPolicy,
    /// Queries answered (message-overhead accounting).
    pub queries_answered: u64,
}

impl QueryResponder {
    /// An honest responder with the given log capacity.
    pub fn honest(capacity: usize) -> Self {
        QueryResponder {
            log: PacketLog::new(capacity),
            policy: RespondPolicy::Honest,
            queries_answered: 0,
        }
    }

    /// A responder with an explicit policy.
    pub fn with_policy(capacity: usize, policy: RespondPolicy) -> Self {
        QueryResponder {
            log: PacketLog::new(capacity),
            policy,
            queries_answered: 0,
        }
    }

    /// Answers "did you forward this packet?".
    pub fn answer(&mut self, packet_bytes: &[u8]) -> bool {
        self.queries_answered += 1;
        match self.policy {
            RespondPolicy::Honest => self.log.remembers(packet_bytes),
            RespondPolicy::DenyAll => false,
            RespondPolicy::ConfirmAll => true,
        }
    }
}

/// The sink-side logging traceback: query every node about one packet and
/// return the claimed forwarding set, plus the number of query/response
/// messages spent (2 per node: one query, one response).
///
/// With honest nodes and un-evicted logs this yields exactly the
/// forwarding path (unordered — ordering requires topology knowledge).
/// With lying moles the result is wrong in whatever direction the mole
/// chose — the insecurity the PNM paper points out.
pub fn logging_traceback(
    responders: &mut [QueryResponder],
    packet_bytes: &[u8],
) -> (Vec<u16>, u64) {
    let mut claimed = Vec::new();
    let mut messages = 0u64;
    for (id, r) in responders.iter_mut().enumerate() {
        messages += 2;
        if r.answer(packet_bytes) {
            claimed.push(id as u16);
        }
    }
    (claimed, messages)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_records_and_remembers() {
        let mut log = PacketLog::new(8);
        log.record(b"pkt-1");
        assert!(log.remembers(b"pkt-1"));
        assert!(!log.remembers(b"pkt-2"));
        assert_eq!(log.len(), 1);
        assert_eq!(log.storage_bytes(), 32);
    }

    #[test]
    fn log_eviction_loses_evidence() {
        let mut log = PacketLog::new(2);
        log.record(b"a");
        log.record(b"b");
        log.record(b"c"); // evicts "a"
        assert!(!log.remembers(b"a"), "evidence lost as the paper warns");
        assert!(log.remembers(b"b"));
        assert!(log.remembers(b"c"));
        assert_eq!(log.logged_total, 3);
    }

    #[test]
    fn duplicate_records_are_idempotent() {
        let mut log = PacketLog::new(4);
        log.record(b"a");
        log.record(b"a");
        assert_eq!(log.len(), 1);
        assert_eq!(log.logged_total, 1);
    }

    #[test]
    fn honest_traceback_finds_the_path() {
        let mut responders: Vec<QueryResponder> =
            (0..10).map(|_| QueryResponder::honest(64)).collect();
        // The packet traversed nodes 2, 3, 4.
        for id in [2usize, 3, 4] {
            responders[id].log.record(b"the-packet");
        }
        let (claimed, messages) = logging_traceback(&mut responders, b"the-packet");
        assert_eq!(claimed, vec![2, 3, 4]);
        assert_eq!(messages, 20, "2 messages per node queried");
    }

    #[test]
    fn denying_mole_breaks_the_path() {
        let mut responders: Vec<QueryResponder> =
            (0..10).map(|_| QueryResponder::honest(64)).collect();
        for id in [2usize, 3, 4] {
            responders[id].log.record(b"the-packet");
        }
        responders[3].policy = RespondPolicy::DenyAll;
        let (claimed, _) = logging_traceback(&mut responders, b"the-packet");
        // The path now has a hole at the mole: traceback is cut.
        assert_eq!(claimed, vec![2, 4]);
    }

    #[test]
    fn confirming_mole_frames_itself_into_paths() {
        let mut responders: Vec<QueryResponder> =
            (0..10).map(|_| QueryResponder::honest(64)).collect();
        for id in [2usize, 3] {
            responders[id].log.record(b"the-packet");
        }
        responders[7].policy = RespondPolicy::ConfirmAll;
        let (claimed, _) = logging_traceback(&mut responders, b"the-packet");
        // Node 7 appears on a path it never touched — noise the sink
        // cannot distinguish (the signaling is unauthenticated w.r.t. the
        // actual forwarding event).
        assert_eq!(claimed, vec![2, 3, 7]);
    }

    #[test]
    fn query_overhead_scales_with_network_size() {
        for n in [10usize, 100, 1000] {
            let mut responders: Vec<QueryResponder> =
                (0..n).map(|_| QueryResponder::honest(4)).collect();
            let (_, messages) = logging_traceback(&mut responders, b"x");
            assert_eq!(messages, 2 * n as u64);
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = PacketLog::new(0);
    }
}
