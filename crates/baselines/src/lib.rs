//! Alternative traceback approaches — the §8 comparison points.
//!
//! "Besides packet marking, there are two more approaches for traceback,
//! namely logging and notification." This crate implements simplified but
//! faithful versions of both so the trade-offs the PNM paper claims can be
//! *measured* rather than asserted:
//!
//! | Approach | In-band? | Node storage | Control messages | Abusable by moles |
//! |---|---|---|---|---|
//! | [`logging`] (hash-based, \[9]) | no | O(log capacity) digests | 2 per node per traced packet | lies in query responses |
//! | [`notification`] (ICMP-style, \[2]) | no | none | 1 extra routed packet per notification | fabricated forwarding claims |
//! | PNM (`pnm-core`) | **yes** | **none** | **none** | provably not (Theorem 4) |
//!
//! The head-to-head experiment is `pnm-sim`'s `regen-figures baselines`
//! table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod logging;
pub mod notification;

pub use analysis::{
    logging_query_messages, logging_storage_bytes, logging_window,
    notification_byte_hops_per_packet, pnm_byte_hops_per_packet,
};
pub use logging::{logging_traceback, PacketLog, QueryResponder, RespondPolicy};
pub use notification::{
    notify, should_notify, verify_notification, Notification, NotificationSink, NOTIFICATION_BYTES,
};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::logging::{logging_traceback, QueryResponder};
    use crate::notification::{notify, verify_notification};
    use pnm_crypto::KeyStore;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Honest logging traceback returns exactly the forwarding set as
        /// long as nothing evicted.
        #[test]
        fn honest_logging_is_exact(
            path in proptest::collection::btree_set(0u16..30, 1..10),
            packet in proptest::collection::vec(any::<u8>(), 1..64),
        ) {
            let mut responders: Vec<QueryResponder> =
                (0..30).map(|_| QueryResponder::honest(64)).collect();
            for &id in &path {
                responders[id as usize].log.record(&packet);
            }
            let (claimed, messages) = logging_traceback(&mut responders, &packet);
            let expect: Vec<u16> = path.into_iter().collect();
            prop_assert_eq!(claimed, expect);
            prop_assert_eq!(messages, 60);
        }

        /// Notifications verify under the right key and only that key.
        #[test]
        fn notification_sender_authentic(
            reporter in 0u16..16,
            other in 0u16..16,
            packet in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let ks = KeyStore::derive_from_master(b"prop-notify", 16);
            let n = notify(ks.key(reporter).unwrap(), reporter, &packet);
            prop_assert!(verify_notification(ks.key(reporter).unwrap(), &n));
            if other != reporter {
                prop_assert!(!verify_notification(ks.key(other).unwrap(), &n));
            }
        }
    }
}
