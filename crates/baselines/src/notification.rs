//! Notification-based traceback (after Bellovin's ICMP traceback — the
//! paper's reference \[2]).
//!
//! Each forwarder, with probability `q`, sends the sink a separate
//! *notification* message: "I forwarded a packet with this digest."
//! The sink correlates notifications per packet to reconstruct paths.
//! The PNM paper's criticisms, modeled here:
//!
//! 1. **Control-message overhead** — every notification is an extra
//!    packet that must itself be forwarded to the sink (costing energy
//!    along its whole route), unlike PNM's in-band marks.
//! 2. **Abusable signaling** — a mole can emit notifications for packets
//!    it never forwarded, framing innocent-looking paths; authenticating
//!    the notification's *sender* does not authenticate the claimed
//!    forwarding *event*.

use rand::Rng;
use serde::{Deserialize, Serialize};

use pnm_crypto::{Digest, HmacSha256, MacKey, MacTag, Sha256};

/// A notification message: "node `reporter` forwarded packet `digest`".
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Notification {
    /// Claimed forwarder.
    pub reporter: u16,
    /// Digest of the packet allegedly forwarded.
    pub digest: Digest,
    /// MAC under the reporter's sink key (sender authenticity only!).
    pub mac: MacTag,
}

/// Size of one notification on the wire (id + digest + 8-byte MAC).
pub const NOTIFICATION_BYTES: usize = 2 + 32 + 8;

const DOMAIN_NOTIFY: &[u8] = b"pnm/notify/v1";

/// Builds an authenticated notification.
pub fn notify(key: &MacKey, reporter: u16, packet_bytes: &[u8]) -> Notification {
    let digest = Sha256::digest(packet_bytes);
    let mut h = HmacSha256::new(key.as_bytes());
    h.update(DOMAIN_NOTIFY);
    h.update(&reporter.to_be_bytes());
    h.update(digest.as_bytes());
    let mac = MacTag::from_bytes(&h.finalize().as_bytes()[..8]);
    Notification {
        reporter,
        digest,
        mac,
    }
}

/// Verifies a notification's *sender* (not the claimed event).
pub fn verify_notification(key: &MacKey, n: &Notification) -> bool {
    let expected = {
        let mut h = HmacSha256::new(key.as_bytes());
        h.update(DOMAIN_NOTIFY);
        h.update(&n.reporter.to_be_bytes());
        h.update(n.digest.as_bytes());
        MacTag::from_bytes(&h.finalize().as_bytes()[..8])
    };
    expected == n.mac
}

/// Decides probabilistically whether a forwarder notifies for a packet.
pub fn should_notify(q: f64, rng: &mut dyn Rng) -> bool {
    debug_assert!((0.0..=1.0).contains(&q));
    let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    u < q
}

/// The sink's notification correlator: groups verified notifications per
/// packet digest.
#[derive(Clone, Debug, Default)]
pub struct NotificationSink {
    /// digest → reporters (in arrival order).
    by_packet: std::collections::HashMap<Digest, Vec<u16>>,
    /// Notifications rejected for bad MACs.
    pub rejected: u64,
    /// Total accepted.
    pub accepted: u64,
}

impl NotificationSink {
    /// Creates an empty correlator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests a notification, verifying sender authenticity against the
    /// reporter's key.
    pub fn ingest(&mut self, key: &MacKey, n: &Notification) {
        if !verify_notification(key, n) {
            self.rejected += 1;
            return;
        }
        self.accepted += 1;
        self.by_packet.entry(n.digest).or_default().push(n.reporter);
    }

    /// The reporters who claimed to forward `packet_bytes`.
    pub fn reporters_for(&self, packet_bytes: &[u8]) -> &[u16] {
        self.by_packet
            .get(&Sha256::digest(packet_bytes))
            .map_or(&[], Vec::as_slice)
    }

    /// Number of distinct packets with at least one notification.
    pub fn packets_seen(&self) -> usize {
        self.by_packet.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnm_crypto::KeyStore;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys() -> KeyStore {
        KeyStore::derive_from_master(b"notify-test", 16)
    }

    #[test]
    fn notification_round_trip() {
        let ks = keys();
        let n = notify(ks.key(3).unwrap(), 3, b"pkt");
        assert!(verify_notification(ks.key(3).unwrap(), &n));
        // Wrong key: rejected.
        assert!(!verify_notification(ks.key(4).unwrap(), &n));
    }

    #[test]
    fn sink_correlates_per_packet() {
        let ks = keys();
        let mut sink = NotificationSink::new();
        for id in [2u16, 5, 9] {
            let n = notify(ks.key(id).unwrap(), id, b"pkt-A");
            sink.ingest(ks.key(id).unwrap(), &n);
        }
        let n = notify(ks.key(7).unwrap(), 7, b"pkt-B");
        sink.ingest(ks.key(7).unwrap(), &n);
        assert_eq!(sink.reporters_for(b"pkt-A"), &[2, 5, 9]);
        assert_eq!(sink.reporters_for(b"pkt-B"), &[7]);
        assert_eq!(sink.packets_seen(), 2);
        assert_eq!(sink.accepted, 4);
    }

    #[test]
    fn tampered_notification_rejected() {
        let ks = keys();
        let mut sink = NotificationSink::new();
        let mut n = notify(ks.key(2).unwrap(), 2, b"pkt");
        n.mac = n.mac.corrupted();
        sink.ingest(ks.key(2).unwrap(), &n);
        assert_eq!(sink.rejected, 1);
        assert!(sink.reporters_for(b"pkt").is_empty());
    }

    #[test]
    fn mole_frames_itself_into_never_seen_packets() {
        // The §8 abuse: a mole notifies for a packet it never forwarded.
        // The MAC is valid (it's really the mole speaking), so the sink
        // accepts it — the *event* is unverifiable.
        let ks = keys();
        let mut sink = NotificationSink::new();
        let mole = 11u16;
        let fabricated = notify(ks.key(mole).unwrap(), mole, b"some-victims-packet");
        sink.ingest(ks.key(mole).unwrap(), &fabricated);
        assert_eq!(sink.reporters_for(b"some-victims-packet"), &[mole]);
    }

    #[test]
    fn notification_probability_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..20_000)
            .filter(|_| should_notify(0.05, &mut rng))
            .count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.05).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn wire_size_constant_is_consistent() {
        // id (2) + digest (32) + mac (8).
        assert_eq!(NOTIFICATION_BYTES, 42);
    }
}
