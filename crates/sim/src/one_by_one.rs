//! "PNM can always locate them one by one" (abstract, §1).
//!
//! With several colluding moles on one path, the traceback pins the
//! *most-downstream* manipulating mole first (its manipulation invalidates
//! everything upstream of it). The defender removes that mole, traceback
//! continues on subsequent traffic, exposing the next mole — iterating
//! until the source mole itself is cornered. This experiment runs that
//! loop and records who is caught in which round.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use pnm_adversary::{AttackKind, AttackPlan, ForwardingMole, MoleAction, SourceMole};
use pnm_core::{Localization, NodeContext, SinkConfig, SinkEngine, VerifyMode};
use pnm_wire::NodeId;

use crate::scenario::{PathScenario, SchemeKind};
use crate::table::Table;

/// One round of the iterative cleanup.
#[derive(Clone, Debug)]
pub struct CatchRound {
    /// Round number (1-based).
    pub round: usize,
    /// The sink's localization this round.
    pub localization: Localization,
    /// Moles caught (inside the suspected one-hop neighborhood) this round.
    pub caught: Vec<NodeId>,
}

/// Outcome of the full cleanup loop.
#[derive(Clone, Debug)]
pub struct CleanupResult {
    /// Per-round records.
    pub rounds: Vec<CatchRound>,
    /// Moles still at large when the loop ended.
    pub remaining: Vec<NodeId>,
}

/// Runs the iterative cleanup: a source mole plus forwarding moles at
/// `mole_positions` (each running the paired attack), `packets` of attack
/// traffic per round, on an `n`-hop chain with PNM.
///
/// A caught forwarding mole is re-flashed and behaves honestly afterwards;
/// a caught source mole stops injecting (the loop then ends).
pub fn iterative_cleanup(
    n: u16,
    mole_setup: &[(u16, AttackKind)],
    packets: usize,
    seed: u64,
) -> CleanupResult {
    let scenario = PathScenario::paper(n);
    let keys = Arc::new(scenario.keystore(1));
    let scheme = SchemeKind::Pnm.build(scenario.config());
    let source_id = NodeId(n);

    let mut active_moles: Vec<ForwardingMole> = mole_setup
        .iter()
        .map(|&(pos, attack)| {
            ForwardingMole::new(
                NodeId(pos),
                *keys.key(pos).unwrap(),
                AttackPlan::canonical(attack, &[0]),
            )
            .with_partner(source_id, *keys.key(source_id.raw()).unwrap())
        })
        .collect();
    let mut source = SourceMole::new(source_id, *keys.key(source_id.raw()).unwrap());
    let mut source_at_large = true;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut rounds = Vec::new();
    let max_rounds = mole_setup.len() + 2;

    for round in 1..=max_rounds {
        if !source_at_large {
            break;
        }
        let mut sink = SinkEngine::new(Arc::clone(&keys), SinkConfig::new(VerifyMode::Nested));
        for _ in 0..packets {
            let mut pkt = source.inject(&mut rng);
            let mut dropped = false;
            for hop in 0..n {
                if let Some(m) = active_moles.iter_mut().find(|m| m.id.raw() == hop) {
                    if m.process(&mut pkt, scheme.as_ref(), &mut rng) == MoleAction::Dropped {
                        dropped = true;
                        break;
                    }
                } else {
                    let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
                    scheme.mark(&ctx, &mut pkt, &mut rng);
                }
            }
            if !dropped {
                sink.ingest(&pkt);
            }
        }

        let localization = sink.localize();
        // The defender inspects the suspected one-hop neighborhood.
        let suspects: Vec<NodeId> = match &localization {
            Localization::MostUpstream(c) => vec![*c],
            Localization::Loop { junction, members } => {
                if junction.is_empty() {
                    members.clone()
                } else {
                    junction.clone()
                }
            }
            Localization::Ambiguous(c) => c.clone(),
            Localization::NoEvidence => Vec::new(),
        };
        let mut neighborhood: Vec<NodeId> = Vec::new();
        for s in &suspects {
            neighborhood.push(*s);
            if s.raw() == 0 {
                neighborhood.push(source_id);
            }
            if s.raw() > 0 && s.raw() <= n {
                neighborhood.push(NodeId(s.raw() - 1));
            }
            if s.raw() + 1 < n {
                neighborhood.push(NodeId(s.raw() + 1));
            }
        }

        // Physical inspection reveals which neighborhood members are moles.
        let mut caught = Vec::new();
        active_moles.retain(|m| {
            if neighborhood.contains(&m.id) {
                caught.push(m.id);
                false // re-flashed: becomes an honest forwarder
            } else {
                true
            }
        });
        if neighborhood.contains(&source_id) {
            caught.push(source_id);
            source_at_large = false;
        }
        let progress = !caught.is_empty();
        rounds.push(CatchRound {
            round,
            localization,
            caught,
        });
        if !progress {
            break; // no progress; stop rather than loop forever
        }
    }

    let mut remaining: Vec<NodeId> = active_moles.iter().map(|m| m.id).collect();
    if source_at_large {
        remaining.push(source_id);
    }
    CleanupResult { rounds, remaining }
}

/// The one-by-one table for the canonical two-forwarding-mole scenario.
pub fn one_by_one_table(packets: usize, seed: u64) -> Table {
    let setup = [
        (4u16, AttackKind::MarkAlter),
        (8u16, AttackKind::MarkRemoval),
    ];
    let result = iterative_cleanup(12, &setup, packets, seed);
    let mut t = Table::new(
        format!(
            "One-by-one cleanup: source mole + forwarding moles at v4 (altering) and v8 (removing), \
             12-hop chain, {packets} pkts/round"
        ),
        vec!["round", "localization", "caught"],
    );
    for r in &result.rounds {
        t.push_row(vec![
            r.round.to_string(),
            match &r.localization {
                Localization::MostUpstream(c) => format!("most upstream = {c}"),
                other => format!("{other:?}"),
            },
            if r.caught.is_empty() {
                "-".to_string()
            } else {
                r.caught
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_moles_caught_one_by_one() {
        let setup = [
            (4u16, AttackKind::MarkAlter),
            (8u16, AttackKind::MarkRemoval),
        ];
        let result = iterative_cleanup(12, &setup, 300, 11);
        assert!(
            result.remaining.is_empty(),
            "moles still at large: {:?} (rounds: {:?})",
            result.remaining,
            result.rounds
        );
        // Strictly one-by-one from downstream to upstream: v8 then v4 then S.
        let order: Vec<Vec<NodeId>> = result.rounds.iter().map(|r| r.caught.clone()).collect();
        assert_eq!(order.len(), 3, "{order:?}");
        assert_eq!(order[0], vec![NodeId(8)]);
        assert_eq!(order[1], vec![NodeId(4)]);
        assert_eq!(order[2], vec![NodeId(12)]);
    }

    #[test]
    fn single_mole_caught_in_two_rounds() {
        // One forwarding mole: caught first, then the source.
        let setup = [(5u16, AttackKind::MarkRemoval)];
        let result = iterative_cleanup(10, &setup, 300, 5);
        assert!(result.remaining.is_empty(), "{:?}", result.rounds);
        assert!(result.rounds.len() <= 3);
    }

    #[test]
    fn source_only_caught_in_one_round() {
        let result = iterative_cleanup(10, &[], 300, 9);
        assert!(result.remaining.is_empty());
        assert_eq!(result.rounds.len(), 1);
        assert_eq!(result.rounds[0].caught, vec![NodeId(10)]);
    }

    #[test]
    fn table_renders() {
        let t = one_by_one_table(200, 3);
        assert!(t.len() >= 2);
    }
}
