//! Chaos soak: drives the full PNM pipeline through the fault-injection
//! layer in `pnm-net` and measures how localization degrades.
//!
//! Each sweep point runs the canonical bogus-report stream down a marked
//! forwarding chain while the link layer injects Gilbert–Elliott bursty
//! loss, per-byte bit corruption, and per-hop duplication. Everything the
//! network emits — clean deliveries, corrupted-but-parseable deliveries,
//! and garbled frames that no longer decode — is fed to a single
//! [`SinkEngine`] through its total ingestion paths
//! ([`SinkEngine::ingest`] / [`SinkEngine::ingest_bytes`]) with duplicate
//! suppression enabled.
//!
//! The quantities of interest are the paper-level robustness claims:
//!
//! * **Precision** — does the (possibly widened) localization region
//!   still contain the true most-upstream forwarder? Loss and corruption
//!   thin the evidence, so the honest failure mode is a *wider region* or
//!   lower confidence, never a different node.
//! * **False implication** — the fraction of implicated nodes that are
//!   not on the true forwarding path. Nested MACs make fabricating
//!   evidence under random corruption computationally negligible, so this
//!   stays at zero across the whole sweep; corruption can only shorten
//!   chains, not redirect them.
//!
//! Every run is a pure function of its seed: the fault plan draws from
//! its own RNG stream, so runs are reproducible bit-for-bit and the
//! emitted JSON artifacts are deterministic.

use std::sync::Arc;

use rand::rngs::StdRng;

use pnm_core::{
    AnnotatedLocalization, Localization, MarkingScheme, NodeContext, ProbabilisticNestedMarking,
    SinkConfig, SinkCounters, SinkEngine, SinkOutcome, VerifyMode,
};
use pnm_crypto::KeyStore;
use pnm_net::{FaultPlan, GilbertElliott, Network, NodeDecision, SimReport, Topology};
use pnm_obs::Tracer;
use pnm_wire::{NodeId, Packet};

use crate::runner::bogus_packet;

/// One point in the fault-intensity sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosPoint {
    /// Target steady-state bursty loss probability per hop (Gilbert–
    /// Elliott, `[0, 1)`). Zero disables the burst channel.
    pub burst_loss: f64,
    /// Per-byte bit-flip probability applied to the encoded frame at each
    /// hop. Zero disables corruption.
    pub corrupt_byte: f64,
    /// Per-hop duplication probability. Zero disables duplication.
    pub duplicate: f64,
}

impl ChaosPoint {
    /// The fault-free origin of the sweep.
    pub fn clean() -> Self {
        ChaosPoint {
            burst_loss: 0.0,
            corrupt_byte: 0.0,
            duplicate: 0.0,
        }
    }

    /// The acceptance combo the soak must survive without a panic:
    /// 20% bursty loss, 1% per-byte corruption, 5% duplication.
    pub fn acceptance() -> Self {
        ChaosPoint {
            burst_loss: 0.20,
            corrupt_byte: 0.01,
            duplicate: 0.05,
        }
    }

    /// Short human-readable tag for tables and JSON.
    pub fn label(&self) -> String {
        format!(
            "loss={:.3} corrupt={:.4} dup={:.3}",
            self.burst_loss, self.corrupt_byte, self.duplicate
        )
    }
}

/// Scenario shape shared by every point of a sweep.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Forwarding-chain length (node 0 is the most-upstream forwarder).
    pub path_len: u16,
    /// Bogus packets injected per point.
    pub packets: usize,
    /// Injection interval in simulated microseconds.
    pub interval_us: u64,
    /// Mean burst length, in hops, for the Gilbert–Elliott bad state.
    pub mean_burst_hops: f64,
    /// Sink-side duplicate-suppression window capacity.
    pub dedup_capacity: usize,
    /// Minimum head support below which localization widens to a region.
    pub min_support: usize,
    /// Base seed; both the simulation and the fault plan derive from it.
    pub seed: u64,
}

impl ChaosConfig {
    /// The full-soak scenario.
    pub fn full() -> Self {
        ChaosConfig {
            path_len: 10,
            packets: 400,
            interval_us: 20_000,
            mean_burst_hops: 5.0,
            dedup_capacity: 1024,
            min_support: 2,
            seed: 2007,
        }
    }

    /// A CI-sized scenario: same shape, fewer packets.
    pub fn smoke() -> Self {
        ChaosConfig {
            packets: 120,
            ..Self::full()
        }
    }
}

/// Everything one sweep point produced.
#[derive(Clone, Debug)]
pub struct ChaosRun {
    /// The fault intensities of this point.
    pub point: ChaosPoint,
    /// Packets injected at the source.
    pub injected: usize,
    /// Parseable packets that reached the sink (clean or corrupted).
    pub delivered: usize,
    /// Undecodable frames that reached the sink.
    pub garbled: usize,
    /// The network's per-fault counters.
    pub faults: pnm_net::FaultCounters,
    /// The sink engine's pipeline counters after the run.
    pub counters: SinkCounters,
    /// The annotated localization at end of run.
    pub annotated: AnnotatedLocalization,
    /// Nodes the localization implicates (most-upstream candidates).
    pub implicated: Vec<u16>,
    /// Whether the sink unequivocally identified the true node 0.
    pub identified: bool,
    /// Whether the implicated region contains the true node 0.
    pub contains_true_source: bool,
    /// Fraction of implicated nodes that are off the true path.
    pub false_implication_rate: f64,
}

/// Builds the fault plan for a sweep point (its RNG stream is derived
/// from the scenario seed, independent of the simulation RNG).
pub fn fault_plan(cfg: &ChaosConfig, point: &ChaosPoint) -> FaultPlan {
    let mut plan = FaultPlan::new(cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    if point.burst_loss > 0.0 {
        plan = plan.with_burst_loss(GilbertElliott::bursty(
            point.burst_loss,
            cfg.mean_burst_hops,
        ));
    }
    if point.corrupt_byte > 0.0 {
        plan = plan.with_corruption(point.corrupt_byte);
    }
    if point.duplicate > 0.0 {
        plan = plan.with_duplication(point.duplicate);
    }
    plan
}

/// Runs the marked bogus stream through the faulty network and returns
/// the keystore plus the raw simulation report.
pub fn simulate_faulty_path(cfg: &ChaosConfig, point: &ChaosPoint) -> (Arc<KeyStore>, SimReport) {
    simulate_faulty_path_traced(cfg, point, &Tracer::noop())
}

/// [`simulate_faulty_path`] with a tracer attached to the network's fault
/// layer: every injected fault emits a structured event. Tracing is
/// observation only — the simulation's RNG streams, deliveries, and fault
/// counters are bit-identical with or without it.
pub fn simulate_faulty_path_traced(
    cfg: &ChaosConfig,
    point: &ChaosPoint,
    tracer: &Tracer,
) -> (Arc<KeyStore>, SimReport) {
    let keys = Arc::new(KeyStore::derive_from_master(b"chaos", cfg.path_len));
    let scheme = ProbabilisticNestedMarking::paper_default(cfg.path_len as usize);
    let contexts: Vec<NodeContext> = (0..cfg.path_len)
        .map(|i| NodeContext::new(NodeId(i), *keys.key(i).expect("provisioned")))
        .collect();
    let net = Network::new(Topology::chain(cfg.path_len, 10.0))
        .with_faults(fault_plan(cfg, point))
        .with_tracer(tracer.clone());
    let mut handler = |node: u16, pkt: &mut Packet, _now: u64, rng: &mut StdRng| {
        scheme.mark(&contexts[node as usize], pkt, rng);
        NodeDecision::Forward
    };
    let report = net.simulate_stream(
        0,
        cfg.packets,
        cfg.interval_us,
        |seq| bogus_packet(seq, cfg.seed),
        &mut handler,
        cfg.seed,
    );
    (keys, report)
}

/// The sink configuration a chaos run ingests under: duplicate
/// suppression on, support-annotated localization.
pub fn chaos_sink_config(cfg: &ChaosConfig) -> SinkConfig {
    SinkConfig::new(VerifyMode::Nested)
        .dedup(cfg.dedup_capacity)
        .min_localization_support(cfg.min_support)
}

/// Feeds everything the network emitted — deliveries and garbled frames,
/// interleaved in arrival order — to a fresh engine through the total
/// ingestion paths. Returns the engine and the per-arrival outcomes
/// (deliveries only; garbled frames are counted rejections by
/// construction).
pub fn ingest_sim_report(
    cfg: &ChaosConfig,
    keys: &Arc<KeyStore>,
    sim: &SimReport,
) -> (SinkEngine, Vec<SinkOutcome>) {
    ingest_sim_report_traced(cfg, keys, sim, &Tracer::noop())
}

/// [`ingest_sim_report`] with a tracer attached to the sink engine: every
/// pipeline stage emits a span. Verdicts, counters, and localization are
/// unchanged by the instrumentation.
pub fn ingest_sim_report_traced(
    cfg: &ChaosConfig,
    keys: &Arc<KeyStore>,
    sim: &SimReport,
    tracer: &Tracer,
) -> (SinkEngine, Vec<SinkOutcome>) {
    let mut engine = SinkEngine::new(
        Arc::clone(keys),
        chaos_sink_config(cfg).tracer(tracer.clone()),
    );
    let mut outcomes = Vec::with_capacity(sim.deliveries.len());
    let (mut d, mut g) = (0, 0);
    while d < sim.deliveries.len() || g < sim.garbled.len() {
        let take_garbled = g < sim.garbled.len()
            && (d >= sim.deliveries.len() || sim.garbled[g].time_us < sim.deliveries[d].time_us);
        if take_garbled {
            engine.ingest_bytes(&sim.garbled[g].bytes);
            g += 1;
        } else {
            outcomes.push(engine.ingest(&sim.deliveries[d].packet));
            d += 1;
        }
    }
    (engine, outcomes)
}

/// The nodes a localization verdict implicates as most-upstream
/// candidates (empty for no evidence).
pub fn implicated_nodes(loc: &Localization) -> Vec<u16> {
    let mut nodes: Vec<u16> = match loc {
        Localization::NoEvidence => Vec::new(),
        Localization::MostUpstream(n) => vec![n.raw()],
        Localization::Ambiguous(candidates) => candidates.iter().map(|n| n.raw()).collect(),
        Localization::Loop { members, junction } => members
            .iter()
            .chain(junction.iter())
            .map(|n| n.raw())
            .collect(),
    };
    nodes.sort_unstable();
    nodes.dedup();
    nodes
}

/// Runs one sweep point end to end and computes the degradation metrics.
pub fn run_point(cfg: &ChaosConfig, point: &ChaosPoint) -> ChaosRun {
    run_point_traced(cfg, point, &Tracer::noop())
}

/// [`run_point`] with spans and fault events flowing to `tracer`. The
/// returned [`ChaosRun`] is bit-identical to the untraced run — timing
/// never enters the degradation metrics, so the JSON artifacts stay a
/// pure function of the seed.
pub fn run_point_traced(cfg: &ChaosConfig, point: &ChaosPoint, tracer: &Tracer) -> ChaosRun {
    let (keys, sim) = simulate_faulty_path_traced(cfg, point, tracer);
    let (engine, _outcomes) = ingest_sim_report_traced(cfg, &keys, &sim, tracer);

    let annotated = engine.localize_annotated();
    let implicated = implicated_nodes(&annotated.localization);
    let off_path = implicated.iter().filter(|&&n| n >= cfg.path_len).count();
    let false_implication_rate = off_path as f64 / implicated.len().max(1) as f64;

    ChaosRun {
        point: *point,
        injected: cfg.packets,
        delivered: sim.deliveries.len(),
        garbled: sim.garbled.len(),
        faults: sim.faults,
        counters: engine.counters(),
        identified: engine.unequivocal_source() == Some(NodeId(0)),
        contains_true_source: implicated.contains(&0),
        false_implication_rate,
        implicated,
        annotated,
    }
}

/// One kill-and-recover measurement: the chaos arrival stream is cut at
/// `kill_fraction`, all process state is discarded, the evidence log's
/// tail is damaged the way a SIGKILL mid-append leaves it, and a fresh
/// engine is rebuilt from the log before ingesting the rest of the
/// stream. See [`run_recovery_point`].
#[derive(Clone, Debug)]
pub struct RecoveryRun {
    /// The fault intensities of this point.
    pub point: ChaosPoint,
    /// Fraction of the arrival stream ingested before the kill.
    pub kill_fraction: f64,
    /// Total arrivals (deliveries + garbled frames) in the stream.
    pub arrivals: usize,
    /// Arrivals ingested before the kill.
    pub killed_after: usize,
    /// Log records the recovery replayed.
    pub records_replayed: usize,
    /// Damaged/torn frames the replay counted and skipped.
    pub rejected_frames: usize,
    /// Packets of evidence restored from the log (the pre-kill count).
    pub packets_restored: usize,
    /// Whether the recovered-and-continued engine's localization and
    /// unequivocal-source verdicts equal the uninterrupted run's.
    pub verdict_identical: bool,
    /// Whether the full evidence encoding is byte-identical to the
    /// uninterrupted run. With duplication faults this can honestly be
    /// `false`: the dedup window is transient state, not evidence, so a
    /// duplicate straddling the kill is re-admitted and inflates support
    /// counts — it never changes which nodes are implicated.
    pub evidence_identical: bool,
    /// Whether the recovered run's implicated region contains node 0.
    pub contains_true_source: bool,
    /// Off-path fraction of the recovered run's implicated set.
    pub false_implication_rate: f64,
}

/// Runs one kill-and-recover point end to end.
///
/// The kill is simulated faithfully: nothing in-memory survives, and the
/// on-disk log gets a torn garbage tail (the bytes a process killed
/// mid-`write` leaves behind), which recovery must count and discard.
/// Determinism note: every recorded field is a pure function of the
/// seed — replay wall-clock never enters the artifact.
pub fn run_recovery_point(
    cfg: &ChaosConfig,
    point: &ChaosPoint,
    kill_fraction: f64,
) -> RecoveryRun {
    use pnm_core::store::{EvidenceStore, LogStore};
    use std::sync::atomic::{AtomicUsize, Ordering};

    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let path = std::env::temp_dir().join(format!(
        "pnm-chaos-recovery-{}-{}.log",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));

    let (keys, sim) = simulate_faulty_path(cfg, point);

    // The arrival stream, deliveries and garbled frames interleaved in
    // arrival order — the same merge `ingest_sim_report` performs.
    enum Arrival<'a> {
        Delivered(&'a Packet),
        Garbled(&'a [u8]),
    }
    let mut arrivals: Vec<Arrival<'_>> = Vec::with_capacity(sim.deliveries.len());
    let (mut d, mut g) = (0, 0);
    while d < sim.deliveries.len() || g < sim.garbled.len() {
        let take_garbled = g < sim.garbled.len()
            && (d >= sim.deliveries.len() || sim.garbled[g].time_us < sim.deliveries[d].time_us);
        if take_garbled {
            arrivals.push(Arrival::Garbled(&sim.garbled[g].bytes));
            g += 1;
        } else {
            arrivals.push(Arrival::Delivered(&sim.deliveries[d].packet));
            d += 1;
        }
    }
    let feed = |engine: &mut SinkEngine, a: &Arrival<'_>| match a {
        Arrival::Delivered(pkt) => {
            engine.ingest(pkt);
        }
        Arrival::Garbled(bytes) => {
            engine.ingest_bytes(bytes);
        }
    };

    // The run that is never interrupted.
    let mut uninterrupted = SinkEngine::new(Arc::clone(&keys), chaos_sink_config(cfg));
    for a in &arrivals {
        feed(&mut uninterrupted, a);
    }

    // The killed run: log-backed, checkpointing every arrival.
    let killed_after = ((arrivals.len() as f64) * kill_fraction) as usize;
    let store = Arc::new(LogStore::open(&path).expect("open chaos recovery log"));
    let mut engine = SinkEngine::new(Arc::clone(&keys), chaos_sink_config(cfg));
    engine.attach_store(Arc::clone(&store) as Arc<dyn EvidenceStore>, 0);
    for a in &arrivals[..killed_after] {
        feed(&mut engine, a);
        engine.checkpoint_to_store().expect("checkpoint");
    }
    drop(engine);
    drop(store);
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("reopen log for tail damage");
        f.write_all(&[0x55; 9]).expect("write torn tail");
    }

    // Recovery: reopen (truncating the torn tail), replay, continue.
    let store = Arc::new(LogStore::open(&path).expect("reopen damaged log"));
    let replay = store.replay().expect("replay chaos log");
    let restored = replay.merged();
    let mut recovered = SinkEngine::new(Arc::clone(&keys), chaos_sink_config(cfg));
    recovered.install_evidence(&restored);
    recovered.attach_store(Arc::clone(&store) as Arc<dyn EvidenceStore>, 0);
    for a in &arrivals[killed_after..] {
        feed(&mut recovered, a);
        recovered.checkpoint_to_store().expect("checkpoint");
    }
    std::fs::remove_file(&path).ok();

    let annotated = recovered.localize_annotated();
    let implicated = implicated_nodes(&annotated.localization);
    let off_path = implicated.iter().filter(|&&n| n >= cfg.path_len).count();

    RecoveryRun {
        point: *point,
        kill_fraction,
        arrivals: arrivals.len(),
        killed_after,
        records_replayed: replay.records,
        rejected_frames: replay.rejected_frames,
        packets_restored: restored.counters.packets,
        verdict_identical: recovered.localize() == uninterrupted.localize()
            && recovered.unequivocal_source() == uninterrupted.unequivocal_source(),
        evidence_identical: recovered.evidence().to_bytes() == uninterrupted.evidence().to_bytes(),
        contains_true_source: implicated.contains(&0),
        false_implication_rate: off_path as f64 / implicated.len().max(1) as f64,
    }
}

/// The kill-and-recover sweep: clean and acceptance fault intensities,
/// killed at one (smoke) or three (full) points of the stream.
pub fn recovery_sweep(smoke: bool) -> Vec<(ChaosPoint, f64)> {
    let fractions: &[f64] = if smoke { &[0.5] } else { &[0.25, 0.5, 0.75] };
    let mut sweep = Vec::new();
    for &f in fractions {
        sweep.push((ChaosPoint::clean(), f));
        sweep.push((ChaosPoint::acceptance(), f));
    }
    sweep
}

/// The fault-intensity sweep: one axis at a time from the clean origin,
/// plus combined-stress points including [`ChaosPoint::acceptance`].
pub fn sweep_points(smoke: bool) -> Vec<ChaosPoint> {
    let clean = ChaosPoint::clean();
    if smoke {
        return vec![
            clean,
            ChaosPoint {
                burst_loss: 0.20,
                ..clean
            },
            ChaosPoint {
                corrupt_byte: 0.01,
                ..clean
            },
            ChaosPoint {
                duplicate: 0.05,
                ..clean
            },
            ChaosPoint::acceptance(),
        ];
    }
    let mut points = vec![clean];
    for loss in [0.05, 0.10, 0.20, 0.30, 0.40] {
        points.push(ChaosPoint {
            burst_loss: loss,
            ..clean
        });
    }
    for corrupt in [0.002, 0.005, 0.01, 0.02, 0.04] {
        points.push(ChaosPoint {
            corrupt_byte: corrupt,
            ..clean
        });
    }
    for dup in [0.02, 0.05, 0.10, 0.20] {
        points.push(ChaosPoint {
            duplicate: dup,
            ..clean
        });
    }
    points.push(ChaosPoint::acceptance());
    points.push(ChaosPoint {
        burst_loss: 0.30,
        corrupt_byte: 0.02,
        duplicate: 0.10,
    });
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(super) fn small() -> ChaosConfig {
        ChaosConfig {
            path_len: 6,
            packets: 80,
            ..ChaosConfig::smoke()
        }
    }

    #[test]
    fn clean_point_injects_no_faults_and_identifies() {
        let run = run_point(&ChaosConfig::smoke(), &ChaosPoint::clean());
        assert_eq!(run.faults.total(), 0);
        assert_eq!(run.delivered, run.injected);
        assert_eq!(run.garbled, 0);
        assert!(run.identified);
        assert!(run.contains_true_source);
        assert_eq!(run.false_implication_rate, 0.0);
    }

    #[test]
    fn acceptance_point_survives_and_degrades_gracefully() {
        let cfg = ChaosConfig::smoke();
        let run = run_point(&cfg, &ChaosPoint::acceptance());
        // Every fault class actually fired.
        assert!(run.faults.burst_losses > 0);
        assert!(run.faults.corrupted > 0);
        assert!(run.faults.duplicates > 0);
        // Degradation is honest: with evidence thinned this hard the sink
        // reports *less* (a region, or nothing) — never an off-path node.
        assert_eq!(run.false_implication_rate, 0.0);
        assert!(run.implicated.iter().all(|&n| n < cfg.path_len));
        // The engine ingested every arrival without panicking, and its
        // accounting balances: each delivery or garbled frame is counted.
        assert_eq!(run.counters.packets, run.delivered + run.garbled);
        assert_eq!(run.counters.malformed, run.garbled);
    }

    #[test]
    fn pure_burst_loss_thins_evidence_but_keeps_the_answer() {
        let run = run_point(
            &ChaosConfig::smoke(),
            &ChaosPoint {
                burst_loss: 0.20,
                ..ChaosPoint::clean()
            },
        );
        // Compounded per-hop loss costs most deliveries...
        assert!(run.delivered < run.injected);
        assert!(run.faults.burst_losses > 0);
        // ...yet surviving chains still point at the true source: loss
        // shortens evidence, it cannot redirect it.
        assert!(run.contains_true_source, "implicated {:?}", run.implicated);
        assert_eq!(run.false_implication_rate, 0.0);
        assert!(run.annotated.chains > 0);
    }

    #[test]
    fn runs_are_deterministic_in_seed() {
        let cfg = small();
        let a = run_point(&cfg, &ChaosPoint::acceptance());
        let b = run_point(&cfg, &ChaosPoint::acceptance());
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.garbled, b.garbled);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.annotated, b.annotated);
        assert_eq!(a.implicated, b.implicated);
    }

    #[test]
    fn traced_run_matches_untraced_run() {
        let cfg = small();
        let plain = run_point(&cfg, &ChaosPoint::acceptance());
        let (tracer, ring) = Tracer::ring(1 << 16);
        let traced = run_point_traced(&cfg, &ChaosPoint::acceptance(), &tracer);
        assert_eq!(plain.faults, traced.faults);
        assert_eq!(plain.counters, traced.counters);
        assert_eq!(plain.annotated, traced.annotated);
        assert_eq!(plain.implicated, traced.implicated);
        // The trace saw both the fault layer and the sink pipeline.
        // Untraced ingest records packet-level spans only — per-stage
        // detail is reserved for packets carrying a trace context.
        let events = ring.events();
        assert!(events.iter().any(|e| e.name.starts_with("net.fault.")));
        assert!(events.iter().any(|e| e.name == "sink.ingest"));
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn clean_kill_and_recover_is_equivalent() {
        let run = run_recovery_point(&small(), &ChaosPoint::clean(), 0.5);
        // Without duplication faults the dedup-window caveat is moot:
        // recovery is byte-exact, not just verdict-exact.
        assert!(run.verdict_identical);
        assert!(run.evidence_identical);
        assert!(run.contains_true_source);
        assert_eq!(run.false_implication_rate, 0.0);
        assert!(run.rejected_frames >= 1, "the torn tail must be counted");
        assert_eq!(run.packets_restored, run.killed_after);
        assert_eq!(run.records_replayed, run.killed_after);
    }

    #[test]
    fn acceptance_kill_and_recover_keeps_verdicts() {
        let run = run_recovery_point(&small(), &ChaosPoint::acceptance(), 0.5);
        // The crash must not change the answer. Whether the (honestly
        // degraded) answer still contains the true source is a property
        // of the fault intensity, not of recovery — so it is recorded,
        // not asserted here.
        assert!(run.verdict_identical);
        assert_eq!(run.false_implication_rate, 0.0);
        assert!(run.records_replayed > 0);
    }

    #[test]
    fn sweep_contains_the_acceptance_combo() {
        for smoke in [true, false] {
            assert!(sweep_points(smoke)
                .iter()
                .any(|p| *p == ChaosPoint::acceptance()));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Verdicts on surviving packets are byte-identical to a
        /// fault-free engine fed the same surviving set: the chaos-fed
        /// engine (dedup on, garbled frames interleaved) and a clean
        /// engine ingesting exactly the accepted survivors agree packet
        /// for packet, and on the final localization.
        #[test]
        fn chaos_verdicts_match_clean_engine_on_survivors(
            burst_loss in 0.0f64..0.45,
            corrupt_byte in 0.0f64..0.03,
            duplicate in 0.0f64..0.20,
            seed in any::<u64>(),
        ) {
            let cfg = ChaosConfig { seed, ..super::tests::small() };
            let point = ChaosPoint { burst_loss, corrupt_byte, duplicate };
            let (keys, sim) = simulate_faulty_path(&cfg, &point);

            let mut chaos = SinkEngine::new(Arc::clone(&keys), chaos_sink_config(&cfg));
            let mut clean = SinkEngine::new(
                Arc::clone(&keys),
                SinkConfig::new(VerifyMode::Nested),
            );
            let (mut d, mut g) = (0, 0);
            while d < sim.deliveries.len() || g < sim.garbled.len() {
                let take_garbled = g < sim.garbled.len()
                    && (d >= sim.deliveries.len()
                        || sim.garbled[g].time_us < sim.deliveries[d].time_us);
                if take_garbled {
                    // Garbled frames never decode, so they are counted
                    // rejections that leave the evidence untouched.
                    let out = chaos.ingest_bytes(&sim.garbled[g].bytes);
                    prop_assert!(out.rejected());
                    g += 1;
                } else {
                    let pkt = &sim.deliveries[d].packet;
                    let out = chaos.ingest(pkt);
                    if !out.rejected() {
                        // A surviving (non-duplicate) packet: the clean
                        // engine must reach the identical verdict.
                        let want = clean.ingest(pkt);
                        prop_assert_eq!(&out.verdict, &want.verdict);
                        prop_assert_eq!(&out.chain, &want.chain);
                    }
                    d += 1;
                }
            }
            // Same survivors, same evidence: localization agrees too.
            prop_assert_eq!(chaos.localize(), clean.localize());
            prop_assert_eq!(chaos.unequivocal_source(), clean.unequivocal_source());
            prop_assert_eq!(chaos.counters().malformed as usize, sim.garbled.len());
        }
    }
}
