//! Traceback under routing dynamics (§7 "Impact of Routing Dynamics").
//!
//! The paper: "even if routing dynamics do occur during the traceback
//! period, PNM can still locate the moles as long as the relative upstream
//! relation among nodes remains the same." This experiment injects node
//! failures mid-traceback on a grid (where routes heal around the failed
//! node), verifies the §7 precondition with
//! [`relative_order_preserved`], and
//! measures whether and when the sink still identifies the mole's first
//! forwarder.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use pnm_core::{
    MarkingScheme, NodeContext, ProbabilisticNestedMarking, SinkConfig, SinkEngine, VerifyMode,
};
use pnm_crypto::KeyStore;
use pnm_net::{heal_tree, relative_order_preserved, FailureSet, Network, Topology};
use pnm_wire::NodeId;

use crate::runner::bogus_packet;
use crate::table::Table;

/// Result of one routing-dynamics run.
#[derive(Clone, Debug)]
pub struct DynamicsRun {
    /// Packets between route changes (`None` = stable routes).
    pub churn_interval: Option<usize>,
    /// Route changes that occurred.
    pub churn_events: usize,
    /// Route changes that preserved the §7 relative-order precondition.
    pub order_preserving_churns: usize,
    /// Whether the sink identified the mole's original first forwarder.
    pub identified: bool,
    /// Packets ingested when identification settled.
    pub packets_to_identify: Option<usize>,
}

/// Runs traceback on an `8×8` grid while failing one on-path node every
/// `churn_interval` packets (routes heal around it).
pub fn run_with_churn(packets: usize, churn_interval: Option<usize>, seed: u64) -> DynamicsRun {
    let topo = Topology::grid(8, 8, 10.0);
    let net = Network::new(topo.clone());
    let n_nodes = topo.len() as u16;
    let keys = Arc::new(KeyStore::derive_from_master(b"dynamics", n_nodes));

    let mole = (0..n_nodes)
        .max_by_key(|&i| net.routing().hops_to_sink(i).unwrap_or(0))
        .expect("nodes");
    let mut failures = FailureSet::none();
    let mut routing = heal_tree(&topo, &failures);
    let original_path = routing.path_to_sink(mole).expect("routed");
    // The mole never marks: its first forwarder is the expected
    // most-upstream marker (one-hop neighborhood guarantee).
    let mole_head = NodeId(original_path[1]);
    let scheme = ProbabilisticNestedMarking::paper_default(original_path.len().max(3));

    let mut sink = SinkEngine::new(Arc::clone(&keys), SinkConfig::new(VerifyMode::Nested));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut run = DynamicsRun {
        churn_interval,
        churn_events: 0,
        order_preserving_churns: 0,
        identified: false,
        packets_to_identify: None,
    };

    let mut status: Vec<Option<NodeId>> = Vec::new();
    for seq in 0..packets {
        // Periodic churn: fail the node after the mole's current first hop
        // (an interior on-path node the grid can route around).
        if let Some(interval) = churn_interval {
            if seq > 0 && seq % interval == 0 {
                if let Some(path) = routing.path_to_sink(mole) {
                    // Pick an interior node, not the head (keep the head so
                    // ground truth stays meaningful).
                    if path.len() >= 4 {
                        let victim = path[path.len() / 2];
                        let before = routing.clone();
                        failures.fail(victim);
                        let healed = heal_tree(&topo, &failures);
                        if healed.path_to_sink(mole).is_some() {
                            run.churn_events += 1;
                            if relative_order_preserved(&before, &healed, mole) {
                                run.order_preserving_churns += 1;
                            }
                            routing = healed;
                        } else {
                            // Would disconnect the mole; revive and skip.
                            failures.revive(victim);
                        }
                    }
                }
            }
        }

        let Some(path) = routing.path_to_sink(mole) else {
            continue;
        };
        let mut pkt = bogus_packet(seq as u64, seed);
        for &hop in &path {
            if hop == mole {
                continue; // silent mole
            }
            let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
            scheme.mark(&ctx, &mut pkt, &mut rng);
        }
        sink.ingest(&pkt);
        status.push(sink.unequivocal_source());
    }

    if status.last().copied().flatten() == Some(mole_head) {
        run.identified = true;
        let mut idx = status.len();
        while idx > 0 && status[idx - 1] == Some(mole_head) {
            idx -= 1;
        }
        run.packets_to_identify = Some(idx + 1);
    }
    run
}

/// The routing-dynamics table: churn-interval sweep.
pub fn dynamics_table(packets: usize, seed: u64) -> Table {
    let mut t = Table::new(
        format!(
            "Routing dynamics: traceback under mid-run route healing ({packets} pkts, grid 8x8)"
        ),
        vec![
            "churn interval",
            "route changes",
            "order-preserving",
            "identified",
            "pkts to identify",
        ],
    );
    for interval in [None, Some(200), Some(100), Some(50)] {
        let r = run_with_churn(packets, interval, seed);
        t.push_row(vec![
            interval.map_or("stable".into(), |i| format!("every {i}")),
            r.churn_events.to_string(),
            format!("{}/{}", r.order_preserving_churns, r.churn_events),
            if r.identified { "yes" } else { "no" }.to_string(),
            r.packets_to_identify.map_or("-".into(), |p| p.to_string()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_routes_identify() {
        let r = run_with_churn(300, None, 3);
        assert_eq!(r.churn_events, 0);
        assert!(r.identified, "{r:?}");
    }

    #[test]
    fn churn_with_preserved_order_still_identifies() {
        let r = run_with_churn(400, Some(150), 3);
        assert!(r.churn_events >= 1, "{r:?}");
        // The §7 claim: identification survives order-preserving healing.
        if r.order_preserving_churns == r.churn_events {
            assert!(r.identified, "{r:?}");
        }
    }

    #[test]
    fn dynamics_table_shape() {
        let t = dynamics_table(200, 5);
        assert_eq!(t.len(), 4);
        assert_eq!(t.rows[0][0], "stable");
    }
}
