//! Scenario specification files — shareable, versionable experiment
//! descriptors.
//!
//! A tiny INI-style format (no external parser dependencies) describing a
//! path scenario plus an attack, e.g.:
//!
//! ```text
//! # 10-hop chain, selective-dropping mole mid-path
//! [path]
//! len = 10
//! target_marks = 3
//! mac_width = 8
//!
//! [attack]
//! kind = selective-dropping
//! mole_position = 5
//! packets = 300
//! seed = 7
//! ```
//!
//! `trace-demo --spec FILE` runs one, and [`ScenarioSpec::to_spec_string`]
//! writes one back out, so every experiment in this repo can be pinned to
//! a reviewable text artifact.

use core::fmt;

use pnm_adversary::AttackKind;

use crate::attack_matrix::AttackScenario;
use crate::scenario::PathScenario;

/// A parsed scenario specification.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// The forwarding-path parameters.
    pub path: PathScenario,
    /// The attack cell parameters.
    pub attack: AttackScenario,
    /// The attack class the forwarding mole runs.
    pub kind: AttackKind,
}

/// Errors from parsing a spec file.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecError {
    /// A line was not a comment, section header, or `key = value`.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
    /// A key appeared outside any `[section]`.
    KeyOutsideSection {
        /// 1-based line number.
        line: usize,
    },
    /// An unknown section name.
    UnknownSection {
        /// The offending name.
        name: String,
    },
    /// An unknown key within a section.
    UnknownKey {
        /// `section.key` path.
        path: String,
    },
    /// A value failed to parse.
    BadValue {
        /// `section.key` path.
        path: String,
        /// The offending value.
        value: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Malformed { line } => write!(f, "malformed line {line}"),
            SpecError::KeyOutsideSection { line } => {
                write!(f, "key outside any [section] at line {line}")
            }
            SpecError::UnknownSection { name } => write!(f, "unknown section [{name}]"),
            SpecError::UnknownKey { path } => write!(f, "unknown key {path}"),
            SpecError::BadValue { path, value } => {
                write!(f, "bad value {value:?} for {path}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            path: PathScenario::paper(10),
            attack: AttackScenario::default_cell(7),
            kind: AttackKind::SelectiveDrop,
        }
    }
}

impl ScenarioSpec {
    /// Parses a spec document. Unspecified keys keep their defaults
    /// (the paper's canonical cell).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] on syntax errors, unknown sections/keys, or
    /// unparseable values.
    pub fn parse(input: &str) -> Result<Self, SpecError> {
        let mut spec = ScenarioSpec::default();
        let mut section: Option<String> = None;

        for (idx, raw) in input.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let name = name.trim().to_lowercase();
                if name != "path" && name != "attack" {
                    return Err(SpecError::UnknownSection { name });
                }
                section = Some(name);
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(SpecError::Malformed { line: line_no });
            };
            let key = key.trim().to_lowercase();
            let value = value.trim().to_string();
            let Some(section) = section.as_deref() else {
                return Err(SpecError::KeyOutsideSection { line: line_no });
            };
            let path = format!("{section}.{key}");
            let bad = || SpecError::BadValue {
                path: path.clone(),
                value: value.clone(),
            };
            match (section, key.as_str()) {
                ("path", "len") => {
                    spec.path.path_len = value.parse().map_err(|_| bad())?;
                    spec.attack.path_len = spec.path.path_len;
                }
                ("path", "target_marks") => {
                    spec.path.target_marks = value.parse().map_err(|_| bad())?;
                }
                ("path", "mac_width") => {
                    spec.path.mac_width = value.parse().map_err(|_| bad())?;
                }
                ("attack", "kind") => {
                    spec.kind = AttackKind::all()
                        .into_iter()
                        .find(|k| k.as_str() == value)
                        .ok_or_else(bad)?;
                }
                ("attack", "mole_position") => {
                    spec.attack.mole_position = value.parse().map_err(|_| bad())?;
                }
                ("attack", "packets") => {
                    spec.attack.packets = value.parse().map_err(|_| bad())?;
                }
                ("attack", "seed") => {
                    spec.attack.seed = value.parse().map_err(|_| bad())?;
                }
                _ => return Err(SpecError::UnknownKey { path }),
            }
        }
        Ok(spec)
    }

    /// Emits the spec in the same format [`ScenarioSpec::parse`] reads.
    pub fn to_spec_string(&self) -> String {
        format!(
            "# pnm scenario spec\n[path]\nlen = {}\ntarget_marks = {}\nmac_width = {}\n\n\
             [attack]\nkind = {}\nmole_position = {}\npackets = {}\nseed = {}\n",
            self.path.path_len,
            self.path.target_marks,
            self.path.mac_width,
            self.kind,
            self.attack.mole_position,
            self.attack.packets,
            self.attack.seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_document() {
        let doc = "\
# comment
[path]
len = 14
target_marks = 4
mac_width = 6

[attack]
kind = mark-removal   # trailing comment
mole_position = 7
packets = 250
seed = 99
";
        let spec = ScenarioSpec::parse(doc).unwrap();
        assert_eq!(spec.path.path_len, 14);
        assert_eq!(spec.attack.path_len, 14, "attack inherits path length");
        assert_eq!(spec.path.target_marks, 4.0);
        assert_eq!(spec.path.mac_width, 6);
        assert_eq!(spec.kind, AttackKind::MarkRemoval);
        assert_eq!(spec.attack.mole_position, 7);
        assert_eq!(spec.attack.packets, 250);
        assert_eq!(spec.attack.seed, 99);
    }

    #[test]
    fn defaults_fill_missing_keys() {
        let spec = ScenarioSpec::parse("[path]\nlen = 20\n").unwrap();
        assert_eq!(spec.path.path_len, 20);
        assert_eq!(spec.path.target_marks, 3.0);
        assert_eq!(spec.kind, AttackKind::SelectiveDrop);
    }

    #[test]
    fn empty_document_is_the_default() {
        assert_eq!(ScenarioSpec::parse("").unwrap(), ScenarioSpec::default());
        assert_eq!(
            ScenarioSpec::parse("# only comments\n\n").unwrap(),
            ScenarioSpec::default()
        );
    }

    #[test]
    fn round_trip() {
        let mut spec = ScenarioSpec::default();
        spec.path.path_len = 12;
        spec.attack.path_len = 12;
        spec.kind = AttackKind::IdentitySwap;
        spec.attack.seed = 5;
        let reparsed = ScenarioSpec::parse(&spec.to_spec_string()).unwrap();
        assert_eq!(reparsed.path, spec.path);
        assert_eq!(reparsed.kind, spec.kind);
        assert_eq!(reparsed.attack.seed, spec.attack.seed);
    }

    #[test]
    fn errors_are_specific() {
        assert!(matches!(
            ScenarioSpec::parse("len = 10").unwrap_err(),
            SpecError::KeyOutsideSection { line: 1 }
        ));
        assert!(matches!(
            ScenarioSpec::parse("[bogus]").unwrap_err(),
            SpecError::UnknownSection { .. }
        ));
        assert!(matches!(
            ScenarioSpec::parse("[path]\nwat = 1").unwrap_err(),
            SpecError::UnknownKey { .. }
        ));
        assert!(matches!(
            ScenarioSpec::parse("[path]\nlen = ten").unwrap_err(),
            SpecError::BadValue { .. }
        ));
        assert!(matches!(
            ScenarioSpec::parse("[path]\nnonsense without equals").unwrap_err(),
            SpecError::Malformed { line: 2 }
        ));
    }

    #[test]
    fn all_attack_kinds_round_trip() {
        for kind in AttackKind::all() {
            let doc = format!("[attack]\nkind = {kind}\n");
            assert_eq!(ScenarioSpec::parse(&doc).unwrap().kind, kind);
        }
    }
}
