//! The scheme × attack security matrix (reproducing §3 and §5's analysis
//! as an experiment).
//!
//! For every marking scheme and every colluding attack from the §2.2
//! taxonomy, a chain scenario is simulated: source mole `S` (one-hop
//! upstream of V1) injects bogus reports; forwarding mole `X` sits
//! mid-path executing the attack. After the traffic budget, the sink's
//! localization is classified:
//!
//! - **Secure** — the suspected neighborhood contains a mole (the paper's
//!   one-hop-precision guarantee).
//! - **Misled** — the sink confidently points at an innocent node with no
//!   mole in its one-hop neighborhood (the attacker won).
//! - **Inconclusive** — the sink could not narrow the suspects (and not
//!   every candidate is mole-adjacent).
//! - **Starved** — no attack packets reached the sink at all (a mole that
//!   drops everything silences the attack itself — footnote 2 of the
//!   paper: marking is then out of scope).

use core::fmt;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};
use serde::{Deserialize, Serialize};

use pnm_adversary::{AttackKind, AttackPlan, ForwardingMole, MoleAction, SourceMole};
use pnm_core::{Localization, NodeContext, SinkConfig, SinkEngine};
use pnm_wire::NodeId;

use crate::scenario::{PathScenario, SchemeKind};
use crate::table::Table;

/// Classification of a traceback outcome under attack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// A mole lies within the suspected one-hop neighborhood.
    Secure,
    /// The sink confidently suspects an innocent, non-mole-adjacent node.
    Misled,
    /// The sink could not narrow the suspect set.
    Inconclusive,
    /// No packets reached the sink.
    Starved,
}

impl Outcome {
    /// Short cell label for the matrix.
    pub fn as_str(&self) -> &'static str {
        match self {
            Outcome::Secure => "secure",
            Outcome::Misled => "MISLED",
            Outcome::Inconclusive => "inconclusive",
            Outcome::Starved => "starved",
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Configuration for one attack-matrix cell evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackScenario {
    /// Forwarders on the path (V1 = id 0 … Vn = id n−1).
    pub path_len: u16,
    /// Index of the forwarding mole `X` on the path.
    pub mole_position: u16,
    /// Packets the source mole injects.
    pub packets: usize,
    /// RNG seed.
    pub seed: u64,
}

impl AttackScenario {
    /// The default cell configuration: 10-hop path, mole mid-path,
    /// 300 injected packets.
    pub fn default_cell(seed: u64) -> Self {
        AttackScenario {
            path_len: 10,
            mole_position: 5,
            packets: 300,
            seed,
        }
    }

    /// The source mole's node id (provisioned, one-hop upstream of V1).
    pub fn source_id(&self) -> NodeId {
        NodeId(self.path_len)
    }

    /// Ground-truth one-hop adjacency on the chain (plus the source mole
    /// sitting next to V1).
    fn neighborhood(&self, c: NodeId) -> Vec<NodeId> {
        let n = self.path_len;
        let mut out = vec![c];
        if c == self.source_id() {
            out.push(NodeId(0));
            return out;
        }
        if c.raw() < n {
            if c.raw() == 0 {
                out.push(self.source_id());
            }
            if c.raw() > 0 {
                out.push(NodeId(c.raw() - 1));
            }
            if c.raw() + 1 < n {
                out.push(NodeId(c.raw() + 1));
            }
        }
        out
    }

    /// Whether a mole ({S, X}) lies in `c`'s one-hop neighborhood.
    fn mole_adjacent(&self, c: NodeId) -> bool {
        let moles = [self.source_id(), NodeId(self.mole_position)];
        self.neighborhood(c).iter().any(|n| moles.contains(n))
    }
}

/// Runs one cell: `scheme` under `attack`, returning the classified
/// outcome and the localization for diagnostics.
pub fn evaluate_cell(
    scheme_kind: SchemeKind,
    attack: AttackKind,
    scenario: &AttackScenario,
) -> (Outcome, Localization) {
    let n = scenario.path_len;
    let sc = PathScenario::paper(n);
    // Nested marks every hop regardless; probabilistic schemes use np=3.
    let config = sc.config();
    let keys = Arc::new(sc.keystore(1)); // +1 identity for the source mole
    let scheme = scheme_kind.build(config);

    let source_id = scenario.source_id();
    let mole_id = NodeId(scenario.mole_position);
    let mut source = SourceMole::new(source_id, *keys.key(source_id.raw()).unwrap());
    // Canonical selective dropping targets the most-upstream forwarder.
    let plan = AttackPlan::canonical(attack, &[0]);
    let mut mole = ForwardingMole::new(mole_id, *keys.key(mole_id.raw()).unwrap(), plan)
        .with_partner(source_id, *keys.key(source_id.raw()).unwrap());

    let mut sink = SinkEngine::new(
        Arc::clone(&keys),
        SinkConfig::new(scheme_kind.verify_mode()),
    );
    let mut rng = StdRng::seed_from_u64(scenario.seed);
    let mut delivered = 0usize;

    for _ in 0..scenario.packets {
        let mut pkt = source.inject(&mut rng);
        // Identity swapping involves the *source* too (§4.2 Fig. 2): it
        // sometimes marks as itself, sometimes as its partner X.
        if attack == AttackKind::IdentitySwap {
            let use_own = rng.next_u64() & 1 == 0;
            let ctx = if use_own {
                NodeContext::new(source_id, *keys.key(source_id.raw()).unwrap())
            } else {
                NodeContext::new(mole_id, *keys.key(mole_id.raw()).unwrap())
            };
            scheme.mark(&ctx, &mut pkt, &mut rng);
        }
        let mut dropped = false;
        for hop in 0..n {
            if hop == mole_id.raw() {
                if mole.process(&mut pkt, scheme.as_ref(), &mut rng) == MoleAction::Dropped {
                    dropped = true;
                    break;
                }
            } else {
                let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
                scheme.mark(&ctx, &mut pkt, &mut rng);
            }
        }
        if !dropped {
            sink.ingest(&pkt);
            delivered += 1;
        }
    }

    let loc = sink.localize();
    let outcome = classify(scenario, &loc, delivered);
    (outcome, loc)
}

/// Maps a localization to an [`Outcome`] given ground truth.
fn classify(scenario: &AttackScenario, loc: &Localization, delivered: usize) -> Outcome {
    if delivered == 0 {
        return Outcome::Starved;
    }
    match loc {
        Localization::NoEvidence => Outcome::Inconclusive,
        Localization::MostUpstream(c) => {
            if scenario.mole_adjacent(*c) {
                Outcome::Secure
            } else {
                Outcome::Misled
            }
        }
        Localization::Loop { junction, members } => {
            // Theorem 4's loop case names *the* junction node. A clean
            // reconstruction has exactly one (or a couple of swap-partner)
            // junction nodes, all mole-adjacent. A sprawling junction set
            // means the order relation is scrambled (e.g. re-ordering
            // attacks), not a genuine identity-swap loop: the sink cannot
            // act on it.
            let anchor = if junction.is_empty() {
                members
            } else {
                junction
            };
            if anchor.is_empty() {
                Outcome::Inconclusive
            } else if anchor.iter().all(|j| scenario.mole_adjacent(*j)) {
                Outcome::Secure
            } else if anchor.iter().any(|j| scenario.mole_adjacent(*j)) {
                Outcome::Inconclusive
            } else {
                Outcome::Misled
            }
        }
        Localization::Ambiguous(cands) => {
            if !cands.is_empty() && cands.iter().all(|c| scenario.mole_adjacent(*c)) {
                // Every remaining candidate pins a mole: actionable.
                Outcome::Secure
            } else {
                Outcome::Inconclusive
            }
        }
    }
}

/// Builds the full scheme × attack matrix table.
pub fn attack_matrix(scenario: &AttackScenario) -> Table {
    let mut headers = vec!["scheme".to_string()];
    headers.extend(AttackKind::all().iter().map(|a| a.to_string()));
    let mut t = Table::new(
        format!(
            "Attack matrix (path={}, mole at {}, {} packets): traceback outcome per scheme x attack",
            scenario.path_len, scenario.mole_position, scenario.packets
        ),
        headers,
    );
    for scheme in SchemeKind::all() {
        let mut row = vec![scheme.name().to_string()];
        for attack in AttackKind::all() {
            let (outcome, _) = evaluate_cell(scheme, attack, scenario);
            row.push(outcome.to_string());
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(scheme: SchemeKind, attack: AttackKind) -> Outcome {
        evaluate_cell(scheme, attack, &AttackScenario::default_cell(2024)).0
    }

    #[test]
    fn pnm_secure_under_every_attack() {
        for attack in AttackKind::all() {
            let outcome = cell(SchemeKind::Pnm, attack);
            assert_eq!(outcome, Outcome::Secure, "PNM under {attack}");
        }
    }

    #[test]
    fn plain_id_probabilistic_nested_falls_to_selective_drop() {
        // The §4.2 counterexample: nested MACs + plain IDs + probabilistic
        // marking is misled by selective dropping.
        let outcome = cell(SchemeKind::ProbNestedPlainId, AttackKind::SelectiveDrop);
        assert_eq!(outcome, Outcome::Misled);
    }

    #[test]
    fn extended_ams_falls_to_mark_removal() {
        // §3: "if mole X removes all marks from S and node 1, the sink will
        // trace back to innocent node 2."
        let outcome = cell(SchemeKind::ExtendedAms, AttackKind::MarkRemoval);
        assert_eq!(outcome, Outcome::Misled);
    }

    #[test]
    fn plain_marking_falls_to_insertion() {
        // Random faked IDs flood the candidate set: depending on which ids
        // repeat, the sink is misled to an innocent or left unable to
        // conclude. Either way, plain marking is defeated.
        let outcome = cell(SchemeKind::Plain, AttackKind::MarkInsertion);
        assert_ne!(outcome, Outcome::Secure);
        assert_ne!(outcome, Outcome::Starved);
    }

    #[test]
    fn nested_secure_under_removal_and_altering() {
        assert_eq!(
            cell(SchemeKind::Nested, AttackKind::MarkRemoval),
            Outcome::Secure
        );
        assert_eq!(
            cell(SchemeKind::Nested, AttackKind::MarkAlter),
            Outcome::Secure
        );
        assert_eq!(
            cell(SchemeKind::Nested, AttackKind::MarkReorder),
            Outcome::Secure
        );
    }

    #[test]
    fn nested_deterministic_starved_by_selective_drop() {
        // Footnote 2: with deterministic nested marking every packet carries
        // the victim's mark, so "selective" dropping degenerates to dropping
        // all attack traffic — silencing the attack itself.
        assert_eq!(
            cell(SchemeKind::Nested, AttackKind::SelectiveDrop),
            Outcome::Starved
        );
    }

    #[test]
    fn no_mark_attack_never_misleads_any_scheme() {
        for scheme in SchemeKind::all() {
            let outcome = cell(scheme, AttackKind::NoMark);
            assert_ne!(outcome, Outcome::Misled, "{scheme} under no-mark");
        }
    }

    #[test]
    fn matrix_table_shape() {
        let t = attack_matrix(&AttackScenario {
            path_len: 6,
            mole_position: 3,
            packets: 120,
            seed: 7,
        });
        assert_eq!(t.len(), 5);
        assert_eq!(t.headers.len(), 8);
    }
}
