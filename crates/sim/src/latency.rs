//! Wall-clock traceback latency over the discrete-event network (§7).
//!
//! The paper argues routing stability is a safe assumption because
//! traceback is fast: "about 10 seconds to locate a mole 40-hops away from
//! the sink, using 300 packets". This experiment reproduces that number on
//! the Mica2 radio model: a chain of `n` forwarders, a source mole
//! injecting at the radio's sustainable rate, PNM marking at every hop,
//! and the sink's locator running on deliveries.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};
use serde::{Deserialize, Serialize};

use pnm_core::{
    MarkingScheme, NodeContext, ProbabilisticNestedMarking, SinkConfig, SinkEngine, VerifyMode,
};
use pnm_net::{Network, NodeDecision, RadioModel, Topology};
use pnm_wire::NodeId;

use crate::runner::bogus_packet;
use crate::scenario::PathScenario;
use crate::table::Table;

/// Result of one latency run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LatencyResult {
    /// Path length.
    pub path_len: u16,
    /// Packets the sink had received when identification became
    /// unequivocal (`None` if it never did within the budget).
    pub packets_needed: Option<usize>,
    /// Simulated time at that moment, in seconds.
    pub seconds: Option<f64>,
    /// Packets injected in total.
    pub injected: usize,
}

/// Runs the latency experiment: `injected` packets down an `n`-hop chain
/// at `pps` packets per second, PNM with `np = 3`.
pub fn traceback_latency(n: u16, injected: usize, pps: f64, seed: u64) -> LatencyResult {
    let scenario = PathScenario::paper(n);
    let keys = Arc::new(scenario.keystore(0));
    let scheme = ProbabilisticNestedMarking::new(scenario.config());

    let topology = Topology::chain(n, 10.0);
    let net = Network::new(topology).with_radio(RadioModel::mica2());

    let keys_for_handler = Arc::clone(&keys);
    let mut handler = move |node: u16, pkt: &mut pnm_wire::Packet, _now: u64, rng: &mut StdRng| {
        let ctx = NodeContext::new(NodeId(node), *keys_for_handler.key(node).unwrap());
        scheme.mark(&ctx, pkt, rng);
        NodeDecision::Forward
    };

    let interval_us = (1_000_000.0 / pps) as u64;
    let report = net.simulate_stream(
        0,
        injected,
        interval_us,
        |seq| bogus_packet(seq, seed),
        &mut handler,
        seed,
    );

    // Ingest deliveries, tracking the identification status after each so
    // the settling point (correct and never changing again) can be found.
    let mut sink = SinkEngine::new(keys, SinkConfig::new(VerifyMode::Nested));
    let mut status: Vec<Option<NodeId>> = Vec::with_capacity(report.deliveries.len());
    for delivery in &report.deliveries {
        sink.ingest(&delivery.packet);
        status.push(sink.unequivocal_source());
    }
    if status.last().copied().flatten() == Some(NodeId(0)) {
        let mut idx = status.len();
        while idx > 0 && status[idx - 1] == Some(NodeId(0)) {
            idx -= 1;
        }
        return LatencyResult {
            path_len: n,
            packets_needed: Some(idx + 1),
            seconds: Some(report.deliveries[idx].time_us as f64 / 1e6),
            injected,
        };
    }
    LatencyResult {
        path_len: n,
        packets_needed: None,
        seconds: None,
        injected,
    }
}

/// The §7 claim table: traceback latency for increasing path lengths.
pub fn latency_table(injected: usize, pps: f64, seed: u64) -> Table {
    let mut t = Table::new(
        format!("Traceback latency (Mica2 radio, {pps} pkt/s injection, {injected} packets)"),
        vec!["path length", "packets to identify", "sim seconds"],
    );
    for n in [10u16, 20, 30, 40] {
        let r = traceback_latency(n, injected, pps, seed ^ n as u64);
        t.push_row(vec![
            n.to_string(),
            r.packets_needed.map_or("-".to_string(), |p| p.to_string()),
            r.seconds.map_or("-".to_string(), |s| format!("{s:.1}")),
        ]);
    }
    t
}

/// A rng-free helper used by tests to check the radio-rate arithmetic.
pub fn expected_injection_seconds(packets: usize, pps: f64) -> f64 {
    packets as f64 / pps
}

/// Seeded convenience wrapper used by the quickstart example: one run at
/// the paper's §7 setting (40 hops, 300 packets, 50 pkt/s).
pub fn paper_claim_run(seed: u64) -> LatencyResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let _ = rng.next_u64();
    traceback_latency(40, 300, 50.0, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_claim_40_hops_about_10_seconds() {
        // §7: "about 10 seconds to locate a mole 40-hops away from the
        // sink, using 300 packets". A generous injection budget makes the
        // run succeed for essentially every seed; the *measured* settle
        // point should be in the low hundreds of packets / around ten
        // simulated seconds.
        let r = traceback_latency(40, 1500, 50.0, 7);
        let needed = r.packets_needed.expect("identified");
        assert!((30..=900).contains(&needed), "needed {needed}");
        let secs = r.seconds.expect("identified");
        assert!((1.0..20.0).contains(&secs), "secs = {secs}");
    }

    #[test]
    fn shorter_paths_identify_faster() {
        let short = traceback_latency(10, 1500, 50.0, 3);
        let long = traceback_latency(40, 1500, 50.0, 3);
        let (s, l) = (
            short.packets_needed.expect("short identified"),
            long.packets_needed.expect("long identified"),
        );
        assert!(s < l, "short={s}, long={l}");
    }

    #[test]
    fn injection_rate_arithmetic() {
        assert!((expected_injection_seconds(300, 50.0) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn latency_table_shape() {
        // Small budget for test speed.
        let t = latency_table(120, 50.0, 5);
        assert_eq!(t.len(), 4);
    }
}
