//! Head-to-head traceback comparison (§8): PNM vs logging vs
//! notification, on the same attack stream.
//!
//! The paper claims PNM wins on two axes: "First, it requires no control
//! messages such as query/reply or notification… Second, it does not
//! require a node to store any previously forwarded packets." This
//! experiment runs all three approaches against an identical injection
//! stream and tabulates control-message cost, per-node storage, in-band
//! overhead, and what a single lying mole does to each.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use pnm_baselines::{
    logging_traceback, notify, should_notify, NotificationSink, QueryResponder, RespondPolicy,
};
use pnm_core::{
    MarkingScheme, NodeContext, ProbabilisticNestedMarking, SinkConfig, SinkEngine, VerifyMode,
};
use pnm_crypto::KeyStore;
use pnm_wire::NodeId;

use crate::runner::bogus_packet;
use crate::table::Table;

/// Measured costs and outcomes for one traceback approach.
#[derive(Clone, Debug)]
pub struct ApproachCost {
    /// Approach name.
    pub name: &'static str,
    /// Extra control messages sent (queries, responses, notifications).
    pub control_messages: u64,
    /// Peak per-node storage in bytes.
    pub per_node_storage_bytes: usize,
    /// Mean in-band marking overhead per delivered packet, bytes.
    pub in_band_overhead_bytes: f64,
    /// Whether the sink correctly localized the mole's first forwarder.
    pub identified: bool,
    /// Outcome description under one lying/abusing mole.
    pub mole_outcome: &'static str,
}

/// Runs the three approaches against the same `packets`-packet injection
/// stream on an `n`-hop chain with a silent mole source (off-path) and a
/// lying forwarding mole at `mole_pos`.
pub fn compare_approaches(n: u16, mole_pos: u16, packets: usize, seed: u64) -> Vec<ApproachCost> {
    let keys = Arc::new(KeyStore::derive_from_master(b"baselines-cmp", n));
    let scheme = ProbabilisticNestedMarking::paper_default(n as usize);
    let q = 3.0 / n as f64; // notification probability matched to np = 3

    // --- shared packet stream (pre-marked for PNM, raw bytes for others)
    let mut rng = StdRng::seed_from_u64(seed);

    // PNM.
    let mut sink = SinkEngine::new(Arc::clone(&keys), SinkConfig::new(VerifyMode::Nested));
    let mut overhead = 0usize;
    let mut status = Vec::new();
    for seq in 0..packets {
        let mut pkt = bogus_packet(seq as u64, seed);
        for hop in 0..n {
            if hop == mole_pos {
                continue; // the lying mole doesn't mark (no-mark attack)
            }
            let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
            scheme.mark(&ctx, &mut pkt, &mut rng);
        }
        overhead += pkt.marking_overhead();
        sink.ingest(&pkt);
        status.push(sink.unequivocal_source());
    }
    let pnm_identified = status.last().copied().flatten() == Some(NodeId(0));
    let pnm = ApproachCost {
        name: "pnm",
        control_messages: 0,
        per_node_storage_bytes: 0,
        in_band_overhead_bytes: overhead as f64 / packets as f64,
        identified: pnm_identified,
        mole_outcome: "secure: traceback pins the mole's neighborhood",
    };

    // Logging.
    let mut responders: Vec<QueryResponder> = (0..n)
        .map(|i| {
            if i == mole_pos {
                QueryResponder::with_policy(128, RespondPolicy::DenyAll)
            } else {
                QueryResponder::honest(128)
            }
        })
        .collect();
    let mut stream_bytes: Vec<Vec<u8>> = Vec::with_capacity(packets);
    for seq in 0..packets {
        let pkt = bogus_packet(seq as u64, seed);
        let bytes = pkt.to_bytes();
        for r in responders.iter_mut() {
            r.log.record(&bytes);
        }
        stream_bytes.push(bytes);
    }
    let peak_storage = responders
        .iter()
        .map(|r| r.log.storage_bytes())
        .max()
        .unwrap_or(0);
    // Trace the most recent packet (older ones may be evicted).
    let (claimed, messages) = logging_traceback(&mut responders, stream_bytes.last().unwrap());
    // The lying mole leaves a hole: the claimed path is not contiguous.
    let logging_identified = claimed.first() == Some(&0) && claimed.len() == n as usize;
    let logging = ApproachCost {
        name: "logging",
        control_messages: messages,
        per_node_storage_bytes: peak_storage,
        in_band_overhead_bytes: 0.0,
        identified: logging_identified,
        mole_outcome: "broken: mole denies forwarding, cutting the path",
    };

    // Notification.
    let mut sink = NotificationSink::new();
    let mut notif_count = 0u64;
    for bytes in &stream_bytes {
        for hop in 0..n {
            if hop == mole_pos {
                continue; // silent in-band, but see framing below
            }
            if should_notify(q, &mut rng) {
                let notif = notify(keys.key(hop).unwrap(), hop, bytes);
                sink.ingest(keys.key(hop).unwrap(), &notif);
                notif_count += 1;
            }
        }
        // The abusing mole fabricates a claim for a packet it never saw,
        // attributing plausible forwarding activity to confuse correlation.
        let fake = notify(keys.key(mole_pos).unwrap(), mole_pos, b"never-forwarded");
        sink.ingest(keys.key(mole_pos).unwrap(), &fake);
        notif_count += 1;
    }
    // Notifications carry no order: the sink learns *sets* of reporters,
    // not upstream relations — identification in the PNM sense needs the
    // topology plus trust in every reporter.
    let notification = ApproachCost {
        name: "notification",
        control_messages: notif_count,
        per_node_storage_bytes: 0,
        in_band_overhead_bytes: 0.0,
        identified: false,
        mole_outcome: "abusable: fabricated claims pollute correlation",
    };

    vec![pnm, logging, notification]
}

/// The §8 comparison table.
pub fn baselines_table(n: u16, packets: usize, seed: u64) -> Table {
    let rows = compare_approaches(n, n / 2, packets, seed);
    let mut t = Table::new(
        format!(
            "Traceback approach comparison ({n}-hop chain, {packets} packets, lying mole mid-path)"
        ),
        vec![
            "approach",
            "control msgs",
            "per-node storage",
            "in-band B/pkt",
            "identified",
            "under a lying mole",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.name.to_string(),
            r.control_messages.to_string(),
            format!("{} B", r.per_node_storage_bytes),
            format!("{:.1}", r.in_band_overhead_bytes),
            if r.identified { "yes" } else { "no" }.to_string(),
            r.mole_outcome.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pnm_wins_the_comparison() {
        let rows = compare_approaches(10, 5, 300, 7);
        let pnm = &rows[0];
        let logging = &rows[1];
        let notification = &rows[2];

        // The §8 claims, measured:
        assert_eq!(pnm.control_messages, 0, "no control messages");
        assert_eq!(pnm.per_node_storage_bytes, 0, "no per-node storage");
        assert!(pnm.identified, "and it still identifies the mole");

        assert!(logging.control_messages > 0);
        assert!(logging.per_node_storage_bytes > 0);
        assert!(!logging.identified, "denial cuts the logged path");

        assert!(notification.control_messages as f64 > 300.0 * 2.0);
        assert!(!notification.identified);
    }

    #[test]
    fn pnm_overhead_is_modest() {
        let rows = compare_approaches(10, 5, 200, 3);
        let pnm = &rows[0];
        // np = 3 marks ≈ 3 × 19 B + 2 ≈ sub-60 B.
        assert!(
            pnm.in_band_overhead_bytes < 70.0,
            "overhead {}",
            pnm.in_band_overhead_bytes
        );
    }

    #[test]
    fn table_renders_three_rows() {
        let t = baselines_table(10, 100, 1);
        assert_eq!(t.len(), 3);
        assert_eq!(t.rows[0][0], "pnm");
    }
}
