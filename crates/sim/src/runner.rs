//! Monte-Carlo runners implementing the paper's §6.2 methodology.
//!
//! The evaluation drives bogus reports down an `n`-node forwarding chain
//! (V1 = id 0 most upstream, Vn = id n−1 nearest the sink), marks them
//! with the scheme under test, and feeds the sink's staged
//! [`SinkEngine`]. Runs are seeded, independent,
//! and parallelized across OS threads.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use pnm_core::{NodeContext, SinkConfig, SinkEngine, VerifiedChain};
use pnm_wire::{Location, NodeId, Packet, Report};

use crate::scenario::{PathScenario, SchemeKind};

/// Outcome of one honest-path run.
#[derive(Clone, Debug)]
pub struct HonestRun {
    /// `collected_after[x]` = distinct forwarders whose marks the sink holds
    /// after the first `x + 1` packets (Figure 5's quantity).
    pub collected_after: Vec<usize>,
    /// `status_after[x]` = the unequivocally identified most-upstream node
    /// after the first `x + 1` packets (`None` while the candidate set is
    /// still ambiguous). Early in a run this can transiently name a
    /// downstream node, before an upstream mark has been seen at all.
    pub status_after: Vec<Option<NodeId>>,
    /// The identified most-upstream node at the end of the budget.
    pub identified: Option<NodeId>,
}

impl HonestRun {
    /// Whether the sink ended the run unequivocally identifying the true
    /// first forwarder (V1 = id 0) — "the source" in the paper's phrasing,
    /// since the source mole is V1's one-hop neighbor.
    pub fn identified_source(&self) -> bool {
        self.identified == Some(NodeId(0))
    }

    /// Whether, after exactly `packets` packets, the sink unequivocally and
    /// *correctly* identified the source region (Figure 6's per-traffic
    /// success criterion).
    pub fn correct_at(&self, packets: usize) -> bool {
        packets >= 1
            && self
                .status_after
                .get(packets - 1)
                .is_some_and(|s| *s == Some(NodeId(0)))
    }

    /// The settling point: the first packet count from which the sink's
    /// identification is correct (= V1) and *never changes again* within
    /// the budget (Figure 7's quantity). `None` if identification never
    /// settles. The stability requirement excludes the transient early
    /// phase where a partially observed path looks unequivocal.
    pub fn first_stable_correct(&self) -> Option<usize> {
        if self.status_after.last().copied().flatten() != Some(NodeId(0)) {
            return None;
        }
        let mut idx = self.status_after.len();
        while idx > 0 && self.status_after[idx - 1] == Some(NodeId(0)) {
            idx -= 1;
        }
        Some(idx + 1)
    }
}

/// Runs one honest (attack-free) injection stream of `packets` packets down
/// the scenario's path under `scheme`, seeded by `seed`.
pub fn run_honest_path(
    scenario: &PathScenario,
    scheme_kind: SchemeKind,
    packets: usize,
    seed: u64,
) -> HonestRun {
    let n = scenario.path_len;
    let keys = Arc::new(scenario.keystore(0));
    let scheme = scheme_kind.build(scenario.config());
    let mut sink = SinkEngine::new(
        Arc::clone(&keys),
        SinkConfig::new(scheme_kind.verify_mode()),
    );
    let mut rng = StdRng::seed_from_u64(seed);

    let contexts: Vec<NodeContext> = (0..n)
        .map(|i| NodeContext::new(NodeId(i), *keys.key(i).expect("provisioned")))
        .collect();

    let mut collected_after = Vec::with_capacity(packets);
    let mut status_after = Vec::with_capacity(packets);
    for seq in 0..packets as u64 {
        let mut pkt = bogus_packet(seq, seed);
        for ctx in &contexts {
            scheme.mark(ctx, &mut pkt, &mut rng);
        }
        sink.ingest(&pkt);
        collected_after.push(sink.observed_count());
        status_after.push(sink.unequivocal_source());
    }

    HonestRun {
        collected_after,
        status_after,
        identified: sink.unequivocal_source(),
    }
}

/// A bogus report: content varies per packet (duplicates would be
/// suppressed en route, §2.3 footnote 4).
pub fn bogus_packet(seq: u64, run_tag: u64) -> Packet {
    let event = format!("bogus-{run_tag:016x}-{seq}").into_bytes();
    Packet::new(Report::new(event, Location::new(0.0, 0.0), seq))
}

/// Ingests a pre-built packet stream into a sink engine, returning the
/// verified chains (diagnostics helper for attack experiments).
pub fn ingest_all(sink: &mut SinkEngine, packets: &[Packet]) -> Vec<VerifiedChain> {
    sink.ingest_batch(packets)
        .into_iter()
        .map(|out| out.chain.expect("no classifier configured"))
        .collect()
}

/// Runs `runs` independent seeded experiments in parallel and collects the
/// results in run order. `f(run_index)` must be deterministic in its index.
pub fn parallel_runs<T, F>(runs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(runs.max(1));
    if threads <= 1 || runs <= 1 {
        return (0..runs as u64).map(f).collect();
    }
    let mut results: Vec<Option<T>> = (0..runs).map(|_| None).collect();
    let chunk = runs.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slot_chunk) in results.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (i, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(f((t * chunk + i) as u64));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_pnm_run_converges() {
        let scenario = PathScenario::paper(10);
        let run = run_honest_path(&scenario, SchemeKind::Pnm, 150, 42);
        assert_eq!(run.collected_after.len(), 150);
        // Collection counts are non-decreasing and end at n.
        assert!(run.collected_after.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*run.collected_after.last().unwrap(), 10);
        assert!(run.identified_source(), "identified {:?}", run.identified);
        let stable = run.first_stable_correct().expect("settles within 150");
        assert!(stable <= 150);
        assert!(run.correct_at(150));
        // The settling point is indeed stable: correct at every later count.
        for l in stable..=150 {
            assert!(run.correct_at(l), "flicker at {l}");
        }
        // Settling cannot precede collecting V1's own mark; with p = 0.3
        // that virtually never happens on packet 1.
        assert!(stable >= 2, "stable = {stable}");
    }

    #[test]
    fn honest_nested_identifies_in_one_packet() {
        let scenario = PathScenario::paper(15);
        let run = run_honest_path(&scenario, SchemeKind::Nested, 1, 7);
        assert_eq!(run.first_stable_correct(), Some(1));
        assert!(run.identified_source());
        assert_eq!(run.collected_after[0], 15);
        assert!(run.correct_at(1));
        assert!(!run.correct_at(0));
    }

    #[test]
    fn runs_are_deterministic_in_seed() {
        let scenario = PathScenario::paper(10);
        let a = run_honest_path(&scenario, SchemeKind::Pnm, 60, 5);
        let b = run_honest_path(&scenario, SchemeKind::Pnm, 60, 5);
        let c = run_honest_path(&scenario, SchemeKind::Pnm, 60, 6);
        assert_eq!(a.collected_after, b.collected_after);
        assert_eq!(a.status_after, b.status_after);
        assert!(a.collected_after != c.collected_after || a.status_after != c.status_after);
    }

    #[test]
    fn parallel_runs_preserve_order_and_determinism() {
        let results = parallel_runs(100, |i| i * i);
        assert_eq!(results.len(), 100);
        for (i, v) in results.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn parallel_runs_zero_and_one() {
        assert!(parallel_runs(0, |i| i).is_empty());
        assert_eq!(parallel_runs(1, |i| i + 1), vec![1]);
    }

    #[test]
    fn bogus_packets_differ() {
        assert_ne!(
            bogus_packet(0, 1).report.to_bytes(),
            bogus_packet(1, 1).report.to_bytes()
        );
        assert_ne!(
            bogus_packet(0, 1).report.to_bytes(),
            bogus_packet(0, 2).report.to_bytes()
        );
    }
}
