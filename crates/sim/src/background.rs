//! Traceback with legitimate background traffic (§7 "Background Traffic").
//!
//! The paper's evaluation isolates attack traffic; in a real deployment
//! legitimate reports share the network. The sink must first decide which
//! packets are suspicious — here via the ground-truth
//! [`EventRegistry`] and
//! [`VolumeMonitor`] — and run traceback only on
//! those. This experiment measures how background traffic volume affects
//! (a) classification quality and (b) time-to-identification.
//!
//! The sink side runs as a sharded [`ServicePool`]. Registry verdicts are
//! per-report and therefore shard-invariant; the volume monitor's rate
//! window is shard-local, which only ever *under*-counts a cell's rate —
//! in this setting classification stays exact (the tests assert zero
//! false positives and full attack coverage).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use pnm_core::{
    EventRegistry, MarkingScheme, NodeContext, ProbabilisticNestedMarking, RouteReconstructor,
    SinkConfig, TrafficClassifier, Verdict, VerifyMode, VolumeMonitor,
};
use pnm_net::{Network, Topology};
use pnm_service::{ServiceConfig, ServicePool};
use pnm_wire::{Location, NodeId, Packet, Report};

use crate::table::Table;

/// Result of one background-traffic run.
#[derive(Clone, Debug)]
pub struct BackgroundRun {
    /// Ratio of legitimate to attack packets injected.
    pub background_ratio: f64,
    /// Attack packets classified suspicious (true positives).
    pub true_positives: usize,
    /// Legitimate packets classified suspicious (false positives).
    pub false_positives: usize,
    /// Total attack / legitimate packets delivered.
    pub attack_delivered: usize,
    /// Legitimate packets delivered.
    pub legit_delivered: usize,
    /// Whether the locator pinned the mole's first forwarder.
    pub identified: bool,
    /// Suspicious packets ingested before identification settled.
    pub packets_to_identify: Option<usize>,
}

/// Runs the mixed-traffic experiment on a grid: the mole floods
/// uncorroborated reports from one corner while `background_ratio`× as
/// many legitimate, registered reports originate elsewhere.
pub fn run_background_traffic(
    attack_packets: usize,
    background_ratio: f64,
    seed: u64,
) -> BackgroundRun {
    let grid_w = 8u16;
    let topo = Topology::grid(grid_w, grid_w, 10.0);
    let net = Network::new(topo.clone());
    let n_nodes = topo.len() as u16;
    let keys = Arc::new(pnm_crypto::KeyStore::derive_from_master(
        b"background",
        n_nodes,
    ));

    // The mole: the node farthest from the sink.
    let mole = (0..n_nodes)
        .max_by_key(|&i| net.routing().hops_to_sink(i).unwrap_or(0))
        .expect("grid nodes");
    let mole_path = net.routing().path_to_sink(mole).expect("routed");
    let scheme = ProbabilisticNestedMarking::paper_default(mole_path.len().max(3));

    // Legitimate reporters: a handful of nodes with *registered* events,
    // chosen in distinct location cells so their aggregate rate per cell
    // stays legitimate.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut legit_sources: Vec<u16> = Vec::new();
    let mut used_cells = std::collections::HashSet::new();
    let mut candidates: Vec<u16> = (0..n_nodes).filter(|&s| s != mole).collect();
    // Seeded shuffle.
    for i in (1..candidates.len()).rev() {
        let j = rng.random_range(0..=i);
        candidates.swap(i, j);
    }
    for s in candidates {
        let p = topo.position(s);
        let cell = ((p.x / 10.0).floor() as i32, (p.y / 10.0).floor() as i32);
        if used_cells.insert(cell) {
            legit_sources.push(s);
            if legit_sources.len() == 6 {
                break;
            }
        }
    }
    let mut registry = EventRegistry::new(10.0);
    for &s in &legit_sources {
        let p = topo.position(s);
        registry.register(p.x, p.y, 0, u64::MAX);
    }
    // Volume monitor tuned above the per-cell legitimate rate (legit
    // sources report at ≤10/s per cell; the mole floods at 50/s).
    let monitor = VolumeMonitor::new(10.0, 1_000_000, 15);
    let classifier = TrafficClassifier::permissive()
        .with_registry(registry)
        .with_volume_monitor(monitor);

    // The service's per-shard classification stage gates verification:
    // benign packets never reach the verifier, suspicious ones stream into
    // the traceback. Retained per-packet outcomes (keyed by admission
    // ticket) let us replay the suspicious stream afterwards for the
    // settling-point metric.
    let sink = ServicePool::new(
        Arc::clone(&keys),
        ServiceConfig::new(SinkConfig::new(VerifyMode::Nested).classifier(classifier))
            .shards(2)
            .keep_outcomes(true),
    );

    // Interleave attack and legitimate injections on a common timeline.
    // The attack floods at 50 pkt/s; background volume is background_ratio
    // times the attack volume, spread so each legitimate cell stays at a
    // legitimate rate (one report per source per 100 ms).
    let legit_packets = (attack_packets as f64 * background_ratio).round() as usize;
    let mut schedule: Vec<(u64, bool, u64)> = Vec::new(); // (time, is_attack, seq)
    for i in 0..attack_packets {
        schedule.push((i as u64 * 20_000, true, i as u64));
    }
    for i in 0..legit_packets {
        // Round-robin across sources; each source fires every 100 ms.
        let round = (i / legit_sources.len().max(1)) as u64;
        schedule.push((round * 100_000, false, i as u64));
    }
    schedule.sort();

    let mut stats = BackgroundRun {
        background_ratio,
        true_positives: 0,
        false_positives: 0,
        attack_delivered: 0,
        legit_delivered: 0,
        identified: false,
        packets_to_identify: None,
    };

    // The mole never marks, so the most-upstream *marker* the sink can pin
    // is the mole's first forwarder — exactly the paper's one-hop
    // neighborhood guarantee.
    let mole_head = NodeId(mole_path[1]);
    let mut is_attack_by_ticket: Vec<bool> = Vec::new();
    for (now, is_attack, seq) in schedule {
        let (source, report) = if is_attack {
            // Bogus event at the mole's own (unregistered) location.
            let p = topo.position(mole);
            (
                mole,
                Report::new(
                    format!("bogus-{seq}").into_bytes(),
                    Location::new(p.x + 3.0, p.y + 3.0),
                    now,
                ),
            )
        } else {
            let s = legit_sources[(seq as usize) % legit_sources.len()];
            let p = topo.position(s);
            (
                s,
                Report::new(
                    format!("real-{seq}").into_bytes(),
                    Location::new(p.x, p.y),
                    now,
                ),
            )
        };
        // Forward along the route, marking per PNM.
        let Some(path) = net.routing().path_to_sink(source) else {
            continue;
        };
        let mut pkt = Packet::new(report);
        for &hop in &path {
            if hop == mole {
                continue; // the mole stays silent
            }
            let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
            scheme.mark(&ctx, &mut pkt, &mut rng);
        }
        if is_attack {
            stats.attack_delivered += 1;
        } else {
            stats.legit_delivered += 1;
        }
        // Stream into the service; verdicts surface at drain time, keyed
        // by the admission ticket. With one producer and no shedding the
        // tickets are dense, so this index maps ticket → ground truth.
        let ticket = sink
            .ingest_at(pkt, now)
            .expect("block policy accepts every packet");
        debug_assert_eq!(ticket as usize, is_attack_by_ticket.len());
        is_attack_by_ticket.push(is_attack);
    }

    // Drain: shards finish, verdicts come back in admission order, and
    // the merged engine holds the cross-shard route evidence.
    let report = sink.drain();
    // Replay the suspicious chains in admission order through a fresh
    // reconstructor to find the settling point — the same evidence
    // sequence a single sequential engine would have accumulated.
    let mut replay = RouteReconstructor::new();
    let mut status: Vec<Option<NodeId>> = Vec::new();
    for (ticket, outcome) in &report.outcomes {
        if outcome.verdict != Some(Verdict::Suspicious) {
            continue;
        }
        if is_attack_by_ticket[*ticket as usize] {
            stats.true_positives += 1;
        } else {
            stats.false_positives += 1;
        }
        if let Some(chain) = &outcome.chain {
            replay.observe_chain(&chain.nodes);
        }
        status.push(replay.unequivocal_source());
    }
    debug_assert_eq!(
        replay.unequivocal_source(),
        report.engine.unequivocal_source()
    );

    // Settling point over suspicious ingests only.
    if status.last().copied().flatten() == Some(mole_head) {
        stats.identified = true;
        let mut idx = status.len();
        while idx > 0 && status[idx - 1] == Some(mole_head) {
            idx -= 1;
        }
        stats.packets_to_identify = Some(idx + 1);
    }
    stats
}

/// The background-traffic table: sweep of legit:attack ratios.
pub fn background_table(attack_packets: usize, seed: u64) -> Table {
    let mut t = Table::new(
        format!("Background traffic: classification + traceback ({attack_packets} attack pkts, grid 8x8)"),
        vec![
            "legit:attack",
            "attack flagged",
            "legit misflagged",
            "identified",
            "pkts to identify",
        ],
    );
    for ratio in [0.0, 1.0, 2.0, 4.0, 8.0] {
        let r = run_background_traffic(attack_packets, ratio, seed);
        t.push_row(vec![
            format!("{ratio}x"),
            format!("{}/{}", r.true_positives, r.attack_delivered),
            format!("{}/{}", r.false_positives, r.legit_delivered),
            if r.identified { "yes" } else { "no" }.to_string(),
            r.packets_to_identify.map_or("-".into(), |p| p.to_string()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_identified_without_background() {
        let r = run_background_traffic(200, 0.0, 7);
        assert!(r.identified, "{r:?}");
        assert_eq!(r.true_positives, r.attack_delivered);
        assert_eq!(r.false_positives, 0);
    }

    #[test]
    fn attack_identified_with_heavy_background() {
        let r = run_background_traffic(200, 4.0, 7);
        assert!(r.identified, "{r:?}");
        // Registry-based classification is exact in this setting.
        assert_eq!(r.false_positives, 0, "{r:?}");
        assert_eq!(r.true_positives, r.attack_delivered);
    }

    #[test]
    fn background_table_shape() {
        let t = background_table(120, 3);
        assert_eq!(t.len(), 5);
        assert!(t.rows.iter().all(|r| r[3] == "yes"), "{t}");
    }
}
