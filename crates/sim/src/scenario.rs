//! Experiment scenarios: which scheme, which path, which parameters.

use serde::{Deserialize, Serialize};

use pnm_core::{
    ExtendedAms, MarkingConfig, MarkingScheme, NestedMarking, PlainMarking,
    ProbabilisticNestedMarking, ProbabilisticNestedPlainId, VerifyMode,
};
use pnm_crypto::KeyStore;

/// The five marking schemes the paper analyzes, as a harness-level enum.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Internet-style plain marking (no crypto).
    Plain,
    /// Extended AMS (§3 baseline).
    ExtendedAms,
    /// Basic nested marking (§4.1), marks every hop.
    Nested,
    /// Probabilistic nested marking with plain IDs — the §4.2 counterexample.
    ProbNestedPlainId,
    /// Probabilistic Nested Marking (§4.2), the paper's contribution.
    Pnm,
}

impl SchemeKind {
    /// All five schemes in presentation order.
    pub fn all() -> [SchemeKind; 5] {
        [
            SchemeKind::Plain,
            SchemeKind::ExtendedAms,
            SchemeKind::Nested,
            SchemeKind::ProbNestedPlainId,
            SchemeKind::Pnm,
        ]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            SchemeKind::Plain => "plain",
            SchemeKind::ExtendedAms => "extended-ams",
            SchemeKind::Nested => "nested",
            SchemeKind::ProbNestedPlainId => "prob-nested-plain-id",
            SchemeKind::Pnm => "pnm",
        }
    }

    /// Instantiates the scheme for a configuration.
    pub fn build(&self, config: MarkingConfig) -> Box<dyn MarkingScheme> {
        match self {
            SchemeKind::Plain => Box::new(PlainMarking::new(config)),
            SchemeKind::ExtendedAms => Box::new(ExtendedAms::new(config)),
            SchemeKind::Nested => Box::new(NestedMarking::new(config)),
            SchemeKind::ProbNestedPlainId => Box::new(ProbabilisticNestedPlainId::new(config)),
            SchemeKind::Pnm => Box::new(ProbabilisticNestedMarking::new(config)),
        }
    }

    /// How the sink verifies marks produced by this scheme.
    pub fn verify_mode(&self) -> VerifyMode {
        match self {
            SchemeKind::Plain => VerifyMode::PlainTrust,
            SchemeKind::ExtendedAms => VerifyMode::Ams,
            SchemeKind::Nested | SchemeKind::ProbNestedPlainId | SchemeKind::Pnm => {
                VerifyMode::Nested
            }
        }
    }

    /// Whether this scheme marks probabilistically (and thus takes the
    /// paper's `p = np̄ / n` configuration).
    pub fn is_probabilistic(&self) -> bool {
        !matches!(self, SchemeKind::Nested)
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A forwarding-path scenario matching the paper's §6.2 methodology:
/// `n` forwarders in a chain (V1 most upstream), marking probability set
/// for a target mean of `target_marks` marks per packet.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PathScenario {
    /// Number of forwarding nodes on the path.
    pub path_len: u16,
    /// Target mean marks per packet (`np̄`; the paper fixes 3).
    pub target_marks: f64,
    /// Truncated MAC width in bytes.
    pub mac_width: usize,
}

impl PathScenario {
    /// The paper's setting for a path of `n` forwarders.
    pub fn paper(path_len: u16) -> Self {
        PathScenario {
            path_len,
            target_marks: 3.0,
            mac_width: 8,
        }
    }

    /// The marking configuration this scenario implies.
    pub fn config(&self) -> MarkingConfig {
        MarkingConfig::builder()
            .mac_width(self.mac_width)
            .target_marks_per_packet(self.target_marks, self.path_len as usize)
            .build()
    }

    /// Provisions keys for the path's forwarders (ids `0..path_len`) plus
    /// `extra` additional identities (moles, off-path nodes), ids
    /// `path_len..path_len+extra`.
    pub fn keystore(&self, extra: u16) -> KeyStore {
        KeyStore::derive_from_master(b"pnm-sim-deployment", self.path_len + extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_schemes_distinct() {
        let names: std::collections::HashSet<&str> =
            SchemeKind::all().iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn build_matches_name() {
        let cfg = MarkingConfig::default();
        for kind in SchemeKind::all() {
            assert_eq!(kind.build(cfg).name(), kind.name());
        }
    }

    #[test]
    fn verify_modes() {
        assert_eq!(SchemeKind::Plain.verify_mode(), VerifyMode::PlainTrust);
        assert_eq!(SchemeKind::ExtendedAms.verify_mode(), VerifyMode::Ams);
        assert_eq!(SchemeKind::Pnm.verify_mode(), VerifyMode::Nested);
    }

    #[test]
    fn paper_scenario_np3() {
        let s = PathScenario::paper(20);
        assert!((s.config().marking_probability - 0.15).abs() < 1e-12);
        assert_eq!(s.config().mac_width, 8);
    }

    #[test]
    fn keystore_includes_extras() {
        let s = PathScenario::paper(10);
        let ks = s.keystore(2);
        assert_eq!(ks.len(), 12);
        assert!(ks.key(11).is_some());
    }
}
