//! Regeneration of every figure in the paper's evaluation (§6).
//!
//! | Function | Paper figure | What it shows |
//! |---|---|---|
//! | [`fig4`] | Figure 4 | P(all marks collected within x packets), analytical |
//! | [`fig5`] | Figure 5 | avg % of nodes collected in first x packets, simulated |
//! | [`fig6`] / [`fig67`] | Figure 6 | runs (out of N) failing unequivocal identification |
//! | [`fig7`] / [`fig67`] | Figure 7 | avg packets to unequivocal identification |
//!
//! Each returns a [`Table`] whose rows are exactly the series the paper
//! plots; the `regen-figures` binary prints them (and CSV).

use pnm_analysis::collection::collection_probability;
use pnm_analysis::stats::OnlineStats;

use crate::runner::{parallel_runs, run_honest_path};
use crate::scenario::{PathScenario, SchemeKind};
use crate::table::Table;

/// Path lengths plotted in Figures 4 and 5.
pub const COLLECTION_PATH_LENGTHS: [u16; 3] = [10, 20, 30];

/// Path lengths swept in Figures 6 and 7.
pub const IDENTIFICATION_PATH_LENGTHS: [u16; 10] = [5, 10, 15, 20, 25, 30, 35, 40, 45, 50];

/// Traffic amounts (packets received) compared in Figure 6.
pub const TRAFFIC_AMOUNTS: [usize; 4] = [200, 400, 600, 800];

/// Figure 4: the analytical probability that the sink has collected marks
/// from all `n` forwarders within `x` packets, for `n ∈ {10, 20, 30}` with
/// `np = 3` (§6.1).
pub fn fig4(max_packets: u64) -> Table {
    let mut t = Table::new(
        "Figure 4: P(all marks collected within x packets), np=3 (analytical)",
        vec!["packets", "n=10", "n=20", "n=30"],
    );
    for x in 1..=max_packets {
        let mut row = vec![x.to_string()];
        for n in COLLECTION_PATH_LENGTHS {
            let p = (3.0 / n as f64).min(1.0);
            row.push(format!("{:.4}", collection_probability(n as u32, p, x)));
        }
        t.push_row(row);
    }
    t
}

/// Figure 5: the simulated average percentage of forwarders whose marks
/// the sink holds after the first `x` packets, `n ∈ {10, 20, 30}`, `np = 3`.
/// The paper averages 5000 runs per setting.
pub fn fig5(runs: usize, max_packets: usize) -> Table {
    let mut t = Table::new(
        format!("Figure 5: avg % of nodes collected in first x packets (PNM, np=3, {runs} runs)"),
        vec!["packets", "n=10", "n=20", "n=30"],
    );
    // percent[path][x] = mean percentage collected after x+1 packets.
    let mut percent: Vec<Vec<f64>> = Vec::new();
    for n in COLLECTION_PATH_LENGTHS {
        let scenario = PathScenario::paper(n);
        let results = parallel_runs(runs, |run| {
            run_honest_path(&scenario, SchemeKind::Pnm, max_packets, 0x5EED_0000 + run)
                .collected_after
        });
        let mut means = vec![0.0f64; max_packets];
        for r in &results {
            for (x, &count) in r.iter().enumerate() {
                means[x] += count as f64 / n as f64 * 100.0;
            }
        }
        for m in &mut means {
            *m /= runs as f64;
        }
        percent.push(means);
    }
    for (x, ((p10, p20), p30)) in percent[0]
        .iter()
        .zip(&percent[1])
        .zip(&percent[2])
        .enumerate()
    {
        t.push_row(vec![
            (x + 1).to_string(),
            format!("{p10:.2}"),
            format!("{p20:.2}"),
            format!("{p30:.2}"),
        ]);
    }
    t
}

/// Raw data behind Figures 6 and 7 for one path length.
#[derive(Clone, Debug)]
pub struct IdentificationPoint {
    /// Path length `n`.
    pub path_len: u16,
    /// `failures[t]` = runs (out of `runs`) in which the sink could not
    /// unequivocally identify the source within `TRAFFIC_AMOUNTS[t]`
    /// packets.
    pub failures: [usize; 4],
    /// Mean packets to unequivocal identification over successful runs
    /// (800-packet budget), with spread.
    pub packets_to_identify: OnlineStats,
    /// Total runs.
    pub runs: usize,
}

/// Runs the Figure 6/7 sweep: for each path length, `runs` seeded PNM runs
/// with an 800-packet budget, recording when identification became
/// unequivocal.
pub fn identification_sweep(runs: usize) -> Vec<IdentificationPoint> {
    let budget = *TRAFFIC_AMOUNTS.last().expect("non-empty");
    IDENTIFICATION_PATH_LENGTHS
        .iter()
        .map(|&n| {
            let scenario = PathScenario::paper(n);
            let outcomes = parallel_runs(runs, |run| {
                let r = run_honest_path(
                    &scenario,
                    SchemeKind::Pnm,
                    budget,
                    (0xF16u64 << 40) ^ ((n as u64) << 24) ^ run,
                );
                let correct: Vec<bool> = TRAFFIC_AMOUNTS.iter().map(|&l| r.correct_at(l)).collect();
                (correct, r.first_stable_correct())
            });
            let mut failures = [0usize; 4];
            let mut stats = OnlineStats::new();
            for (correct, stable) in &outcomes {
                for (t, ok) in correct.iter().enumerate() {
                    if !ok {
                        failures[t] += 1;
                    }
                }
                if let Some(f) = stable {
                    stats.push(*f as f64);
                }
            }
            IdentificationPoint {
                path_len: n,
                failures,
                packets_to_identify: stats,
                runs,
            }
        })
        .collect()
}

/// Figures 6 and 7 from one shared sweep (they use the same runs in the
/// paper: Figure 6 counts failures per traffic amount; Figure 7 averages
/// packets-to-identification over successful runs).
pub fn fig67(runs: usize) -> (Table, Table) {
    let points = identification_sweep(runs);

    let mut f6 = Table::new(
        format!("Figure 6: runs (out of {runs}) where the source is NOT unequivocally identified"),
        vec![
            "path length",
            "200 pkts",
            "400 pkts",
            "600 pkts",
            "800 pkts",
        ],
    );
    for p in &points {
        f6.push_row(vec![
            p.path_len.to_string(),
            p.failures[0].to_string(),
            p.failures[1].to_string(),
            p.failures[2].to_string(),
            p.failures[3].to_string(),
        ]);
    }

    let mut f7 = Table::new(
        format!("Figure 7: avg packets to unequivocally identify the source (800-pkt budget, {runs} runs)"),
        vec!["path length", "avg packets", "stddev", "successful runs"],
    );
    for p in &points {
        f7.push_row(vec![
            p.path_len.to_string(),
            format!("{:.1}", p.packets_to_identify.mean()),
            format!("{:.1}", p.packets_to_identify.stddev()),
            p.packets_to_identify.count().to_string(),
        ]);
    }
    (f6, f7)
}

/// Figure 6 alone (see [`fig67`]).
pub fn fig6(runs: usize) -> Table {
    fig67(runs).0
}

/// Figure 7 alone (see [`fig67`]).
pub fn fig7(runs: usize) -> Table {
    fig67(runs).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shape_and_anchors() {
        let t = fig4(60);
        assert_eq!(t.len(), 60);
        assert_eq!(t.headers.len(), 4);
        // Row 13 (x=13), col n=10 ≈ 0.90 (§6.1).
        let row13 = &t.rows[12];
        assert_eq!(row13[0], "13");
        let v: f64 = row13[1].parse().unwrap();
        assert!((0.85..0.95).contains(&v), "v = {v}");
        // Monotone in x for each n.
        for col in 1..4 {
            let vals: Vec<f64> = t.rows.iter().map(|r| r[col].parse().unwrap()).collect();
            assert!(vals.windows(2).all(|w| w[0] <= w[1] + 1e-9));
        }
    }

    #[test]
    fn fig5_small_matches_paper_shape() {
        // Tiny run count for test speed; shape only.
        let t = fig5(40, 15);
        assert_eq!(t.len(), 15);
        // n=10 column reaches high coverage quickly: ≥80% by packet 7
        // (paper: ~9 of 10 nodes by 7 packets).
        let row7: f64 = t.rows[6][1].parse().unwrap();
        assert!(row7 > 70.0, "row7 = {row7}");
        // Larger n collects more slowly at equal packet counts.
        let r5_n10: f64 = t.rows[4][1].parse().unwrap();
        let r5_n30: f64 = t.rows[4][3].parse().unwrap();
        assert!(r5_n10 > r5_n30);
    }

    #[test]
    fn identification_sweep_tiny() {
        // 4 runs just to exercise the plumbing end to end.
        let points = identification_sweep(4);
        assert_eq!(points.len(), IDENTIFICATION_PATH_LENGTHS.len());
        for p in &points {
            assert!(p.failures.iter().all(|&f| f <= 4));
            assert!(p.packets_to_identify.count() <= 4);
        }
        // Short paths identify reliably within 800 packets.
        assert_eq!(points[0].failures[3], 0, "n=5 at 800 pkts: {:?}", points[0]);
    }
}
