//! Fragmentation amplification: marking overhead → frames → loss.
//!
//! A Mica2 frame carries ~29 payload bytes, so a marked packet spans
//! several frames and losing *any* frame on *any* hop loses the packet.
//! This experiment quantifies how each scheme's overhead amplifies
//! per-frame loss into end-to-end packet loss — a physical-layer
//! consequence of the §4 overhead argument that the paper's byte counts
//! imply but never spell out.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

use pnm_analysis::OnlineStats;
use pnm_core::{MarkingConfig, NodeContext};
use pnm_crypto::KeyStore;
use pnm_wire::{frames_needed, NodeId, FRAME_PAYLOAD};

use crate::runner::bogus_packet;
use crate::scenario::{PathScenario, SchemeKind};
use crate::table::Table;

/// Result of one (scheme, path length) fragmentation cell.
#[derive(Clone, Debug)]
pub struct FrameCell {
    /// Scheme measured.
    pub scheme: SchemeKind,
    /// Path length.
    pub path_len: u16,
    /// Frames per packet at the sink.
    pub frames_per_packet: OnlineStats,
    /// Fraction of packets delivered end to end.
    pub delivery_rate: f64,
    /// The analytic rate `(1−p_f)^E[Σ_h frames_h]`, using the measured
    /// mean of the per-hop frame counts summed along the path.
    pub analytic_rate: f64,
}

/// Simulates `packets` packets with per-frame loss `frame_loss` on every
/// hop of an `n`-hop path.
pub fn measure_frames(
    scheme_kind: SchemeKind,
    n: u16,
    packets: usize,
    frame_loss: f64,
    seed: u64,
) -> FrameCell {
    let scenario = PathScenario::paper(n);
    let keys = KeyStore::derive_from_master(b"frames", n);
    let config = if scheme_kind.is_probabilistic() {
        scenario.config()
    } else {
        MarkingConfig::builder().marking_probability(1.0).build()
    };
    let scheme = scheme_kind.build(config);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut frames_stats = OnlineStats::new();
    let mut frame_sum_stats = OnlineStats::new();
    let mut delivered = 0usize;
    for seq in 0..packets as u64 {
        let mut pkt = bogus_packet(seq, seed);
        let mut lost = false;
        let mut frames_on_path = 0usize;
        for hop in 0..n {
            let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
            scheme.mark(&ctx, &mut pkt, &mut rng);
            // The packet, as it leaves this hop, is fragmented and each
            // frame survives independently.
            let frames = frames_needed(pkt.encoded_len(), FRAME_PAYLOAD);
            frames_on_path += frames;
            for _ in 0..frames {
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                if u < frame_loss {
                    lost = true;
                }
            }
            // Keep marking even after a loss so the recorded frame count
            // is the full-path packet size, not biased by early deaths.
        }
        frames_stats.push(frames_needed(pkt.encoded_len(), FRAME_PAYLOAD) as f64);
        frame_sum_stats.push(frames_on_path as f64);
        if !lost {
            delivered += 1;
        }
    }

    // Every frame on every hop survives independently, so delivery is
    // (1−p)^{Σ_h frames_h}; use the measured mean exponent.
    let analytic_rate = (1.0 - frame_loss).powf(frame_sum_stats.mean());
    FrameCell {
        scheme: scheme_kind,
        path_len: n,
        frames_per_packet: frames_stats,
        delivery_rate: delivered as f64 / packets as f64,
        analytic_rate,
    }
}

/// The fragmentation table.
pub fn frames_table(packets: usize, frame_loss: f64, seed: u64) -> Table {
    let mut t = Table::new(
        format!(
            "Fragmentation amplification ({:.1}% per-frame loss, {}B frames, {packets} pkts/cell)",
            frame_loss * 100.0,
            FRAME_PAYLOAD
        ),
        vec![
            "scheme",
            "path len",
            "frames/pkt",
            "delivered %",
            "analytic %",
        ],
    );
    for scheme in [SchemeKind::Nested, SchemeKind::Pnm] {
        for n in [10u16, 20, 30] {
            let c = measure_frames(scheme, n, packets, frame_loss, seed);
            t.push_row(vec![
                scheme.name().to_string(),
                n.to_string(),
                format!("{:.1}", c.frames_per_packet.mean()),
                format!("{:.1}", c.delivery_rate * 100.0),
                format!("{:.1}", c.analytic_rate * 100.0),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_delivers_everything() {
        let c = measure_frames(SchemeKind::Pnm, 10, 100, 0.0, 1);
        assert_eq!(c.delivery_rate, 1.0);
        assert!(c.frames_per_packet.mean() >= 2.0);
    }

    #[test]
    fn nested_loses_more_than_pnm_under_frame_loss() {
        let nested = measure_frames(SchemeKind::Nested, 20, 600, 0.005, 3);
        let pnm = measure_frames(SchemeKind::Pnm, 20, 600, 0.005, 3);
        assert!(
            nested.frames_per_packet.mean() > 2.0 * pnm.frames_per_packet.mean(),
            "nested {} vs pnm {}",
            nested.frames_per_packet.mean(),
            pnm.frames_per_packet.mean()
        );
        assert!(
            nested.delivery_rate < pnm.delivery_rate,
            "nested {} vs pnm {}",
            nested.delivery_rate,
            pnm.delivery_rate
        );
    }

    #[test]
    fn simulated_delivery_tracks_analytic() {
        let c = measure_frames(SchemeKind::Pnm, 10, 2000, 0.01, 5);
        assert!(
            (c.delivery_rate - c.analytic_rate).abs() < 0.10,
            "sim {} vs analytic {}",
            c.delivery_rate,
            c.analytic_rate
        );
    }

    #[test]
    fn table_renders() {
        let t = frames_table(100, 0.01, 2);
        assert_eq!(t.len(), 6);
    }
}
