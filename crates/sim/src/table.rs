//! Plain-text result tables: aligned console rendering plus CSV export,
//! matching the rows/series the paper's figures report.

use core::fmt;

use serde::{Deserialize, Serialize};

/// A labeled results table.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. `Figure 4`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each row has `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<impl Into<String>>) -> Self {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<impl Into<String>>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Renders as RFC-4180-style CSV (quotes applied when needed).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let line = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ");
            writeln!(f, "{line}")
        };
        render(f, &self.headers)?;
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(rule))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Figure X", vec!["n", "value"]);
        t.push_row(vec!["10", "0.5"]);
        t.push_row(vec!["20", "0.25"]);
        t
    }

    #[test]
    fn display_aligns_columns() {
        let rendered = sample().to_string();
        assert!(rendered.contains("== Figure X =="));
        assert!(rendered.contains(" n"));
        assert!(rendered.lines().count() >= 5);
    }

    #[test]
    fn csv_round_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["n,value", "10,0.5", "20,0.25"]);
    }

    #[test]
    fn csv_escapes_specials() {
        let mut t = Table::new("t", vec!["a"]);
        t.push_row(vec!["x,y"]);
        t.push_row(vec!["he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("t", vec!["a", "b"]);
        t.push_row(vec!["only-one"]);
    }

    #[test]
    fn len_and_empty() {
        let t = Table::new("t", vec!["a"]);
        assert!(t.is_empty());
        assert_eq!(sample().len(), 2);
    }
}
