//! Marking overhead comparison (§4's motivation for probabilistic
//! marking: nested marking has "a drawback of large message overhead since
//! each forwarding node needs to place a mark on the packet").
//!
//! For each scheme and path length, measures per-packet byte overhead at
//! the sink, mean marks per packet, and the network-wide energy a single
//! packet's forwarding costs (Mica2 energy model) — the quantities behind
//! the paper's nested-vs-probabilistic trade-off.

use rand::rngs::StdRng;
use rand::SeedableRng;

use pnm_analysis::OnlineStats;
use pnm_core::NodeContext;
use pnm_crypto::KeyStore;
use pnm_net::EnergyModel;
use pnm_wire::NodeId;

use crate::runner::bogus_packet;
use crate::scenario::{PathScenario, SchemeKind};
use crate::table::Table;

/// Overhead measurements for one (scheme, path length) cell.
#[derive(Clone, Debug)]
pub struct OverheadCell {
    /// Scheme measured.
    pub scheme: SchemeKind,
    /// Path length.
    pub path_len: u16,
    /// Bytes of marking overhead per delivered packet.
    pub overhead_bytes: OnlineStats,
    /// Marks per delivered packet.
    pub marks: OnlineStats,
    /// Network-wide energy per delivered packet, microjoules (tx+rx of the
    /// full packet at every hop).
    pub energy_uj: OnlineStats,
}

/// Measures `packets` packets of `scheme` over an `n`-hop path.
pub fn measure_overhead(
    scheme_kind: SchemeKind,
    n: u16,
    packets: usize,
    seed: u64,
) -> OverheadCell {
    let scenario = PathScenario::paper(n);
    let keys = KeyStore::derive_from_master(b"overhead", n);
    // Nested marks deterministically; probabilistic schemes use np = 3.
    let config = if scheme_kind.is_probabilistic() {
        scenario.config()
    } else {
        pnm_core::MarkingConfig::builder()
            .marking_probability(1.0)
            .build()
    };
    let scheme = scheme_kind.build(config);
    let energy = EnergyModel::mica2();
    let mut rng = StdRng::seed_from_u64(seed);

    let mut cell = OverheadCell {
        scheme: scheme_kind,
        path_len: n,
        overhead_bytes: OnlineStats::new(),
        marks: OnlineStats::new(),
        energy_uj: OnlineStats::new(),
    };

    for seq in 0..packets as u64 {
        let mut pkt = bogus_packet(seq, seed);
        let mut joules_nj = 0u64;
        for hop in 0..n {
            let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
            scheme.mark(&ctx, &mut pkt, &mut rng);
            // The packet, as it exists leaving this hop, is transmitted
            // once and received once (except the final hop: the sink's
            // energy is not metered).
            let bytes = pkt.encoded_len() as u64;
            joules_nj += bytes * energy.tx_nj_per_byte;
            if hop + 1 < n {
                joules_nj += bytes * energy.rx_nj_per_byte;
            }
        }
        cell.overhead_bytes.push(pkt.marking_overhead() as f64);
        cell.marks.push(pkt.mark_count() as f64);
        cell.energy_uj.push(joules_nj as f64 / 1000.0);
    }
    cell
}

/// The overhead table: schemes × path lengths.
pub fn overhead_table(packets: usize, seed: u64) -> Table {
    let mut t = Table::new(
        format!("Marking overhead per packet ({packets} packets per cell, np=3 for probabilistic schemes)"),
        vec![
            "scheme",
            "path len",
            "overhead bytes",
            "marks/pkt",
            "energy uJ/pkt",
        ],
    );
    for scheme in [SchemeKind::Nested, SchemeKind::Pnm, SchemeKind::ExtendedAms] {
        for n in [10u16, 20, 30, 50] {
            let c = measure_overhead(scheme, n, packets, seed);
            t.push_row(vec![
                scheme.name().to_string(),
                n.to_string(),
                format!("{:.1}", c.overhead_bytes.mean()),
                format!("{:.2}", c.marks.mean()),
                format!("{:.1}", c.energy_uj.mean()),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_overhead_grows_linearly_pnm_stays_flat() {
        let nested10 = measure_overhead(SchemeKind::Nested, 10, 50, 1);
        let nested30 = measure_overhead(SchemeKind::Nested, 30, 50, 1);
        let pnm10 = measure_overhead(SchemeKind::Pnm, 10, 50, 1);
        let pnm30 = measure_overhead(SchemeKind::Pnm, 30, 50, 1);

        // Nested: marks == path length, overhead ∝ n.
        assert_eq!(nested10.marks.mean(), 10.0);
        assert_eq!(nested30.marks.mean(), 30.0);
        let ratio = nested30.overhead_bytes.mean() / nested10.overhead_bytes.mean();
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio}");

        // PNM: ~3 marks regardless of n.
        assert!(
            (pnm10.marks.mean() - 3.0).abs() < 0.8,
            "{}",
            pnm10.marks.mean()
        );
        assert!(
            (pnm30.marks.mean() - 3.0).abs() < 0.8,
            "{}",
            pnm30.marks.mean()
        );
        let flat = pnm30.overhead_bytes.mean() / pnm10.overhead_bytes.mean();
        assert!(flat < 1.5, "PNM overhead should stay ~flat, ratio {flat}");
    }

    #[test]
    fn pnm_cheaper_than_nested_on_long_paths() {
        let nested = measure_overhead(SchemeKind::Nested, 30, 50, 2);
        let pnm = measure_overhead(SchemeKind::Pnm, 30, 50, 2);
        assert!(
            pnm.overhead_bytes.mean() < nested.overhead_bytes.mean() / 4.0,
            "pnm {} vs nested {}",
            pnm.overhead_bytes.mean(),
            nested.overhead_bytes.mean()
        );
        assert!(pnm.energy_uj.mean() < nested.energy_uj.mean());
    }

    #[test]
    fn anonymous_marks_cost_more_bytes_than_plain_per_mark() {
        // PNM's anon id is 8 bytes vs 2 for a plain id: per-mark overhead
        // is higher, bought back by marking fewer hops.
        let pnm = measure_overhead(SchemeKind::Pnm, 20, 80, 3);
        let ams = measure_overhead(SchemeKind::ExtendedAms, 20, 80, 3);
        let pnm_per_mark = pnm.overhead_bytes.mean() / pnm.marks.mean();
        let ams_per_mark = ams.overhead_bytes.mean() / ams.marks.mean();
        assert!(pnm_per_mark > ams_per_mark);
    }

    #[test]
    fn overhead_table_shape() {
        let t = overhead_table(20, 4);
        assert_eq!(t.len(), 12);
    }

    #[test]
    fn measured_overhead_matches_closed_form() {
        // The wire-level byte formulas in pnm-analysis must agree with
        // bytes actually produced by marking real packets.
        use pnm_analysis::{nested_overhead_bytes, pnm_overhead_bytes};
        let w = 8;
        for n in [10u16, 30] {
            let nested = measure_overhead(SchemeKind::Nested, n, 40, 9);
            let analytic = nested_overhead_bytes(n as usize, w);
            assert!(
                (nested.overhead_bytes.mean() - analytic).abs() < 1e-9,
                "nested n={n}: measured {} vs analytic {analytic}",
                nested.overhead_bytes.mean()
            );
            let pnm = measure_overhead(SchemeKind::Pnm, n, 400, 9);
            let analytic = pnm_overhead_bytes(n as usize, 3.0 / n as f64, w);
            assert!(
                (pnm.overhead_bytes.mean() - analytic).abs() < 6.0,
                "pnm n={n}: measured {} vs analytic {analytic}",
                pnm.overhead_bytes.mean()
            );
        }
    }
}
