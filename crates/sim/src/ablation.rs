//! Ablation experiments for the design choices DESIGN.md calls out.
//!
//! 1. [`tradeoff_table`] — deterministic nested marking vs PNM: nested
//!    identifies a mole from a *single* packet but pays `n` marks on every
//!    packet forever; PNM needs tens of packets but stays ~3 marks. The
//!    table measures both axes so the §4 trade-off is a number, not prose.
//! 2. [`mac_width_table`] — the paper never fixes the truncated-MAC width.
//!    Too narrow and a mole can *brute-force* marks that frame innocent
//!    nodes (a forged mark verifies with probability `2^-8w`); too wide
//!    wastes radio bytes. The table measures forged-mark acceptance and
//!    whether the traceback gets misled, per width.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

use pnm_analysis::OnlineStats;
use pnm_core::{
    MarkingConfig, MarkingScheme, NodeContext, ProbabilisticNestedMarking, SinkConfig, SinkEngine,
    VerifyMode,
};
use pnm_crypto::{KeyStore, MacTag};
use pnm_wire::{Mark, NodeId};

use crate::runner::{bogus_packet, run_honest_path};
use crate::scenario::{PathScenario, SchemeKind};
use crate::table::Table;

/// One row of the nested-vs-PNM trade-off.
#[derive(Clone, Debug)]
pub struct TradeoffRow {
    /// Path length.
    pub path_len: u16,
    /// Scheme measured.
    pub scheme: SchemeKind,
    /// Packets until correct, settled identification (mean over runs).
    pub packets_to_identify: OnlineStats,
    /// Marking overhead bytes transmitted *in total* until identification
    /// (the real cost of catching one mole).
    pub bytes_to_identify: OnlineStats,
}

/// Measures the identification-latency vs overhead trade-off.
pub fn measure_tradeoff(scheme: SchemeKind, n: u16, runs: usize, seed: u64) -> TradeoffRow {
    let scenario = PathScenario::paper(n);
    let mut row = TradeoffRow {
        path_len: n,
        scheme,
        packets_to_identify: OnlineStats::new(),
        bytes_to_identify: OnlineStats::new(),
    };
    let per_packet_overhead = match scheme {
        SchemeKind::Nested => pnm_analysis::nested_overhead_bytes(n as usize, 8),
        _ => pnm_analysis::pnm_overhead_bytes(n as usize, (3.0 / n as f64).min(1.0), 8),
    };
    for run in 0..runs as u64 {
        let r = run_honest_path(&scenario, scheme, 400, seed ^ (run << 16));
        if let Some(pkts) = r.first_stable_correct() {
            row.packets_to_identify.push(pkts as f64);
            row.bytes_to_identify
                .push(pkts as f64 * per_packet_overhead);
        }
    }
    row
}

/// The nested-vs-PNM trade-off table.
pub fn tradeoff_table(runs: usize, seed: u64) -> Table {
    let mut t = Table::new(
        format!("Ablation: deterministic nested vs PNM — latency and bytes to identification ({runs} runs)"),
        vec![
            "scheme",
            "path len",
            "pkts to identify",
            "overhead B/pkt",
            "total overhead B to identify",
        ],
    );
    for n in [10u16, 20, 30] {
        for scheme in [SchemeKind::Nested, SchemeKind::Pnm] {
            let r = measure_tradeoff(scheme, n, runs, seed);
            let per_pkt = r.bytes_to_identify.mean() / r.packets_to_identify.mean().max(1.0);
            t.push_row(vec![
                scheme.name().to_string(),
                n.to_string(),
                format!("{:.1}", r.packets_to_identify.mean()),
                format!("{per_pkt:.0}"),
                format!("{:.0}", r.bytes_to_identify.mean()),
            ]);
        }
    }
    t
}

/// One row of the MAC-width ablation.
#[derive(Clone, Debug)]
pub struct MacWidthRow {
    /// Truncated MAC width in bytes. The verifier rejects anything below
    /// [`pnm_crypto::hmac::MIN_TAG_LEN`], so width 0 is unrepresentable —
    /// the ablation sweeps 1..=8.
    pub width: usize,
    /// Forged marks the mole submitted.
    pub forgeries_attempted: usize,
    /// Forgeries that verified (brute-force hits).
    pub forgeries_accepted: usize,
    /// The analytic acceptance probability `2^-8w`.
    pub analytic_acceptance: f64,
    /// Whether the accumulated accepted forgeries misled the traceback
    /// (an innocent framed upstream of the true head).
    pub misled: bool,
}

/// Runs the MAC-width ablation: a mole appends marks that *frame* innocent
/// node `n-1`'s upstream position with guessed MACs; narrow MACs let some
/// guesses verify.
pub fn measure_mac_width(width: usize, attempts: usize, seed: u64) -> MacWidthRow {
    let n = 6u16;
    let frame_victim = NodeId(42); // an innocent, off-path but provisioned node
    let keys = KeyStore::derive_from_master(b"mac-width", 64);
    let cfg = MarkingConfig::builder()
        .mac_width(width)
        .marking_probability(1.0)
        .build();
    let scheme = ProbabilisticNestedMarking::new(cfg);
    let keys = Arc::new(keys);
    let mut sink = SinkEngine::new(Arc::clone(&keys), SinkConfig::new(VerifyMode::Nested));
    let mut rng = StdRng::seed_from_u64(seed);

    let mut accepted = 0usize;
    for seq in 0..attempts as u64 {
        let mut pkt = bogus_packet(seq, seed);
        // The mole (upstream of everyone) frames the victim first: it
        // guesses the victim's anonymous id AND MAC. Guessing the anon id
        // is itself hard; to isolate MAC width, the mole uses the *plain*
        // id form which nested verification also accepts.
        let mut guess = vec![0u8; width];
        rng.fill(&mut guess[..]);
        let fake = Mark::plain(frame_victim, MacTag::from_bytes(&guess));
        pkt.push_mark(fake);
        // Honest forwarders mark on top.
        for hop in 0..n {
            let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
            scheme.mark(&ctx, &mut pkt, &mut rng);
        }
        // The engine's outcome carries the verified chain: one pass serves
        // both the acceptance check and the streaming traceback.
        let chain = sink.ingest(&pkt).chain.expect("no classifier configured");
        if chain.nodes.contains(&frame_victim) {
            accepted += 1;
        }
    }

    let misled = sink.unequivocal_source() == Some(frame_victim);
    MacWidthRow {
        width,
        forgeries_attempted: attempts,
        forgeries_accepted: accepted,
        analytic_acceptance: (256f64).powi(-(width as i32)),
        misled,
    }
}

/// The MAC-width ablation table.
pub fn mac_width_table(attempts: usize, seed: u64) -> Table {
    let mut t = Table::new(
        format!("Ablation: MAC width vs brute-force framing ({attempts} forged marks per width)"),
        vec![
            "MAC width (bytes)",
            "forgeries accepted",
            "analytic P[accept]",
            "traceback misled",
        ],
    );
    for width in [1usize, 2, 4, 8] {
        let r = measure_mac_width(width, attempts, seed);
        t.push_row(vec![
            width.to_string(),
            format!("{}/{}", r.forgeries_accepted, r.forgeries_attempted),
            format!("{:.2e}", r.analytic_acceptance),
            if r.misled { "YES" } else { "no" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_identifies_in_one_packet_but_costs_more() {
        let nested = measure_tradeoff(SchemeKind::Nested, 20, 5, 3);
        let pnm = measure_tradeoff(SchemeKind::Pnm, 20, 5, 3);
        assert_eq!(nested.packets_to_identify.mean(), 1.0);
        assert!(pnm.packets_to_identify.mean() > 10.0);
        // Per-packet, PNM is ~4x cheaper at n=20 (242 vs 56 bytes)…
        let nested_rate = nested.bytes_to_identify.mean() / nested.packets_to_identify.mean();
        let pnm_rate = pnm.bytes_to_identify.mean() / pnm.packets_to_identify.mean();
        assert!(nested_rate > 4.0 * pnm_rate);
    }

    #[test]
    fn one_byte_macs_are_brute_forceable() {
        let r = measure_mac_width(1, 4000, 7);
        // Analytic 1/256 ≈ 0.39%: expect roughly 16 hits in 4000.
        assert!(
            r.forgeries_accepted >= 4,
            "accepted {} of {}",
            r.forgeries_accepted,
            r.forgeries_attempted
        );
        let rate = r.forgeries_accepted as f64 / r.forgeries_attempted as f64;
        assert!((rate - 1.0 / 256.0).abs() < 4.0 / 256.0, "rate {rate}");
    }

    #[test]
    fn eight_byte_macs_resist_brute_force() {
        let r = measure_mac_width(8, 4000, 7);
        assert_eq!(r.forgeries_accepted, 0);
        assert!(!r.misled);
    }

    #[test]
    fn tables_render() {
        assert_eq!(tradeoff_table(2, 5).len(), 6);
        assert_eq!(mac_width_table(300, 5).len(), 4);
    }
}
