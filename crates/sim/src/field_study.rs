//! Capstone field study: everything at once, at network scale.
//!
//! A 300-node random-geometric deployment (tree-routed, Mica2 radio) is
//! infiltrated by several source moles that flood bogus reports from
//! different corners. The sink runs the sharded traceback service
//! ([`pnm_service::ServicePool`]) — packets stream into per-shard
//! [`pnm_core::SinkEngine`]s and each round's drain merges the shards'
//! evidence into the multi-source reconstruction (§9) — quarantines each
//! suspected neighborhood, and repeats until the field is clean,
//! measuring wall (simulated) time, packets, and energy drained per
//! round.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use pnm_core::{
    quarantine_set, IsolationPolicy, MarkingScheme, NodeContext, ProbabilisticNestedMarking,
    QuarantineFilter, SinkConfig, VerifyMode,
};
use pnm_crypto::KeyStore;
use pnm_net::{Network, RadioModel, Topology};
use pnm_service::{ServiceConfig, ServicePool};
use pnm_wire::{NodeId, Packet};

use crate::runner::bogus_packet;
use crate::table::Table;

/// One cleanup round's record.
#[derive(Clone, Debug)]
pub struct FieldRound {
    /// Round number (1-based).
    pub round: usize,
    /// Moles still active when the round began.
    pub moles_at_large: usize,
    /// Bogus packets delivered to the sink this round.
    pub delivered: usize,
    /// Network energy burned by the attack this round (millijoules).
    pub energy_mj: f64,
    /// Source regions the sink identified.
    pub regions_found: usize,
    /// Moles caught (quarantine covered them) this round.
    pub caught: usize,
}

/// Result of the whole study.
#[derive(Clone, Debug)]
pub struct FieldStudy {
    /// Per-round records.
    pub rounds: Vec<FieldRound>,
    /// Moles never caught.
    pub remaining: usize,
    /// Nodes wrongly quarantined at any point (collateral).
    pub innocents_quarantined: usize,
}

/// Worker shards the sink-side service runs per round. The round outcome
/// is shard-count invariant (the service's merged evidence equals a
/// sequential engine's), so this is purely an operational knob.
const SINK_SHARDS: usize = 4;

/// Runs the field study with `num_moles` source moles on a 300-node field,
/// `packets_per_round` injections per mole per round.
pub fn run_field_study(num_moles: usize, packets_per_round: usize, seed: u64) -> FieldStudy {
    let topo = Topology::random_geometric(300, 200.0, 25.0, 42);
    let net = Network::new(topo.clone()).with_radio(RadioModel::mica2());
    let n_nodes = topo.len() as u16;
    let keys = Arc::new(KeyStore::derive_from_master(b"field-study", n_nodes));

    // Moles: the `num_moles` nodes with the longest routes (spread corners).
    let mut by_depth: Vec<u16> = (0..n_nodes)
        .filter(|&i| net.routing().hops_to_sink(i).is_some())
        .collect();
    by_depth.sort_by_key(|&i| std::cmp::Reverse(net.routing().hops_to_sink(i).unwrap()));
    let mut moles: Vec<u16> = Vec::new();
    for &cand in &by_depth {
        // Keep moles pairwise non-adjacent so their regions are distinct.
        if moles.iter().all(|&m| !topo.in_range(m, cand) && m != cand) {
            moles.push(cand);
            if moles.len() == num_moles {
                break;
            }
        }
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut quarantine = QuarantineFilter::new();
    let mut study = FieldStudy {
        rounds: Vec::new(),
        remaining: moles.len(),
        innocents_quarantined: 0,
    };

    let max_rounds = num_moles + 2;
    for round in 1..=max_rounds {
        let active: Vec<u16> = moles
            .iter()
            .copied()
            .filter(|&m| quarantine.permits(NodeId(m)))
            .collect();
        if active.is_empty() {
            break;
        }

        // A fresh service per round: each round's traceback only sees the
        // still-at-large moles' traffic. The Arc'd keystore is shared, not
        // re-derived; delivered packets stream into the sharded pool and
        // the end-of-round drain merges the shards' evidence.
        let sink = ServicePool::new(
            Arc::clone(&keys),
            ServiceConfig::new(SinkConfig::new(VerifyMode::Nested)).shards(SINK_SHARDS),
        );
        let mut delivered = 0usize;
        let mut energy_nj = 0u64;

        for &mole in &active {
            let path = net.routing().path_to_sink(mole).expect("routed");
            let scheme = ProbabilisticNestedMarking::paper_default(path.len().max(3));
            for seq in 0..packets_per_round {
                let mut pkt: Packet =
                    bogus_packet((round * 100_000 + seq) as u64, seed ^ mole as u64);
                let mut blocked = false;
                for (idx, &hop) in path.iter().enumerate() {
                    // Quarantine: the first honest hop after a quarantined
                    // node drops its traffic.
                    if idx > 0 && !quarantine.permits(NodeId(path[idx - 1])) {
                        blocked = true;
                        break;
                    }
                    if hop != mole {
                        let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
                        scheme.mark(&ctx, &mut pkt, &mut rng);
                    }
                    // Energy: each hop transmits the packet as it stands.
                    energy_nj += pkt.encoded_len() as u64 * 16_250;
                }
                if blocked || !quarantine.permits(NodeId(mole)) {
                    continue;
                }
                delivered += 1;
                sink.ingest(pkt).expect("round pool accepts until drained");
            }
        }

        // Drain the round: shards finish their backlogs and their route
        // evidence merges into one engine, then multi-source localization
        // finds one region per remaining mole.
        let round_report = sink.drain();
        debug_assert_eq!(round_report.snapshot.processed as usize, delivered);
        let regions = round_report.engine.source_regions();
        let mut caught = 0usize;
        for region in &regions {
            let q = quarantine_set(
                &pnm_core::Localization::MostUpstream(region.head),
                IsolationPolicy::OneHopNeighborhood,
                |c| topo.neighbors(c.raw()).into_iter().map(NodeId).collect(),
            );
            for node in &q {
                if active.contains(&node.raw()) {
                    caught += 1;
                } else if !moles.contains(&node.raw()) {
                    study.innocents_quarantined += 1;
                }
            }
            quarantine.quarantine(q);
        }

        study.rounds.push(FieldRound {
            round,
            moles_at_large: active.len(),
            delivered,
            energy_mj: energy_nj as f64 / 1e6,
            regions_found: regions.len(),
            caught,
        });
        study.remaining = moles
            .iter()
            .filter(|&&m| quarantine.permits(NodeId(m)))
            .count();
        if caught == 0 {
            break;
        }
    }
    study
}

/// The field-study table.
pub fn field_study_table(num_moles: usize, packets_per_round: usize, seed: u64) -> Table {
    let s = run_field_study(num_moles, packets_per_round, seed);
    let mut t = Table::new(
        format!(
            "Field study: {num_moles} source moles on a 300-node field, \
             {packets_per_round} pkts/mole/round"
        ),
        vec![
            "round",
            "moles at large",
            "bogus delivered",
            "attack energy mJ",
            "regions found",
            "caught",
        ],
    );
    for r in &s.rounds {
        t.push_row(vec![
            r.round.to_string(),
            r.moles_at_large.to_string(),
            r.delivered.to_string(),
            format!("{:.1}", r.energy_mj),
            r.regions_found.to_string(),
            r.caught.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_moles_all_caught() {
        let s = run_field_study(3, 250, 7);
        assert_eq!(s.remaining, 0, "{s:?}");
        // All three may be caught in one round (regions are parallel) or
        // over a few; the loop must terminate with everyone quarantined.
        let total_caught: usize = s.rounds.iter().map(|r| r.caught).sum();
        assert!(total_caught >= 3);
    }

    #[test]
    fn single_mole_field_matches_chain_story() {
        let s = run_field_study(1, 250, 3);
        assert_eq!(s.remaining, 0, "{s:?}");
        assert!(s.rounds[0].regions_found >= 1);
    }

    #[test]
    fn quarantine_quiets_the_attack() {
        let s = run_field_study(2, 250, 11);
        assert_eq!(s.remaining, 0, "{s:?}");
        if s.rounds.len() >= 2 {
            // Later rounds deliver less attack traffic than the first.
            assert!(
                s.rounds.last().unwrap().delivered <= s.rounds[0].delivered,
                "{s:?}"
            );
        }
    }

    #[test]
    fn table_renders() {
        let t = field_study_table(2, 150, 5);
        assert!(!t.is_empty());
    }
}
