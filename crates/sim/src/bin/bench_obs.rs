//! Measures what observability costs on the canonical sink scenario and
//! pins the tentpole claim: a disabled tracer is free.
//!
//! ```text
//! bench-obs [--smoke] [--out FILE]
//! ```
//!
//! Four engine variants ingest the same seeded stream — the paper's §6.2
//! setting (20-hop path, PNM np = 3, distinct reports):
//!
//! * `baseline` — a plain engine, no observability configured.
//! * `noop_tracer` — an explicit [`Tracer::noop`]; this is the disabled
//!   path the whole workspace runs by default, and the bench **asserts**
//!   its overhead over `baseline` stays under 2% (5% in `--smoke`, which
//!   runs fewer, noisier rounds).
//! * `stage_timing` — per-stage latency histograms on (two clock reads
//!   per stage).
//! * `ring_collector` — a live ring-buffer collector recording every
//!   span; the steepest configuration, reported but not bounded.
//!
//! The variants run interleaved, several rounds each, and the minimum
//! wall time per variant is reported (min-of-rounds discards scheduler
//! noise). Every variant must produce byte-identical pipeline counters —
//! instrumentation that changed an answer would fail the bench outright.
//! Results land in `BENCH_obs.json`.

use std::env;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use pnm_core::{NodeContext, SinkConfig, SinkCounters, SinkEngine, StageMetrics, VerifyMode};
use pnm_obs::{JsonValue, Tracer};
use pnm_sim::{bogus_packet, PathScenario, SchemeKind};
use pnm_wire::{NodeId, Packet};

const PATH_LEN: u16 = 20;
const SEED: u64 = 2007;
const PACKETS: usize = 200;
const ROUNDS: usize = 9;
const SMOKE_PACKETS: usize = 100;
const SMOKE_ROUNDS: usize = 5;
const FULL_LIMIT_PCT: f64 = 2.0;
const SMOKE_LIMIT_PCT: f64 = 5.0;

const VARIANTS: [&str; 4] = ["baseline", "noop_tracer", "stage_timing", "ring_collector"];

/// Builds the canonical distinct-report stream once; every variant
/// ingests the identical packets.
fn build_stream(packets: usize) -> (Arc<pnm_crypto::KeyStore>, Vec<Packet>) {
    let scenario = PathScenario::paper(PATH_LEN);
    let keys = Arc::new(scenario.keystore(0));
    let scheme = SchemeKind::Pnm.build(scenario.config());
    let mut rng = StdRng::seed_from_u64(SEED);
    let stream = (0..packets as u64)
        .map(|seq| {
            let mut pkt = bogus_packet(seq, SEED);
            for hop in 0..PATH_LEN {
                let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
                scheme.mark(&ctx, &mut pkt, &mut rng);
            }
            pkt
        })
        .collect();
    (keys, stream)
}

/// Ingests the stream through a fresh engine and returns wall nanoseconds
/// plus the counters and stage metrics it ended with.
fn run_once(
    keys: &Arc<pnm_crypto::KeyStore>,
    stream: &[Packet],
    cfg: SinkConfig,
) -> (u64, SinkCounters, StageMetrics) {
    let mut sink = SinkEngine::new(Arc::clone(keys), cfg);
    let start = Instant::now();
    for pkt in stream {
        sink.ingest(pkt);
    }
    let ns = start.elapsed().as_nanos() as u64;
    (ns, sink.counters(), sink.stage_metrics().clone())
}

fn variant_config(variant: &str) -> SinkConfig {
    let base = SinkConfig::new(VerifyMode::Nested);
    match variant {
        "baseline" => base,
        "noop_tracer" => base.tracer(Tracer::noop()),
        "stage_timing" => base.stage_timing(true),
        "ring_collector" => base.tracer(Tracer::ring(1 << 16).0),
        other => unreachable!("unknown variant {other}"),
    }
}

fn main() -> ExitCode {
    let mut out = "BENCH_obs.json".to_string();
    let mut smoke = false;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(v) => out = v,
                None => {
                    eprintln!("error: --out needs a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let (packets, rounds, limit_pct) = if smoke {
        (SMOKE_PACKETS, SMOKE_ROUNDS, SMOKE_LIMIT_PCT)
    } else {
        (PACKETS, ROUNDS, FULL_LIMIT_PCT)
    };
    let (keys, stream) = build_stream(packets);

    let mut min_ns = [u64::MAX; VARIANTS.len()];
    let mut counters: Vec<Option<SinkCounters>> = vec![None; VARIANTS.len()];
    let mut timed_stages = StageMetrics::new();
    for _ in 0..rounds {
        for (i, variant) in VARIANTS.iter().enumerate() {
            let (ns, c, stages) = run_once(&keys, &stream, variant_config(variant));
            min_ns[i] = min_ns[i].min(ns);
            match &counters[i] {
                Some(first) => assert_eq!(
                    first, &c,
                    "{variant} counters changed between rounds — not deterministic"
                ),
                None => counters[i] = Some(c),
            }
            if *variant == "stage_timing" {
                timed_stages = stages;
            }
        }
    }

    // Instrumentation must never change an answer.
    let base_counters = counters[0].expect("rounds >= 1");
    for (i, variant) in VARIANTS.iter().enumerate() {
        assert_eq!(
            Some(&base_counters),
            counters[i].as_ref(),
            "{variant} produced different pipeline counters than baseline"
        );
    }

    let base_ns = min_ns[0] as f64;
    let overhead_pct = |ns: u64| -> f64 { (ns as f64 / base_ns - 1.0) * 100.0 };
    let noop_pct = overhead_pct(min_ns[1]);

    let variant_entries: Vec<(String, JsonValue)> = VARIANTS
        .iter()
        .enumerate()
        .map(|(i, variant)| {
            let mut fields = vec![
                ("min_wall_us", JsonValue::UInt(min_ns[i] / 1000)),
                ("ns_per_packet", JsonValue::UInt(min_ns[i] / packets as u64)),
            ];
            if i > 0 {
                fields.push(("overhead_pct", JsonValue::f1(overhead_pct(min_ns[i]))));
            }
            (variant.to_string(), JsonValue::obj(fields))
        })
        .collect();
    let doc = JsonValue::obj(vec![
        (
            "scenario",
            JsonValue::Str(format!(
                "PNM np=3, {PATH_LEN}-hop path, {packets} distinct-report packets, seed {SEED}"
            )),
        ),
        (
            "claim",
            JsonValue::Str(
                "a disabled (no-op) tracer costs nothing on the sink hot path, and no \
                 observability configuration changes a pipeline counter"
                    .to_string(),
            ),
        ),
        (
            "mode",
            JsonValue::Str(if smoke { "smoke" } else { "full" }.to_string()),
        ),
        ("rounds", JsonValue::UInt(rounds as u64)),
        ("noop_overhead_pct", JsonValue::f1(noop_pct)),
        ("noop_overhead_limit_pct", JsonValue::f1(limit_pct)),
        ("counters_identical_across_variants", JsonValue::Bool(true)),
        ("variants", JsonValue::Object(variant_entries)),
        ("stage_ns", timed_stages.to_json_value()),
    ]);
    let json = doc.render_pretty();
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    print!("{json}");

    for (i, variant) in VARIANTS.iter().enumerate() {
        println!(
            "{variant:<16} min {:>8} us  ({:>5} ns/pkt)",
            min_ns[i] / 1000,
            min_ns[i] / packets as u64,
        );
    }
    println!("noop tracer overhead: {noop_pct:.1}% (limit {limit_pct:.1}%)");
    if noop_pct >= limit_pct {
        eprintln!("noop tracer overhead {noop_pct:.1}% exceeds the {limit_pct:.1}% budget");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
