//! Measures what observability costs on the canonical sink scenario and
//! pins the tentpole claim: a disabled tracer is free.
//!
//! ```text
//! bench-obs [--smoke] [--out FILE]
//! ```
//!
//! Seven engine variants ingest the same seeded stream — the paper's §6.2
//! setting (20-hop path, PNM np = 3, distinct reports):
//!
//! * `baseline` — a plain engine, no observability configured.
//! * `noop_tracer` — an explicit [`Tracer::noop`]; this is the disabled
//!   path the whole workspace runs by default, and the bench **asserts**
//!   its overhead over `baseline` stays under 2% (5% in `--smoke`, which
//!   runs fewer, noisier rounds).
//! * `stage_timing` — per-stage latency histograms on (two clock reads
//!   per stage).
//! * `ring_collector` — the legacy single-`Mutex` ring recording every
//!   span; kept as the yardstick the sharded collector replaces,
//!   reported but not bounded.
//! * `sharded_ring` — the [`ShardedRingCollector`] the flight recorder
//!   keeps armed; the always-on configuration (one packet-level span
//!   plus table-build instants — stage detail waits for a carried
//!   trace), and the bench **asserts** its overhead stays under 5%
//!   (12% in `--smoke`).
//! * `flight_recorder` — a full [`FlightRecorder`] (sharded ring + dump
//!   plumbing, never triggered); must price like `sharded_ring`.
//! * `trace_propagation` — a root span minted per packet and carried
//!   through [`SinkEngine::ingest_ctx`], pricing the full-detail traced
//!   path including per-stage spans; reported, not bounded — trace
//!   detail is per-packet opt-in, not an always-on cost.
//!
//! The variants run interleaved, several rounds each, and the minimum
//! wall time per variant is reported (min-of-rounds discards scheduler
//! noise). Every variant must produce byte-identical pipeline counters —
//! instrumentation that changed an answer would fail the bench outright.
//! Results land in `BENCH_obs.json`.

use std::env;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use pnm_core::{NodeContext, SinkConfig, SinkCounters, SinkEngine, StageMetrics, VerifyMode};
use pnm_obs::{FlightRecorder, JsonValue, ShardedRingCollector, Tracer};
use pnm_sim::{bogus_packet, PathScenario, SchemeKind};
use pnm_wire::{NodeId, Packet};

const PATH_LEN: u16 = 20;
const SEED: u64 = 2007;
const PACKETS: usize = 200;
const ROUNDS: usize = 400;
const SMOKE_PACKETS: usize = 100;
const SMOKE_ROUNDS: usize = 60;
const FULL_LIMIT_PCT: f64 = 2.0;
const SMOKE_LIMIT_PCT: f64 = 5.0;
const RING_FULL_LIMIT_PCT: f64 = 5.0;
const RING_SMOKE_LIMIT_PCT: f64 = 12.0;

const VARIANTS: [&str; 8] = [
    "baseline",
    "noop_tracer",
    "noop_collector",
    "stage_timing",
    "ring_collector",
    "sharded_ring",
    "flight_recorder",
    "trace_propagation",
];
const NOOP_IDX: usize = 1;
const SHARDED_IDX: usize = 5;

/// Builds the canonical distinct-report stream once; every variant
/// ingests the identical packets.
fn build_stream(packets: usize) -> (Arc<pnm_crypto::KeyStore>, Vec<Packet>) {
    let scenario = PathScenario::paper(PATH_LEN);
    let keys = Arc::new(scenario.keystore(0));
    let scheme = SchemeKind::Pnm.build(scenario.config());
    let mut rng = StdRng::seed_from_u64(SEED);
    let stream = (0..packets as u64)
        .map(|seq| {
            let mut pkt = bogus_packet(seq, SEED);
            for hop in 0..PATH_LEN {
                let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
                scheme.mark(&ctx, &mut pkt, &mut rng);
            }
            pkt
        })
        .collect();
    (keys, stream)
}

/// Ingests the stream through a fresh engine and returns wall nanoseconds
/// plus the counters and stage metrics it ended with.
fn run_once(
    keys: &Arc<pnm_crypto::KeyStore>,
    stream: &[Packet],
    cfg: SinkConfig,
) -> (u64, SinkCounters, StageMetrics) {
    let mut sink = SinkEngine::new(Arc::clone(keys), cfg);
    let start = Instant::now();
    for pkt in stream {
        sink.ingest(pkt);
    }
    let ns = start.elapsed().as_nanos() as u64;
    (ns, sink.counters(), sink.stage_metrics().clone())
}

/// Runs one variant over the stream with a fresh engine (and fresh
/// collector — buffered events never accumulate across rounds).
fn run_variant(
    variant: &str,
    keys: &Arc<pnm_crypto::KeyStore>,
    stream: &[Packet],
) -> (u64, SinkCounters, StageMetrics) {
    let base = SinkConfig::new(VerifyMode::Nested);
    match variant {
        "baseline" => run_once(keys, stream, base),
        "noop_tracer" => run_once(keys, stream, base.tracer(Tracer::noop())),
        "noop_collector" => run_once(
            keys,
            stream,
            base.tracer(Tracer::new(Arc::new(pnm_obs::NoopCollector))),
        ),
        "stage_timing" => run_once(keys, stream, base.stage_timing(true)),
        "ring_collector" => run_once(keys, stream, base.tracer(Tracer::ring(1 << 16).0)),
        "sharded_ring" => {
            let ring = Arc::new(ShardedRingCollector::new(8, 1 << 16));
            run_once(keys, stream, base.tracer(Tracer::new(ring)))
        }
        "flight_recorder" => {
            // Armed but never triggered: the dump directory is only
            // created when an anomaly fires, so the bench writes nothing.
            let rec = Arc::new(FlightRecorder::new(
                std::env::temp_dir().join("pnm-bench-obs-flight"),
                8,
                1 << 16,
            ));
            run_once(keys, stream, base.tracer(Tracer::new(rec)))
        }
        "trace_propagation" => {
            let tracer = Tracer::new(Arc::new(ShardedRingCollector::new(8, 1 << 16)));
            let mut sink = SinkEngine::new(Arc::clone(keys), base.tracer(tracer.clone()));
            let start = Instant::now();
            for pkt in stream {
                let span = tracer.span_root("bench.ingest");
                let ctx = span.context().expect("root span carries a context");
                sink.ingest_ctx(pkt, pkt.report.timestamp, ctx);
            }
            let ns = start.elapsed().as_nanos() as u64;
            (ns, sink.counters(), sink.stage_metrics().clone())
        }
        other => unreachable!("unknown variant {other}"),
    }
}

fn main() -> ExitCode {
    let mut out = "BENCH_obs.json".to_string();
    let mut smoke = false;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(v) => out = v,
                None => {
                    eprintln!("error: --out needs a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let (packets, rounds, limit_pct, ring_limit_pct) = if smoke {
        (
            SMOKE_PACKETS,
            SMOKE_ROUNDS,
            SMOKE_LIMIT_PCT,
            RING_SMOKE_LIMIT_PCT,
        )
    } else {
        (PACKETS, ROUNDS, FULL_LIMIT_PCT, RING_FULL_LIMIT_PCT)
    };
    let (keys, stream) = build_stream(packets);

    let mut min_ns = [u64::MAX; VARIANTS.len()];
    let mut counters: Vec<Option<SinkCounters>> = vec![None; VARIANTS.len()];
    let mut timed_stages = StageMetrics::new();
    for round in 0..rounds {
        // Alternate the visit order each round: with a fixed order, slow
        // clock/thermal drift within a round systematically taxes the
        // later variants, and min-of-rounds cannot cancel a bias that
        // points the same way every round.
        let order: Vec<usize> = if round % 2 == 0 {
            (0..VARIANTS.len()).collect()
        } else {
            (0..VARIANTS.len()).rev().collect()
        };
        for i in order {
            let variant = VARIANTS[i];
            let (ns, c, stages) = run_variant(variant, &keys, &stream);
            min_ns[i] = min_ns[i].min(ns);
            match &counters[i] {
                Some(first) => assert_eq!(
                    first, &c,
                    "{variant} counters changed between rounds — not deterministic"
                ),
                None => counters[i] = Some(c),
            }
            if variant == "stage_timing" {
                timed_stages = stages;
            }
        }
    }

    // Instrumentation must never change an answer.
    let base_counters = counters[0].expect("rounds >= 1");
    for (i, variant) in VARIANTS.iter().enumerate() {
        assert_eq!(
            Some(&base_counters),
            counters[i].as_ref(),
            "{variant} produced different pipeline counters than baseline"
        );
    }

    let base_ns = min_ns[0] as f64;
    let overhead_pct = |ns: u64| -> f64 { (ns as f64 / base_ns - 1.0) * 100.0 };
    let noop_pct = overhead_pct(min_ns[NOOP_IDX]);
    let ring_pct = overhead_pct(min_ns[SHARDED_IDX]);

    let variant_entries: Vec<(String, JsonValue)> = VARIANTS
        .iter()
        .enumerate()
        .map(|(i, variant)| {
            let mut fields = vec![
                ("min_wall_us", JsonValue::UInt(min_ns[i] / 1000)),
                ("ns_per_packet", JsonValue::UInt(min_ns[i] / packets as u64)),
            ];
            if i > 0 {
                fields.push(("overhead_pct", JsonValue::f1(overhead_pct(min_ns[i]))));
            }
            (variant.to_string(), JsonValue::obj(fields))
        })
        .collect();
    let doc = JsonValue::obj(vec![
        (
            "scenario",
            JsonValue::Str(format!(
                "PNM np=3, {PATH_LEN}-hop path, {packets} distinct-report packets, seed {SEED}"
            )),
        ),
        (
            "claim",
            JsonValue::Str(
                "a disabled (no-op) tracer costs nothing on the sink hot path, the \
                 always-on sharded flight ring stays under its overhead budget, and no \
                 observability configuration changes a pipeline counter"
                    .to_string(),
            ),
        ),
        (
            "mode",
            JsonValue::Str(if smoke { "smoke" } else { "full" }.to_string()),
        ),
        ("rounds", JsonValue::UInt(rounds as u64)),
        ("noop_overhead_pct", JsonValue::f1(noop_pct)),
        ("noop_overhead_limit_pct", JsonValue::f1(limit_pct)),
        ("sharded_ring_overhead_pct", JsonValue::f1(ring_pct)),
        (
            "sharded_ring_overhead_limit_pct",
            JsonValue::f1(ring_limit_pct),
        ),
        ("counters_identical_across_variants", JsonValue::Bool(true)),
        ("variants", JsonValue::Object(variant_entries)),
        ("stage_ns", timed_stages.to_json_value()),
    ]);
    let json = doc.render_pretty();
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    print!("{json}");

    for (i, variant) in VARIANTS.iter().enumerate() {
        println!(
            "{variant:<16} min {:>8} us  ({:>5} ns/pkt)",
            min_ns[i] / 1000,
            min_ns[i] / packets as u64,
        );
    }
    println!("noop tracer overhead: {noop_pct:.1}% (limit {limit_pct:.1}%)");
    println!("sharded ring overhead: {ring_pct:.1}% (limit {ring_limit_pct:.1}%)");
    if noop_pct >= limit_pct {
        eprintln!("noop tracer overhead {noop_pct:.1}% exceeds the {limit_pct:.1}% budget");
        return ExitCode::FAILURE;
    }
    if ring_pct >= ring_limit_pct {
        eprintln!("sharded ring overhead {ring_pct:.1}% exceeds the {ring_limit_pct:.1}% budget");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
