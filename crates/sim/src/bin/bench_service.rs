//! Sweeps the sharded traceback service over shard counts on the canonical
//! 20-hop scenario and records throughput + telemetry into
//! `BENCH_service.json`.
//!
//! ```text
//! bench-service [--smoke] [--out FILE] [--trace FILE]
//! ```
//!
//! Scenario: the paper's §6.2 setting — a 20-hop path, PNM with np = 3,
//! seed 2007 — under a *report-cycling* load: the stream cycles through
//! more distinct reports than any single engine's anonymous-ID table cache
//! can hold. Cycling is the LRU worst case: one engine gets a 0% hit rate
//! and rebuilds the 20-entry table for every packet. The service hash-
//! partitions packets by report, so `k` shards hold `k×` the aggregate
//! cache capacity; once the per-shard working set fits, rebuilds vanish
//! and per-packet cost drops to the ~3 mark verifications. The measured
//! speedup is therefore a *cache-capacity* effect — real on a single core
//! (this is how the sweep can beat 2.5× on one CPU), and the run records
//! the hit rates that explain it alongside the wall-clock numbers.
//!
//! Every run also digests the sink's verdict outputs (localization, source
//! regions, quarantine set, partition-invariant counters); the sweep fails
//! if any shard count disagrees — throughput must not change the answer.
//!
//! `--smoke` runs a down-scaled sweep (shards 1 and 4) and skips the JSON
//! artifact: a CI-speed check that the service produces identical outputs
//! across shard counts on this scenario.
//!
//! `--trace FILE` attaches a ring-buffer trace collector to every shard
//! engine and writes the pipeline spans as JSONL to FILE. Each run also
//! records the per-stage latency breakdown (`stage_ns`) from the shard
//! engines' [`StageMetrics`](pnm_core::StageMetrics); neither changes the
//! output digest the sweep checks.

use std::env;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use pnm_core::{IsolationPolicy, NodeContext, SinkConfig, VerifyMode};
use pnm_obs::Tracer;
use pnm_service::{ServiceConfig, ServicePool, ServiceSnapshot};
use pnm_sim::{PathScenario, SchemeKind};
use pnm_wire::{Location, NodeId, Packet, Report};

const PATH_LEN: u16 = 20;
const SEED: u64 = 2007;
const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Wall-clock repetitions per shard count; the minimum is reported.
const REPS: usize = 3;

/// Full-sweep load: 128 cycling reports against a 48-entry per-shard
/// cache. One shard (and two) thrash; four shards fit (~32 reports each).
const FULL_REPORTS: u64 = 128;
const FULL_CACHE: usize = 48;
const FULL_ROUNDS: usize = 16;

/// Smoke-sweep load: same shape, CI-sized.
const SMOKE_REPORTS: u64 = 32;
const SMOKE_CACHE: usize = 12;
const SMOKE_ROUNDS: usize = 4;

struct RunResult {
    shards: usize,
    wall_ms: f64,
    pkts_per_sec: f64,
    snapshot: ServiceSnapshot,
    service_p50_us: u64,
    service_p99_us: u64,
    digest: String,
}

/// Builds the packet stream once: `rounds` full cycles over
/// `distinct_reports` reports, all marked along the canonical 20-hop path.
fn build_packets(distinct_reports: u64, rounds: usize) -> (Arc<pnm_crypto::KeyStore>, Vec<Packet>) {
    let scenario = PathScenario::paper(PATH_LEN);
    let keys = Arc::new(scenario.keystore(0));
    let scheme = SchemeKind::Pnm.build(scenario.config());
    let mut rng = StdRng::seed_from_u64(SEED);
    let packets = (0..distinct_reports * rounds as u64)
        .map(|seq| {
            let rep = seq % distinct_reports;
            let report = Report::new(
                format!("bench-{rep:03}").into_bytes(),
                Location::new(rep as f32, 0.0),
                rep,
            );
            let mut pkt = Packet::new(report);
            for hop in 0..PATH_LEN {
                let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
                scheme.mark(&ctx, &mut pkt, &mut rng);
            }
            pkt
        })
        .collect();
    (keys, packets)
}

/// Ingests the stream through a `shards`-way service and returns wall
/// time, telemetry, and an output digest.
fn run_once(
    keys: &Arc<pnm_crypto::KeyStore>,
    packets: &[Packet],
    shards: usize,
    cache_capacity: usize,
    tracer: &Tracer,
) -> (f64, ServiceSnapshot, u64, u64, String) {
    let sink = SinkConfig::new(VerifyMode::Nested)
        .table_cache_capacity(cache_capacity)
        .isolation(IsolationPolicy::SuspectsOnly);
    let pool = ServicePool::new(
        Arc::clone(keys),
        ServiceConfig::new(sink)
            .shards(shards)
            .queue_capacity(256)
            .tracer(tracer.clone()),
    );
    let start = Instant::now();
    for pkt in packets {
        pool.ingest(pkt.clone()).expect("block policy never sheds");
    }
    let report = pool.drain();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let service = {
        let mut h = pnm_service::LatencyHistogram::new();
        for s in &report.snapshot.shards {
            h.merge(&s.service_us);
        }
        h
    };
    let (p50, p99) = (service.quantile_us(0.50), service.quantile_us(0.99));

    // Everything the sink *answers* must be shard-count invariant.
    let mut quarantined: Vec<u16> = report
        .engine
        .quarantine()
        .quarantined()
        .map(|n| n.raw())
        .collect();
    quarantined.sort_unstable();
    let t = report.snapshot.totals;
    let digest = format!(
        "src={:?} loc={:?} regions={:?} quarantine={:?} packets={} marks={}/{} susp={} benign={}",
        report.engine.unequivocal_source(),
        report.engine.localize(),
        report.engine.source_regions(),
        quarantined,
        t.packets,
        t.marks_verified,
        t.marks_rejected,
        t.suspicious,
        t.benign,
    );
    (wall_ms, report.snapshot, p50, p99, digest)
}

fn sweep(
    shard_counts: &[usize],
    distinct_reports: u64,
    cache_capacity: usize,
    rounds: usize,
    tracer: &Tracer,
) -> Vec<RunResult> {
    let (keys, packets) = build_packets(distinct_reports, rounds);
    shard_counts
        .iter()
        .map(|&shards| {
            let mut best: Option<(f64, ServiceSnapshot, u64, u64, String)> = None;
            for _ in 0..REPS {
                let run = run_once(&keys, &packets, shards, cache_capacity, tracer);
                if let Some(b) = &best {
                    assert_eq!(run.4, b.4, "digest changed between repetitions");
                }
                if best.as_ref().is_none_or(|b| run.0 < b.0) {
                    best = Some(run);
                }
            }
            let (wall_ms, snapshot, p50, p99, digest) = best.expect("REPS >= 1");
            RunResult {
                shards,
                pkts_per_sec: packets.len() as f64 / (wall_ms / 1e3),
                wall_ms,
                snapshot,
                service_p50_us: p50,
                service_p99_us: p99,
                digest,
            }
        })
        .collect()
}

fn run_json(r: &RunResult) -> String {
    let t = r.snapshot.totals;
    let hit_rate = t
        .table_cache_hit_rate()
        .map_or("null".to_string(), |x| format!("{x:.4}"));
    format!(
        concat!(
            "    {{\"shards\": {}, \"wall_ms\": {:.1}, \"pkts_per_sec\": {:.0}, ",
            "\"table_builds\": {}, \"table_cache_hits\": {}, \"table_cache_hit_rate\": {}, ",
            "\"hash_count\": {}, \"service_p50_us\": {}, \"service_p99_us\": {},\n",
            "     \"stage_ns\": {}}}"
        ),
        r.shards,
        r.wall_ms,
        r.pkts_per_sec,
        t.table_builds,
        t.table_cache_hits,
        hit_rate,
        t.hash_count,
        r.service_p50_us,
        r.service_p99_us,
        r.snapshot.stage_metrics().to_json(),
    )
}

fn main() -> ExitCode {
    let mut out = "BENCH_service.json".to_string();
    let mut trace: Option<String> = None;
    let mut smoke = false;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(v) => out = v,
                None => {
                    eprintln!("error: --out needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match args.next() {
                Some(v) => trace = Some(v),
                None => {
                    eprintln!("error: --trace needs a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let (shard_counts, reports, cache, rounds): (&[usize], u64, usize, usize) = if smoke {
        (&[1, 4], SMOKE_REPORTS, SMOKE_CACHE, SMOKE_ROUNDS)
    } else {
        (&SHARD_SWEEP, FULL_REPORTS, FULL_CACHE, FULL_ROUNDS)
    };
    let (tracer, ring) = match &trace {
        Some(_) => {
            let (t, r) = Tracer::ring(1 << 21);
            (t, Some(r))
        }
        None => (Tracer::noop(), None),
    };
    let results = sweep(shard_counts, reports, cache, rounds, &tracer);

    if let (Some(path), Some(ring)) = (&trace, &ring) {
        if let Err(e) = std::fs::write(path, ring.export_jsonl()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {path} ({} events, {} dropped)",
            ring.len(),
            ring.dropped()
        );
    }

    // The load-bearing check: shard count must not change any answer.
    let identical = results.iter().all(|r| r.digest == results[0].digest);
    for r in &results {
        let t = r.snapshot.totals;
        println!(
            "shards={}  wall={:7.1} ms  {:8.0} pkt/s  cache hit rate {}  p99 {} us",
            r.shards,
            r.wall_ms,
            r.pkts_per_sec,
            t.table_cache_hit_rate()
                .map_or("n/a".to_string(), |x| format!("{x:.2}")),
            r.service_p99_us,
        );
    }
    println!("outputs identical across shard counts: {identical}");
    if !identical {
        for r in &results {
            eprintln!("  shards={} digest: {}", r.shards, r.digest);
        }
        return ExitCode::FAILURE;
    }

    if smoke {
        println!("smoke sweep ok ({} packets)", reports * rounds as u64);
        return ExitCode::SUCCESS;
    }

    let speedup_4 = results
        .iter()
        .find(|r| r.shards == 4)
        .map(|r| r.pkts_per_sec / results[0].pkts_per_sec)
        .unwrap_or(f64::NAN);
    println!("speedup 4 shards vs 1: {speedup_4:.2}x");

    let json = format!(
        concat!(
            "{{\n",
            "  \"scenario\": \"PNM np=3, {}-hop path, {} packets cycling {} reports, ",
            "per-shard table cache {}, seed {}\",\n",
            "  \"mechanism\": \"report-keyed sharding multiplies aggregate anon-table cache ",
            "capacity; cycling reports thrash one engine's LRU (0% hits, full 20-entry rebuild ",
            "per packet) but fit across 4+ shard-local caches — a single-core win, not a ",
            "parallelism artifact\",\n",
            "  \"outputs_identical_across_shard_counts\": {},\n",
            "  \"speedup_4_over_1\": {:.2},\n",
            "  \"runs\": [\n{}\n  ]\n",
            "}}\n"
        ),
        PATH_LEN,
        reports * rounds as u64,
        reports,
        cache,
        SEED,
        identical,
        speedup_4,
        results.iter().map(run_json).collect::<Vec<_>>().join(",\n"),
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    print!("{json}");
    ExitCode::SUCCESS
}
