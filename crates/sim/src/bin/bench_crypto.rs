//! Measures the precomputed-key HMAC pipeline against the one-shot baseline
//! and serial vs parallel anonymous-ID table builds, recording the results
//! in `BENCH_crypto.json`.
//!
//! ```text
//! bench-crypto [--out FILE] [--smoke]
//! ```
//!
//! Two hot paths are timed:
//!
//! 1. **Mark-sized MAC**: `H_k` over a mark-sized message (report bytes plus
//!    an 8-byte anonymous ID), one-shot (`MacKey::mark_mac`, which re-derives
//!    the RFC 2104 pad blocks on every call) vs precomputed
//!    (`mark_mac_prepared` over a cached `HmacKey`, two SHA-256 compressions
//!    cheaper).
//! 2. **Anon-table build** at N ∈ {100, 300, 1000} nodes: the pre-change
//!    serial baseline (one-shot `anon_id` per node into a `Vec`-per-entry
//!    map), the precomputed serial build (`AnonTable::build`), and the
//!    4-thread sharded build (`AnonTable::build_parallel`).
//!
//! Every variant is checked for output equivalence before timing — the fast
//! paths must be pure optimizations. `--smoke` runs the equivalence checks
//! with tiny iteration counts and writes nothing, for CI.
//!
//! The parallel builds dispatch the requested worker count **without**
//! clamping to `available_parallelism`. An earlier revision clamped, which
//! silently rerouted the "parallel" series through `build_parallel`'s
//! serial fallback on small hosts and recorded
//! `parallel_threads_effective: 1` under a 4-thread label. Scoped workers
//! are scheduled by the OS regardless of core count, so dispatching all 4
//! measures the real sharded path everywhere; `parallel_threads_effective`
//! now reports the workers actually dispatched
//! ([`AnonTable::parallel_workers`]) and `host_cores` records the machine
//! so a reader can judge how much true concurrency backed the number.

use std::collections::HashMap;
use std::env;
use std::process::ExitCode;
use std::time::Instant;

use pnm_core::AnonTable;
use pnm_crypto::{anon_id, mark_mac_prepared, AnonId, KeyStore, MacKey};

const TABLE_SIZES: [u16; 3] = [100, 300, 1000];
const PARALLEL_THREADS: usize = 4;
const MAC_WIDTH: usize = 8;

/// Worker count the timed parallel builds actually dispatch: one shard per
/// requested thread (every bench table has at least `PARALLEL_THREADS`
/// nodes, so nothing is clamped by table size). Deliberately independent
/// of `available_parallelism` — see the module docs.
fn effective_threads() -> usize {
    let min_nodes = *TABLE_SIZES.iter().min().expect("non-empty") as usize;
    AnonTable::parallel_workers(min_nodes, PARALLEL_THREADS)
}

/// The host's core count, recorded alongside the dispatch count so the
/// artifact is honest about how much true concurrency backed it.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// A mark-sized message: the canonical bench report bytes plus the 8-byte
/// anonymous ID a nested mark's MAC covers.
fn mark_message() -> Vec<u8> {
    let mut msg = b"bench-crypto-report-payload-2007".to_vec();
    msg.extend_from_slice(&[0xA5; 8]);
    msg
}

/// One timed run: wall-clock nanoseconds per call of `op` over `iters`
/// calls.
fn time_once<T>(iters: usize, op: &mut dyn FnMut() -> T) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(op());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Times every variant under the same load profile: each round runs each
/// variant once (interleaved, so a slow phase of a shared machine hits all
/// variants alike), and each variant keeps its best round — the standard
/// noise-rejecting estimator for short deterministic kernels.
fn time_interleaved<T, const N: usize>(
    rounds: usize,
    iters: usize,
    ops: &mut [&mut dyn FnMut() -> T; N],
) -> [f64; N] {
    let mut best = [f64::INFINITY; N];
    for _ in 0..rounds {
        for (slot, op) in best.iter_mut().zip(ops.iter_mut()) {
            let ns = time_once(iters, *op);
            if ns < *slot {
                *slot = ns;
            }
        }
    }
    best
}

/// The pre-change serial table build: one-shot `anon_id` per node (the pad
/// blocks re-derived per hash), heap-allocated candidate list per entry.
/// Kept as the timing baseline the precomputed builds are compared against.
fn build_oneshot_baseline(keys: &KeyStore, report_bytes: &[u8]) -> HashMap<AnonId, Vec<u16>> {
    let mut map: HashMap<AnonId, Vec<u16>> = HashMap::with_capacity(keys.len());
    for (id, key) in keys.iter() {
        map.entry(anon_id(key, report_bytes, id))
            .or_default()
            .push(id);
    }
    map
}

/// Asserts the three table-build variants resolve identically.
fn check_table_equivalence(keys: &KeyStore, report_bytes: &[u8]) {
    let baseline = build_oneshot_baseline(keys, report_bytes);
    let serial = AnonTable::build(keys, report_bytes);
    let parallel = AnonTable::build_parallel(keys, report_bytes, PARALLEL_THREADS);
    assert_eq!(serial, parallel, "parallel build must be map-identical");
    assert_eq!(serial.len(), baseline.len());
    for (aid, cands) in &baseline {
        assert_eq!(serial.resolve(aid), cands.as_slice(), "aid {aid}");
        assert_eq!(parallel.resolve(aid), cands.as_slice(), "aid {aid}");
    }
}

struct MacResult {
    message_len: usize,
    oneshot_ns: f64,
    precomputed_ns: f64,
}

fn bench_mac(repeats: usize, iters: usize) -> MacResult {
    let key = MacKey::derive(b"bench-crypto-master", 7);
    let prepared = key.prepare();
    let msg = mark_message();

    // Equivalence before speed: identical tags on both paths.
    assert_eq!(
        mark_mac_prepared(&prepared, &msg, MAC_WIDTH),
        key.mark_mac(&msg, MAC_WIDTH),
        "precomputed MAC must equal one-shot"
    );

    let [oneshot_ns, precomputed_ns] = time_interleaved(
        repeats,
        iters,
        &mut [&mut || key.mark_mac(&msg, MAC_WIDTH), &mut || {
            mark_mac_prepared(&prepared, &msg, MAC_WIDTH)
        }],
    );
    MacResult {
        message_len: msg.len(),
        oneshot_ns,
        precomputed_ns,
    }
}

struct TableResult {
    nodes: u16,
    oneshot_ns: f64,
    serial_ns: f64,
    parallel_ns: f64,
}

fn bench_table(nodes: u16, repeats: usize, iters: usize) -> TableResult {
    let keys = KeyStore::derive_from_master(b"bench-crypto-deployment", nodes);
    let report_bytes = mark_message();
    check_table_equivalence(&keys, &report_bytes);
    // Prewarm the schedule so the timed builds measure the steady state
    // (the schedule is built once per deployment, not per report).
    let _ = keys.schedule();

    let threads = effective_threads();
    let [oneshot_ns, serial_ns, parallel_ns] = time_interleaved(
        repeats,
        iters,
        &mut [
            &mut || build_oneshot_baseline(&keys, &report_bytes).len(),
            &mut || AnonTable::build(&keys, &report_bytes).len(),
            &mut || AnonTable::build_parallel(&keys, &report_bytes, threads).len(),
        ],
    );
    TableResult {
        nodes,
        oneshot_ns,
        serial_ns,
        parallel_ns,
    }
}

fn main() -> ExitCode {
    let mut out = "BENCH_crypto.json".to_string();
    let mut smoke = false;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(v) => out = v,
                None => {
                    eprintln!("error: --out needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--smoke" => smoke = true,
            other => {
                eprintln!("error: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    if smoke {
        // Equivalence only, tiny sizes, no file output.
        let mac = bench_mac(1, 16);
        assert!(mac.oneshot_ns > 0.0 && mac.precomputed_ns > 0.0);
        for nodes in [1u16, 7, 64] {
            let keys = KeyStore::derive_from_master(b"bench-crypto-smoke", nodes);
            check_table_equivalence(&keys, &mark_message());
        }
        println!("bench-crypto smoke: all fast paths equivalent");
        return ExitCode::SUCCESS;
    }

    let mac = bench_mac(7, 20_000);
    let tables: Vec<TableResult> = TABLE_SIZES
        .iter()
        .map(|&n| {
            // Fewer iterations for bigger tables; each run stays ~comparable.
            let iters = (40_000 / n as usize).max(20);
            bench_table(n, 15, iters)
        })
        .collect();

    let table_json: Vec<String> = tables
        .iter()
        .map(|t| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"nodes\": {},\n",
                    "      \"serial_oneshot_ns\": {:.0},\n",
                    "      \"serial_precomputed_ns\": {:.0},\n",
                    "      \"parallel_precomputed_ns\": {:.0},\n",
                    "      \"speedup_serial_precomputed\": {:.2},\n",
                    "      \"speedup_parallel_vs_oneshot\": {:.2}\n",
                    "    }}"
                ),
                t.nodes,
                t.oneshot_ns,
                t.serial_ns,
                t.parallel_ns,
                t.oneshot_ns / t.serial_ns,
                t.oneshot_ns / t.parallel_ns,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"scenario\": \"precomputed-key HMAC pipeline vs one-shot baseline\",\n",
            "  \"note\": \"serial_oneshot is the pre-change path: RFC 2104 pads re-derived per hash; ",
            "precomputed paths reuse the keystore's cached midstate schedule\",\n",
            "  \"parallel_threads_requested\": {},\n",
            "  \"parallel_threads_effective\": {},\n",
            "  \"host_cores\": {},\n",
            "  \"mac\": {{\n",
            "    \"message_len\": {},\n",
            "    \"width\": {},\n",
            "    \"oneshot_ns_per_op\": {:.1},\n",
            "    \"precomputed_ns_per_op\": {:.1},\n",
            "    \"speedup\": {:.2}\n",
            "  }},\n",
            "  \"anon_table_builds\": [\n{}\n  ]\n",
            "}}\n"
        ),
        PARALLEL_THREADS,
        effective_threads(),
        host_cores(),
        mac.message_len,
        MAC_WIDTH,
        mac.oneshot_ns,
        mac.precomputed_ns,
        mac.oneshot_ns / mac.precomputed_ns,
        table_json.join(",\n"),
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    print!("{json}");
    ExitCode::SUCCESS
}
