//! Measures the precomputed-key HMAC pipeline against the one-shot baseline,
//! serial vs parallel vs lane-parallel anonymous-ID table builds, and the
//! lane-parallel (SIMD multi-buffer) batched MAC path, recording the results
//! in `BENCH_crypto.json`.
//!
//! ```text
//! bench-crypto [--out FILE] [--smoke]
//! ```
//!
//! Three hot paths are timed:
//!
//! 1. **Mark-sized MAC**: `H_k` over a mark-sized message (report bytes plus
//!    an 8-byte anonymous ID), one-shot (`MacKey::mark_mac`, which re-derives
//!    the RFC 2104 pad blocks on every call) vs precomputed
//!    (`mark_mac_prepared` over a cached `HmacKey`, two SHA-256 compressions
//!    cheaper).
//! 2. **Batched mark MACs** (`lanes` section): `mark_mac_many_prepared` at
//!    batch ∈ {4, 8, 16, 64} distinct keys vs a scalar `mark_mac_prepared`
//!    loop over the same jobs. The batched path compresses up to
//!    [`pnm_crypto::MAX_LANES`] independent messages per SHA-256 round
//!    ([`pnm_crypto::Sha256xN`]); the recorded `backend` says which engine
//!    ran (AVX2/SSE2/portable — `PNM_SHA256_FORCE_PORTABLE=1` forces the
//!    struct-of-arrays fallback).
//! 3. **Anon-table build** at N ∈ {100, 300, 1000} nodes: the pre-change
//!    serial baseline (one-shot `anon_id` per node into a `Vec`-per-entry
//!    map), the precomputed serial build (`AnonTable::build`), the sharded
//!    build (`AnonTable::build_parallel`, 4 threads requested), and the
//!    lane-parallel build (`AnonTable::build_parallel_lanes_with`).
//!
//! Every variant is checked for output equivalence before timing — the fast
//! paths must be pure optimizations. `--smoke` runs the equivalence checks
//! with tiny iteration counts and writes nothing, for CI.
//!
//! The parallel builds dispatch the requested worker count **without**
//! clamping to `available_parallelism`; `parallel_workers` per table entry
//! reports what [`AnonTable::parallel_workers`] actually dispatched. Since
//! the small-input regression fix, builds under
//! [`AnonTable::PARALLEL_MIN_NODES`] nodes dispatch serially (workers = 1):
//! at 100 nodes the 4-thread spawn+join overhead cost ~1.8× the serial
//! build. That dispatch threshold is asserted here so it cannot silently
//! regress; `host_cores` records the machine so a reader can judge how much
//! true concurrency backed the parallel numbers.

use std::collections::HashMap;
use std::env;
use std::process::ExitCode;
use std::time::Instant;

use pnm_core::AnonTable;
use pnm_crypto::{
    anon_id, mark_mac_many_prepared, mark_mac_prepared, AnonId, HmacKey, KeyStore, MacKey, Sha256xN,
};

const TABLE_SIZES: [u16; 3] = [100, 300, 1000];
const PARALLEL_THREADS: usize = 4;
const MAC_WIDTH: usize = 8;
/// Batch sizes swept by the lanes section: one SIMD group (4/8), a
/// two-group batch, and a chain-of-marks-sized batch.
const LANE_BATCHES: [usize; 4] = [4, 8, 16, 64];

/// The host's core count, recorded alongside the dispatch counts so the
/// artifact is honest about how much true concurrency backed them.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Pins the small-input dispatch threshold (the 100-node parallel-build
/// regression fix): bench-sized small tables must dispatch serially, the
/// 1000-node table must actually shard.
fn check_dispatch_thresholds() {
    assert_eq!(
        AnonTable::parallel_workers(100, PARALLEL_THREADS),
        1,
        "small builds must fall back to serial dispatch"
    );
    assert_eq!(
        AnonTable::parallel_workers(AnonTable::PARALLEL_MIN_NODES - 1, 8),
        1,
        "below-threshold builds must fall back to serial dispatch"
    );
    assert_eq!(
        AnonTable::parallel_workers(1000, PARALLEL_THREADS),
        PARALLEL_THREADS,
        "large builds must shard across all requested threads"
    );
}

/// A mark-sized message: the canonical bench report bytes plus the 8-byte
/// anonymous ID a nested mark's MAC covers.
fn mark_message() -> Vec<u8> {
    let mut msg = b"bench-crypto-report-payload-2007".to_vec();
    msg.extend_from_slice(&[0xA5; 8]);
    msg
}

/// One timed run: wall-clock nanoseconds per call of `op` over `iters`
/// calls.
fn time_once<T>(iters: usize, op: &mut dyn FnMut() -> T) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(op());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Times every variant under the same load profile: each round runs each
/// variant once (interleaved, so a slow phase of a shared machine hits all
/// variants alike), and each variant keeps its best round — the standard
/// noise-rejecting estimator for short deterministic kernels.
fn time_interleaved<T, const N: usize>(
    rounds: usize,
    iters: usize,
    ops: &mut [&mut dyn FnMut() -> T; N],
) -> [f64; N] {
    let mut best = [f64::INFINITY; N];
    for _ in 0..rounds {
        for (slot, op) in best.iter_mut().zip(ops.iter_mut()) {
            let ns = time_once(iters, *op);
            if ns < *slot {
                *slot = ns;
            }
        }
    }
    best
}

/// The pre-change serial table build: one-shot `anon_id` per node (the pad
/// blocks re-derived per hash), heap-allocated candidate list per entry.
/// Kept as the timing baseline the precomputed builds are compared against.
fn build_oneshot_baseline(keys: &KeyStore, report_bytes: &[u8]) -> HashMap<AnonId, Vec<u16>> {
    let mut map: HashMap<AnonId, Vec<u16>> = HashMap::with_capacity(keys.len());
    for (id, key) in keys.iter() {
        map.entry(anon_id(key, report_bytes, id))
            .or_default()
            .push(id);
    }
    map
}

/// Asserts the table-build variants — serial, thread-parallel, and
/// lane-parallel — resolve identically to the one-shot baseline.
fn check_table_equivalence(keys: &KeyStore, report_bytes: &[u8]) {
    let baseline = build_oneshot_baseline(keys, report_bytes);
    let serial = AnonTable::build(keys, report_bytes);
    let parallel = AnonTable::build_parallel(keys, report_bytes, PARALLEL_THREADS);
    let lanes = AnonTable::build_lanes(keys, report_bytes);
    let lanes_parallel =
        AnonTable::build_parallel_lanes_with(&keys.schedule(), report_bytes, PARALLEL_THREADS);
    assert_eq!(serial, parallel, "parallel build must be map-identical");
    assert_eq!(serial, lanes, "lane build must be map-identical");
    assert_eq!(
        serial, lanes_parallel,
        "parallel lane build must be map-identical"
    );
    assert_eq!(serial.len(), baseline.len());
    for (aid, cands) in &baseline {
        assert_eq!(serial.resolve(aid), cands.as_slice(), "aid {aid}");
        assert_eq!(parallel.resolve(aid), cands.as_slice(), "aid {aid}");
        assert_eq!(lanes.resolve(aid), cands.as_slice(), "aid {aid}");
    }
}

struct MacResult {
    message_len: usize,
    oneshot_ns: f64,
    precomputed_ns: f64,
}

fn bench_mac(repeats: usize, iters: usize) -> MacResult {
    let key = MacKey::derive(b"bench-crypto-master", 7);
    let prepared = key.prepare();
    let msg = mark_message();

    // Equivalence before speed: identical tags on both paths.
    assert_eq!(
        mark_mac_prepared(&prepared, &msg, MAC_WIDTH),
        key.mark_mac(&msg, MAC_WIDTH),
        "precomputed MAC must equal one-shot"
    );

    let [oneshot_ns, precomputed_ns] = time_interleaved(
        repeats,
        iters,
        &mut [&mut || key.mark_mac(&msg, MAC_WIDTH), &mut || {
            mark_mac_prepared(&prepared, &msg, MAC_WIDTH)
        }],
    );
    MacResult {
        message_len: msg.len(),
        oneshot_ns,
        precomputed_ns,
    }
}

/// The lane keyset: one distinct prepared key per batch slot, like a chain
/// of marks from distinct nodes.
fn lane_keys() -> Vec<HmacKey> {
    (0..*LANE_BATCHES.iter().max().expect("non-empty"))
        .map(|i| MacKey::derive(b"bench-crypto-lanes", i as u64).prepare())
        .collect()
}

/// Asserts `mark_mac_many_prepared` tags equal per-job scalar tags at every
/// swept batch size — lane ≡ scalar before any timing.
fn check_lane_equivalence(keys: &[HmacKey], msg: &[u8]) {
    for &batch in &LANE_BATCHES {
        let jobs: Vec<(&HmacKey, &[u8])> = keys[..batch].iter().map(|k| (k, msg)).collect();
        let lane_tags = mark_mac_many_prepared(&jobs, MAC_WIDTH);
        assert_eq!(lane_tags.len(), batch);
        for ((key, m), tag) in jobs.iter().zip(&lane_tags) {
            assert_eq!(
                *tag,
                mark_mac_prepared(key, m, MAC_WIDTH),
                "lane MAC must equal scalar (batch {batch})"
            );
        }
    }
}

struct LaneResult {
    batch: usize,
    serial_ns_per_mac: f64,
    lanes_ns_per_mac: f64,
}

fn bench_lanes(repeats: usize, iters: usize) -> Vec<LaneResult> {
    let keys = lane_keys();
    let msg = mark_message();
    check_lane_equivalence(&keys, &msg);

    LANE_BATCHES
        .iter()
        .map(|&batch| {
            let jobs: Vec<(&HmacKey, &[u8])> =
                keys[..batch].iter().map(|k| (k, &msg[..])).collect();
            let [serial_ns, lanes_ns] = time_interleaved(
                repeats,
                iters,
                &mut [
                    &mut || {
                        jobs.iter()
                            .map(|(k, m)| mark_mac_prepared(k, m, MAC_WIDTH))
                            .collect::<Vec<_>>()
                    },
                    &mut || mark_mac_many_prepared(&jobs, MAC_WIDTH),
                ],
            );
            LaneResult {
                batch,
                serial_ns_per_mac: serial_ns / batch as f64,
                lanes_ns_per_mac: lanes_ns / batch as f64,
            }
        })
        .collect()
}

struct TableResult {
    nodes: u16,
    workers: usize,
    oneshot_ns: f64,
    serial_ns: f64,
    parallel_ns: f64,
    lanes_ns: f64,
}

fn bench_table(nodes: u16, repeats: usize, iters: usize) -> TableResult {
    let keys = KeyStore::derive_from_master(b"bench-crypto-deployment", nodes);
    let report_bytes = mark_message();
    check_table_equivalence(&keys, &report_bytes);
    // Prewarm the schedule so the timed builds measure the steady state
    // (the schedule is built once per deployment, not per report).
    let schedule = keys.schedule();

    let [oneshot_ns, serial_ns, parallel_ns, lanes_ns] = time_interleaved(
        repeats,
        iters,
        &mut [
            &mut || build_oneshot_baseline(&keys, &report_bytes).len(),
            &mut || AnonTable::build(&keys, &report_bytes).len(),
            &mut || AnonTable::build_parallel(&keys, &report_bytes, PARALLEL_THREADS).len(),
            &mut || {
                AnonTable::build_parallel_lanes_with(&schedule, &report_bytes, PARALLEL_THREADS)
                    .len()
            },
        ],
    );
    TableResult {
        nodes,
        workers: AnonTable::parallel_workers(nodes as usize, PARALLEL_THREADS),
        oneshot_ns,
        serial_ns,
        parallel_ns,
        lanes_ns,
    }
}

fn main() -> ExitCode {
    let mut out = "BENCH_crypto.json".to_string();
    let mut smoke = false;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(v) => out = v,
                None => {
                    eprintln!("error: --out needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--smoke" => smoke = true,
            other => {
                eprintln!("error: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    check_dispatch_thresholds();
    let backend = Sha256xN::backend();

    if smoke {
        // Equivalence only, tiny sizes, no file output.
        let mac = bench_mac(1, 16);
        assert!(mac.oneshot_ns > 0.0 && mac.precomputed_ns > 0.0);
        check_lane_equivalence(&lane_keys(), &mark_message());
        for nodes in [1u16, 7, 64] {
            let keys = KeyStore::derive_from_master(b"bench-crypto-smoke", nodes);
            check_table_equivalence(&keys, &mark_message());
        }
        println!(
            "bench-crypto smoke: all fast paths equivalent (sha256 backend: {})",
            backend.name()
        );
        return ExitCode::SUCCESS;
    }

    let mac = bench_mac(7, 20_000);
    let lanes = bench_lanes(9, 4_000);
    let tables: Vec<TableResult> = TABLE_SIZES
        .iter()
        .map(|&n| {
            // Fewer iterations for bigger tables; each run stays ~comparable.
            let iters = (40_000 / n as usize).max(20);
            bench_table(n, 15, iters)
        })
        .collect();

    let lane_json: Vec<String> = lanes
        .iter()
        .map(|l| {
            format!(
                concat!(
                    "      {{\"batch\": {}, \"serial_ns_per_mac\": {:.1}, ",
                    "\"lanes_ns_per_mac\": {:.1}, \"speedup_vs_precomputed\": {:.2}}}"
                ),
                l.batch,
                l.serial_ns_per_mac,
                l.lanes_ns_per_mac,
                l.serial_ns_per_mac / l.lanes_ns_per_mac,
            )
        })
        .collect();
    let table_json: Vec<String> = tables
        .iter()
        .map(|t| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"nodes\": {},\n",
                    "      \"parallel_workers\": {},\n",
                    "      \"serial_oneshot_ns\": {:.0},\n",
                    "      \"serial_precomputed_ns\": {:.0},\n",
                    "      \"parallel_precomputed_ns\": {:.0},\n",
                    "      \"lanes_ns\": {:.0},\n",
                    "      \"speedup_serial_precomputed\": {:.2},\n",
                    "      \"speedup_parallel_vs_oneshot\": {:.2},\n",
                    "      \"speedup_lanes_vs_serial\": {:.2}\n",
                    "    }}"
                ),
                t.nodes,
                t.workers,
                t.oneshot_ns,
                t.serial_ns,
                t.parallel_ns,
                t.lanes_ns,
                t.oneshot_ns / t.serial_ns,
                t.oneshot_ns / t.parallel_ns,
                t.serial_ns / t.lanes_ns,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"scenario\": \"precomputed-key HMAC pipeline vs one-shot baseline\",\n",
            "  \"note\": \"serial_oneshot is the pre-change path: RFC 2104 pads re-derived per hash; ",
            "precomputed paths reuse the keystore's cached midstate schedule; lane paths additionally ",
            "hash up to MAX_LANES independent messages per SHA-256 compression\",\n",
            "  \"parallel_threads_requested\": {},\n",
            "  \"host_cores\": {},\n",
            "  \"mac\": {{\n",
            "    \"message_len\": {},\n",
            "    \"width\": {},\n",
            "    \"oneshot_ns_per_op\": {:.1},\n",
            "    \"precomputed_ns_per_op\": {:.1},\n",
            "    \"speedup\": {:.2}\n",
            "  }},\n",
            "  \"lanes\": {{\n",
            "    \"backend\": \"{}\",\n",
            "    \"forced_portable\": {},\n",
            "    \"mark_mac_batches\": [\n{}\n    ]\n",
            "  }},\n",
            "  \"anon_table_builds\": [\n{}\n  ]\n",
            "}}\n"
        ),
        PARALLEL_THREADS,
        host_cores(),
        mac.message_len,
        MAC_WIDTH,
        mac.oneshot_ns,
        mac.precomputed_ns,
        mac.oneshot_ns / mac.precomputed_ns,
        backend.name(),
        env::var("PNM_SHA256_FORCE_PORTABLE").is_ok_and(|v| !v.is_empty() && v != "0"),
        lane_json.join(",\n"),
        table_json.join(",\n"),
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    print!("{json}");
    ExitCode::SUCCESS
}
