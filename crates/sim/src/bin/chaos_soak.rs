//! Chaos soak runner: sweeps fault intensity (Gilbert–Elliott bursty
//! loss, per-byte bit corruption, per-hop duplication) over the canonical
//! marked forwarding chain and records how localization degrades.
//!
//! ```text
//! chaos-soak [--smoke] [--out FILE] [--degradation FILE] [--trace FILE]
//!            [--flight DIR]
//! ```
//!
//! Every sweep point runs under `catch_unwind`: the soak's first job is
//! to prove the whole pipeline — network fault layer, wire decoding, sink
//! ingestion, localization — survives arbitrary fault intensity with
//! **zero panics**, including the acceptance combo (20% bursty loss + 1%
//! per-byte corruption + 5% duplication). Its second job is the
//! degradation story: localization precision (does the implicated region
//! still contain the true source?) decays to *wider regions* or *no
//! evidence* as faults intensify, while the false-implication rate stays
//! exactly zero — corruption can shorten nested-MAC chains but never
//! redirect them at an off-path node.
//!
//! A kill-and-recover sweep follows the fault sweep: at clean and
//! acceptance intensities the arrival stream is cut partway, the process
//! state discarded, the evidence log's tail damaged the way a SIGKILL
//! mid-append leaves it, and a fresh engine rebuilt from the log finishes
//! the stream. Recovered verdicts must equal the uninterrupted run's and
//! the zero-false-implication bar holds through the crash.
//!
//! Artifacts (deterministic for a fixed seed):
//! - `results/chaos_degradation.json` — one row per sweep point.
//! - `BENCH_chaos.json` — summary: zero-panic verdict, determinism
//!   check, acceptance-point row, kill-and-recover rows, sweep-wide
//!   false-implication maximum.
//!
//! `--smoke` runs the CI-sized sweep (5 points, 120 packets each) with
//! the same checks and artifacts.
//!
//! `--trace FILE` attaches a ring-buffer trace collector and writes every
//! span and fault event as JSONL to FILE. Tracing is observation only:
//! the degradation rows and both JSON artifacts are bit-identical with or
//! without it.
//!
//! `--flight DIR` runs the poison drill: a traced [`ServicePool`] armed
//! with a [`FlightRecorder`] ingests a clean stream plus one poison
//! packet, the shard worker quarantines it, and the recorder must dump a
//! black-box into DIR whose anomaly summary names the poisoned packet's
//! trace id. The dump path is printed so CI can hand it to
//! `obs_check --flight`.

use std::env;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use pnm_core::{MarkingScheme, NodeContext, ProbabilisticNestedMarking, SinkConfig, VerifyMode};
use pnm_crypto::KeyStore;
use pnm_obs::{FlightRecorder, Tracer};
use pnm_service::{ServiceConfig, ServicePool};
use pnm_sim::chaos::{
    recovery_sweep, run_point_traced, run_recovery_point, sweep_points, ChaosConfig, ChaosPoint,
    ChaosRun, RecoveryRun,
};
use pnm_wire::{Location, NodeId, Packet, Report};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Poison drill: ingest a traced stream with one poison packet through a
/// flight-recorder-armed pool, and return the black-box path after
/// checking the dump names the poisoned trace. Everything is asserted
/// here; the caller only prints and propagates failure.
fn flight_drill(dir: &str) -> Result<std::path::PathBuf, String> {
    const NODES: u16 = 6;
    const CLEAN: usize = 12;
    let keys = Arc::new(KeyStore::derive_from_master(b"flight-drill", NODES));
    let scheme = ProbabilisticNestedMarking::paper_default(NODES as usize);
    let mut rng = StdRng::seed_from_u64(0xF11);
    let mut mk = |payload: Vec<u8>, seq: u64| {
        let mut pkt = Packet::new(Report::new(payload, Location::new(seq as f32, 0.0), seq));
        for hop in 0..NODES {
            let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
            scheme.mark(&ctx, &mut pkt, &mut rng);
        }
        pkt
    };
    let clean: Vec<Packet> = (0..CLEAN)
        .map(|i| mk(format!("fd-{i}").into_bytes(), i as u64))
        .collect();
    let poison = mk(b"poison-me".to_vec(), CLEAN as u64);

    let recorder = Arc::new(FlightRecorder::new(dir, 4, 1 << 12));
    let tracer = Tracer::new(recorder.clone());
    let pool = ServicePool::new(
        Arc::clone(&keys),
        ServiceConfig::new(SinkConfig::new(VerifyMode::Nested))
            .shards(2)
            .tracer(tracer.clone())
            .poison_hook(|pkt: &Packet| pkt.report.event.starts_with(b"poison"))
            .flight_recorder(recorder.clone()),
    );

    for pkt in clean {
        let span = tracer.span_root("soak.ingest");
        let ctx = span.context().expect("root span carries a context");
        pool.ingest_ctx(pkt, 0, ctx)
            .map_err(|e| format!("clean ingest shed: {e:?}"))?;
    }
    let poison_span = tracer.span_root("soak.ingest");
    let poison_ctx = poison_span.context().expect("root span carries a context");
    let poison_trace = poison_ctx.trace;
    pool.ingest_ctx(poison, 0, poison_ctx)
        .map_err(|e| format!("poison ingest shed: {e:?}"))?;
    drop(poison_span);
    let report = pool.drain();

    if report.poisoned.len() != 1 {
        return Err(format!(
            "expected exactly one quarantined packet, got {}",
            report.poisoned.len()
        ));
    }
    if recorder.dumps() == 0 {
        return Err("poison quarantine produced no black-box dump".to_string());
    }
    let last = recorder
        .last_anomaly()
        .ok_or_else(|| "recorder dumped but kept no anomaly summary".to_string())?;
    if last.reason != "poison_quarantine" {
        return Err(format!(
            "anomaly reason {:?}, wanted poison_quarantine",
            last.reason
        ));
    }
    if last.trace != poison_trace {
        return Err(format!(
            "black-box names trace {:#x}, poisoned packet was {poison_trace:#x}",
            last.trace
        ));
    }
    if !last.path.is_file() {
        return Err(format!("dump path {} missing on disk", last.path.display()));
    }
    Ok(last.path)
}

fn run_json(r: &ChaosRun) -> String {
    let implicated = r
        .implicated
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        concat!(
            "    {{\"burst_loss\": {}, \"corrupt_byte\": {}, \"duplicate\": {},\n",
            "     \"injected\": {}, \"delivered\": {}, \"garbled\": {},\n",
            "     \"burst_losses\": {}, \"duplicates\": {}, \"corrupted\": {}, ",
            "\"corrupt_drops\": {},\n",
            "     \"ingested\": {}, \"malformed\": {}, \"duplicates_suppressed\": {},\n",
            "     \"chains\": {}, \"support\": {}, \"confidence\": {:.4},\n",
            "     \"identified\": {}, \"contains_true_source\": {}, ",
            "\"region_width\": {}, \"false_implication_rate\": {:.4}, ",
            "\"implicated\": [{}]}}"
        ),
        r.point.burst_loss,
        r.point.corrupt_byte,
        r.point.duplicate,
        r.injected,
        r.delivered,
        r.garbled,
        r.faults.burst_losses,
        r.faults.duplicates,
        r.faults.corrupted,
        r.faults.corrupt_drops,
        r.counters.packets,
        r.counters.malformed,
        r.counters.duplicates_suppressed,
        r.annotated.chains,
        r.annotated.support,
        r.annotated.confidence,
        r.identified,
        r.contains_true_source,
        r.implicated.len(),
        r.false_implication_rate,
        implicated,
    )
}

fn recovery_json(r: &RecoveryRun) -> String {
    format!(
        concat!(
            "    {{\"burst_loss\": {}, \"corrupt_byte\": {}, \"duplicate\": {}, ",
            "\"kill_fraction\": {},\n",
            "     \"arrivals\": {}, \"killed_after\": {}, \"records_replayed\": {}, ",
            "\"rejected_frames\": {}, \"packets_restored\": {},\n",
            "     \"verdict_identical\": {}, \"evidence_identical\": {}, ",
            "\"contains_true_source\": {}, \"false_implication_rate\": {:.4}}}"
        ),
        r.point.burst_loss,
        r.point.corrupt_byte,
        r.point.duplicate,
        r.kill_fraction,
        r.arrivals,
        r.killed_after,
        r.records_replayed,
        r.rejected_frames,
        r.packets_restored,
        r.verdict_identical,
        r.evidence_identical,
        r.contains_true_source,
        r.false_implication_rate,
    )
}

/// `chaos_gateway` merges a `"gateway"` section into this same artifact;
/// carry it over when re-recording the soak's own fields so the two bins
/// can run in either order without losing each other's results.
fn keep_gateway_section(existing: Option<&str>, fresh: &str) -> String {
    let Some(section) = existing.and_then(|text| {
        let i = text.find("\n  \"gateway\":")?;
        Some(
            text[i..]
                .trim_end()
                .strip_suffix('}')?
                .trim_end()
                .to_string(),
        )
    }) else {
        return fresh.to_string();
    };
    let Some(head) = fresh.trim_end().strip_suffix('}') else {
        return fresh.to_string();
    };
    let head = head.trim_end().trim_end_matches(',');
    format!("{head},{section}\n}}\n")
}

fn write_artifact(path: &str, json: &str) -> bool {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("error: cannot create {}: {e}", parent.display());
                return false;
            }
        }
    }
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("error: cannot write {path}: {e}");
        return false;
    }
    true
}

fn main() -> ExitCode {
    let mut out = "BENCH_chaos.json".to_string();
    let mut degradation = "results/chaos_degradation.json".to_string();
    let mut trace: Option<String> = None;
    let mut flight: Option<String> = None;
    let mut smoke = false;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(v) => out = v,
                None => {
                    eprintln!("error: --out needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--degradation" => match args.next() {
                Some(v) => degradation = v,
                None => {
                    eprintln!("error: --degradation needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match args.next() {
                Some(v) => trace = Some(v),
                None => {
                    eprintln!("error: --trace needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--flight" => match args.next() {
                Some(v) => flight = Some(v),
                None => {
                    eprintln!("error: --flight needs a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let cfg = if smoke {
        ChaosConfig::smoke()
    } else {
        ChaosConfig::full()
    };
    let points = sweep_points(smoke);
    // A generous ring: the full sweep emits well under 2^21 events, so a
    // trace never silently drops its oldest spans.
    let (tracer, ring) = match &trace {
        Some(_) => {
            let (t, r) = Tracer::ring(1 << 21);
            (t, Some(r))
        }
        None => (Tracer::noop(), None),
    };

    let mut rows: Vec<ChaosRun> = Vec::with_capacity(points.len());
    let mut panics = 0usize;
    for point in &points {
        match catch_unwind(AssertUnwindSafe(|| run_point_traced(&cfg, point, &tracer))) {
            Ok(run) => {
                println!(
                    "{:<40} delivered {:>3}/{:<3}  garbled {:>2}  region {:?}  fir {:.3}",
                    point.label(),
                    run.delivered,
                    run.injected,
                    run.garbled,
                    run.implicated,
                    run.false_implication_rate,
                );
                rows.push(run);
            }
            Err(_) => {
                eprintln!("PANIC at sweep point {}", point.label());
                panics += 1;
            }
        }
    }

    // Kill-and-recover sweep: cut the stream, discard the process, damage
    // the evidence log's tail, rebuild from the log, finish the stream.
    // The verdicts must match the uninterrupted run and the zero-false-
    // implication bar holds through the crash.
    let mut recovery_rows: Vec<RecoveryRun> = Vec::new();
    for (point, fraction) in recovery_sweep(smoke) {
        match catch_unwind(AssertUnwindSafe(|| {
            run_recovery_point(&cfg, &point, fraction)
        })) {
            Ok(run) => {
                println!(
                    "recover {:<40} kill {:.2}  replayed {:>3} ({} torn)  verdicts {}  fir {:.3}",
                    point.label(),
                    fraction,
                    run.records_replayed,
                    run.rejected_frames,
                    if run.verdict_identical { "ok" } else { "DIFF" },
                    run.false_implication_rate,
                );
                recovery_rows.push(run);
            }
            Err(_) => {
                eprintln!(
                    "PANIC at recovery point {} kill {fraction:.2}",
                    point.label()
                );
                panics += 1;
            }
        }
    }

    // The artifacts must be a pure function of the seed: re-run the
    // acceptance combo and demand a bit-identical row.
    let acceptance = ChaosPoint::acceptance();
    let deterministic = match (
        rows.iter().find(|r| r.point == acceptance),
        catch_unwind(AssertUnwindSafe(|| {
            run_point_traced(&cfg, &acceptance, &tracer)
        })),
    ) {
        (Some(first), Ok(second)) => run_json(first) == run_json(&second),
        _ => false,
    };

    let zero_panics = panics == 0;
    let max_fir = rows
        .iter()
        .map(|r| r.false_implication_rate)
        .chain(recovery_rows.iter().map(|r| r.false_implication_rate))
        .fold(0.0f64, f64::max);
    // The recovery bar: a crash must never change the verdict. Whether
    // the (honestly degraded) verdict still contains the true source is
    // a fault-intensity property, recorded per row but not gated on.
    let recovery_ok =
        !recovery_rows.is_empty() && recovery_rows.iter().all(|r| r.verdict_identical);
    println!(
        "zero panics: {zero_panics}  deterministic: {deterministic}  recovery verdicts: {}  max false-implication rate: {max_fir:.4}",
        if recovery_ok { "ok" } else { "FAILED" }
    );

    let degradation_json = format!(
        concat!(
            "{{\n",
            "  \"scenario\": \"PNM np=3, {}-hop chain, {} bogus packets per point, ",
            "dedup {}, min support {}, seed {}\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"rows\": [\n{}\n  ]\n",
            "}}\n"
        ),
        cfg.path_len,
        cfg.packets,
        cfg.dedup_capacity,
        cfg.min_support,
        cfg.seed,
        if smoke { "smoke" } else { "full" },
        rows.iter().map(run_json).collect::<Vec<_>>().join(",\n"),
    );
    let acceptance_json = rows
        .iter()
        .find(|r| r.point == acceptance)
        .map(run_json)
        .unwrap_or_else(|| "null".to_string());
    let bench_json = format!(
        concat!(
            "{{\n",
            "  \"scenario\": \"chaos soak, PNM np=3, {}-hop chain, {} packets per point, ",
            "seed {}\",\n",
            "  \"claim\": \"fault intensity degrades localization to wider regions or no ",
            "evidence, never an off-path implication; the pipeline survives every sweep ",
            "point without a panic\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"points\": {},\n",
            "  \"zero_panics\": {},\n",
            "  \"deterministic\": {},\n",
            "  \"max_false_implication_rate\": {:.4},\n",
            "  \"recovery_verdicts_identical\": {},\n",
            "  \"recovery\": [\n{}\n  ],\n",
            "  \"acceptance\": {}\n",
            "}}\n"
        ),
        cfg.path_len,
        cfg.packets,
        cfg.seed,
        if smoke { "smoke" } else { "full" },
        rows.len(),
        zero_panics,
        deterministic,
        max_fir,
        recovery_ok,
        recovery_rows
            .iter()
            .map(recovery_json)
            .collect::<Vec<_>>()
            .join(",\n"),
        acceptance_json.trim_start(),
    );

    let bench_json =
        keep_gateway_section(std::fs::read_to_string(&out).ok().as_deref(), &bench_json);
    if !write_artifact(&degradation, &degradation_json) || !write_artifact(&out, &bench_json) {
        return ExitCode::FAILURE;
    }
    println!("wrote {degradation} and {out}");

    if let (Some(path), Some(ring)) = (&trace, &ring) {
        if !write_artifact(path, &ring.export_jsonl()) {
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {path} ({} events, {} dropped)",
            ring.len(),
            ring.dropped()
        );
        if ring.dropped() > 0 {
            eprintln!("trace ring overflowed; enlarge the capacity");
            return ExitCode::FAILURE;
        }
    }

    if let Some(dir) = &flight {
        match flight_drill(dir) {
            Ok(path) => println!("flight drill ok: black-box at {}", path.display()),
            Err(e) => {
                eprintln!("flight drill failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if !zero_panics || !deterministic || !recovery_ok || max_fir > 0.0 {
        eprintln!(
            "soak failed: zero_panics={zero_panics} deterministic={deterministic} \
             recovery_ok={recovery_ok} max_fir={max_fir}"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::keep_gateway_section;

    const FRESH: &str = "{\n  \"mode\": \"full\",\n  \"zero_panics\": true\n}\n";

    #[test]
    fn no_existing_file_passes_fresh_through() {
        assert_eq!(keep_gateway_section(None, FRESH), FRESH);
    }

    #[test]
    fn existing_without_gateway_passes_fresh_through() {
        let old = "{\n  \"mode\": \"smoke\"\n}\n";
        assert_eq!(keep_gateway_section(Some(old), FRESH), FRESH);
    }

    #[test]
    fn gateway_section_survives_a_soak_rewrite() {
        let old = "{\n  \"mode\": \"smoke\",\n  \"gateway\": {\n    \"points\": 5\n  }\n}\n";
        let merged = keep_gateway_section(Some(old), FRESH);
        assert_eq!(
            merged,
            "{\n  \"mode\": \"full\",\n  \"zero_panics\": true,\n  \"gateway\": {\n    \"points\": 5\n  }\n}\n"
        );
        // Idempotent: re-running the soak keeps the same section.
        assert_eq!(keep_gateway_section(Some(&merged), FRESH), merged);
    }
}
