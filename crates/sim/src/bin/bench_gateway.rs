//! Measures multi-tenant gateway ingest over a Unix-domain socket,
//! recording throughput and server-side ingest latency quantiles in
//! `BENCH_gateway.json`.
//!
//! ```text
//! bench_gateway [--out FILE] [--smoke]
//! ```
//!
//! Each run stands up one [`Gateway`] over a fresh UDS path with N
//! tenants (N ∈ {1, 4, 16}), each tenant with its own keystore and its
//! own single-shard [`pnm_service`] pool. One client connection per
//! tenant pipelines a pre-marked packet batch through the framed
//! envelope protocol, then syncs with a `Snapshot` round-trip. Two wall
//! clocks are kept:
//!
//! - **ingest wall**: first byte sent → every tenant's sync response,
//!   i.e. every frame parsed, admitted, and enqueued;
//! - **end-to-end wall**: first byte sent → every tenant's backlog at
//!   zero, i.e. every packet carries a verdict. Throughput is computed
//!   against this clock — frames parked in a queue are not "done".
//!
//! Latency quantiles come from the pools' own `total_us` histograms
//! (enqueue → verdict, measured server-side), scraped from the tenant
//! snapshot JSON; the reported p50/p99 are the **worst tenant's**
//! values, a conservative bound chosen over cross-tenant merging so a
//! starved tenant cannot hide behind a fast one.
//!
//! `--smoke` runs a 2-tenant batch with tiny counts, asserts the books
//! balance (every frame accepted, verdicts drain cleanly), and writes
//! nothing — CI-sized, UDS only, no TCP port.

use std::env;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use pnm_core::{MarkingScheme, NodeContext, ProbabilisticNestedMarking, SinkConfig, VerifyMode};
use pnm_crypto::KeyStore;
use pnm_gateway::{Gateway, GatewayClient, GatewayConfig, TenantConfig, TenantRegistry};
use pnm_service::ServiceConfig;
use pnm_wire::{Location, NodeId, Packet, Report};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Sensor nodes per tenant deployment.
const NODES: u16 = 6;
/// Marking hops stamped onto every benched packet.
const HOPS: u16 = 4;
/// Gateway worker threads serving connections.
const WORKERS: usize = 2;

fn temp_sock(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "pnm-gwbench-{}-{}-{}.sock",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// First integer following `key` after the first occurrence of `anchor`
/// — enough of a scanner for the snapshot JSON and metrics text this
/// bench reads back, without growing a parser dependency.
fn scan_u64(text: &str, anchor: &str, key: &str) -> u64 {
    let Some(at) = text.find(anchor) else {
        return 0;
    };
    let tail = &text[at + anchor.len()..];
    let Some(kat) = tail.find(key) else { return 0 };
    let rest = tail[kat + key.len()..].trim_start_matches([':', ' ']);
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().unwrap_or(0)
}

/// A tenant's pre-marked ingest batch: canonical packet bytes, ready to
/// frame. Built outside the timed region.
fn marked_batch(keys: &KeyStore, tenant_seed: u64, packets: usize) -> Vec<Vec<u8>> {
    let scheme = ProbabilisticNestedMarking::paper_default(NODES.into());
    let mut rng = StdRng::seed_from_u64(0x6077_0000 ^ tenant_seed);
    (0..packets)
        .map(|seq| {
            let report = Report::new(
                format!("gw-{tenant_seed}-{seq}").into_bytes(),
                Location::new(seq as f32, tenant_seed as f32),
                seq as u64,
            );
            let mut pkt = Packet::new(report);
            for hop in 0..HOPS {
                let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
                scheme.mark(&ctx, &mut pkt, &mut rng);
            }
            pkt.to_bytes()
        })
        .collect()
}

struct RunResult {
    tenants: usize,
    total_packets: u64,
    ingest_wall_ms: f64,
    e2e_wall_ms: f64,
    throughput_pps: f64,
    p50_ingest_us: u64,
    p99_ingest_us: u64,
}

/// One full scenario: N tenants, one pipelined UDS connection each.
fn run_scenario(tenants: usize, packets_per_tenant: usize) -> RunResult {
    let names: Vec<String> = (0..tenants).map(|i| format!("t{i:02}")).collect();
    let mut builder = TenantRegistry::builder();
    let mut stores: Vec<Arc<KeyStore>> = Vec::with_capacity(tenants);
    for (i, name) in names.iter().enumerate() {
        let master = format!("bench-gateway-tenant-{i}");
        let keys = Arc::new(KeyStore::derive_from_master(master.as_bytes(), NODES));
        builder = builder.tenant(
            name,
            TenantConfig::new(
                Arc::clone(&keys),
                ServiceConfig::new(SinkConfig::new(VerifyMode::Nested)).shards(1),
            ),
        );
        stores.push(keys);
    }
    let registry = Arc::new(builder.build().expect("registry"));

    let mut gw = Gateway::new(
        Arc::clone(&registry),
        GatewayConfig::default()
            .workers(WORKERS)
            .poll_interval(Duration::from_micros(200)),
    );
    let sock = temp_sock("run");
    gw.listen_uds(&sock).expect("bind UDS");
    let handle = gw.spawn().expect("spawn gateway");

    // Frame payloads are built before the clock starts.
    let batches: Vec<Vec<Vec<u8>>> = stores
        .iter()
        .enumerate()
        .map(|(i, keys)| marked_batch(keys, i as u64, packets_per_tenant))
        .collect();

    let barrier = Arc::new(Barrier::new(tenants + 1));
    let clients: Vec<_> = names
        .iter()
        .zip(batches)
        .map(|(name, batch)| {
            let name = name.clone();
            let sock = sock.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = GatewayClient::connect_uds(&sock).expect("connect");
                barrier.wait();
                for bytes in &batch {
                    client.ingest(name.as_bytes(), bytes).expect("ingest");
                }
                // The snapshot round-trip proves every prior frame on
                // this connection was parsed and dispatched.
                client.snapshot(name.as_bytes()).expect("sync snapshot");
            })
        })
        .collect();

    barrier.wait();
    let start = Instant::now();
    for c in clients {
        c.join().expect("client thread");
    }
    let ingest_wall = start.elapsed();

    // End-to-end: every enqueued packet carries a verdict.
    while registry.backlog() > 0 {
        std::thread::sleep(Duration::from_micros(500));
    }
    let e2e_wall = start.elapsed();

    let total_packets = (tenants * packets_per_tenant) as u64;
    let metrics = registry.metrics_text();
    let (mut p50, mut p99) = (0u64, 0u64);
    for name in &names {
        let ingested = scan_u64(
            &metrics,
            &format!("pnm_gateway_ingested_total{{tenant=\"{name}\"}}"),
            "",
        );
        assert_eq!(
            ingested, packets_per_tenant as u64,
            "tenant {name}: every frame must be accepted (no shed/malformed in a clean run)"
        );
        let snap = registry.snapshot_json(name.as_bytes()).expect("snapshot");
        // First `total_us` block is the cross-shard merged stage view.
        p50 = p50.max(scan_u64(&snap, "\"total_us\"", "\"p50_us\""));
        p99 = p99.max(scan_u64(&snap, "\"total_us\"", "\"p99_us\""));
    }
    for name in &names {
        let verdict = registry.drain(name.as_bytes()).expect("drain verdict");
        assert!(
            !verdict.evidence_bytes.is_empty(),
            "tenant {name}: drained evidence must round-trip"
        );
    }
    handle.shutdown();

    let e2e_ms = e2e_wall.as_secs_f64() * 1e3;
    RunResult {
        tenants,
        total_packets,
        ingest_wall_ms: ingest_wall.as_secs_f64() * 1e3,
        e2e_wall_ms: e2e_ms,
        throughput_pps: total_packets as f64 / e2e_wall.as_secs_f64(),
        p50_ingest_us: p50,
        p99_ingest_us: p99,
    }
}

fn main() -> ExitCode {
    let mut out = "BENCH_gateway.json".to_string();
    let mut smoke = false;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(v) => out = v,
                None => {
                    eprintln!("error: --out needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--smoke" => smoke = true,
            other => {
                eprintln!("error: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    if smoke {
        // CI-sized: two tenants over UDS, books must balance, no file.
        let r = run_scenario(2, 40);
        assert_eq!(r.total_packets, 80);
        println!(
            "bench_gateway smoke: 2 tenants, {} packets, e2e {:.1} ms, p99 {} us",
            r.total_packets, r.e2e_wall_ms, r.p99_ingest_us
        );
        return ExitCode::SUCCESS;
    }

    let runs: Vec<RunResult> = [1usize, 4, 16]
        .iter()
        .map(|&n| run_scenario(n, 500))
        .collect();

    let run_json: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"tenants\": {},\n",
                    "      \"total_packets\": {},\n",
                    "      \"ingest_wall_ms\": {:.3},\n",
                    "      \"e2e_wall_ms\": {:.3},\n",
                    "      \"throughput_pps\": {:.0},\n",
                    "      \"p50_ingest_us\": {},\n",
                    "      \"p99_ingest_us\": {}\n",
                    "    }}"
                ),
                r.tenants,
                r.total_packets,
                r.ingest_wall_ms,
                r.e2e_wall_ms,
                r.throughput_pps,
                r.p50_ingest_us,
                r.p99_ingest_us,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"scenario\": \"multi-tenant gateway ingest over a Unix-domain socket\",\n",
            "  \"note\": \"one pipelined connection per tenant; throughput is against the \
             end-to-end clock (every packet carries a verdict); p50/p99 are the worst \
             tenant's server-side enqueue-to-verdict quantiles\",\n",
            "  \"workers\": {},\n",
            "  \"nodes_per_tenant\": {},\n",
            "  \"packets_per_tenant\": 500,\n",
            "  \"host_cores\": {},\n",
            "  \"runs\": [\n{}\n  ]\n",
            "}}\n"
        ),
        WORKERS,
        NODES,
        std::thread::available_parallelism().map_or(1, usize::from),
        run_json.join(",\n"),
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    print!("{json}");
    ExitCode::SUCCESS
}
