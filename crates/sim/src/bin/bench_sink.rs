//! Records the sink pipeline's instrumentation counters from the canonical
//! scenario into `BENCH_sink.json`, giving future changes a perf trajectory
//! to compare against.
//!
//! ```text
//! bench-sink [--out FILE]
//! ```
//!
//! Canonical scenario: the paper's §6.2 setting — a 20-hop path, PNM with
//! np = 3, 200 bogus packets, all sharing neither report nor table (each
//! packet is a distinct report) — plus a batched same-report workload (200
//! packets over 8 reports) that exercises the anon-table cache. Both runs
//! are fully seeded, so the counters are deterministic.

use std::env;
use std::process::ExitCode;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use pnm_core::{NodeContext, SinkConfig, SinkCounters, SinkEngine, VerifyMode};
use pnm_sim::{bogus_packet, PathScenario, SchemeKind};
use pnm_wire::{Location, NodeId, Packet, Report};

const PATH_LEN: u16 = 20;
const PACKETS: usize = 200;
const DISTINCT_REPORTS: u64 = 8;
const SEED: u64 = 2007;

fn counters_json(label: &str, c: &SinkCounters) -> String {
    format!(
        concat!(
            "  \"{}\": {{\n",
            "    \"packets\": {},\n",
            "    \"hash_count\": {},\n",
            "    \"marks_verified\": {},\n",
            "    \"marks_rejected\": {},\n",
            "    \"table_builds\": {},\n",
            "    \"table_cache_hits\": {},\n",
            "    \"table_cache_hit_rate\": {},\n",
            "    \"resolver_fallback_scans\": {}\n",
            "  }}"
        ),
        label,
        c.packets,
        c.hash_count,
        c.marks_verified,
        c.marks_rejected,
        c.table_builds,
        c.table_cache_hits,
        c.table_cache_hit_rate()
            .map_or("null".to_string(), |r| format!("{r:.4}")),
        c.resolver_fallback_scans,
    )
}

/// The paper's honest-path scenario: every packet is a distinct report.
fn run_distinct_reports() -> SinkCounters {
    let scenario = PathScenario::paper(PATH_LEN);
    let keys = Arc::new(scenario.keystore(0));
    let scheme = SchemeKind::Pnm.build(scenario.config());
    let mut sink = SinkEngine::new(Arc::clone(&keys), SinkConfig::new(VerifyMode::Nested));
    let mut rng = StdRng::seed_from_u64(SEED);
    for seq in 0..PACKETS as u64 {
        let mut pkt = bogus_packet(seq, SEED);
        for hop in 0..PATH_LEN {
            let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
            scheme.mark(&ctx, &mut pkt, &mut rng);
        }
        sink.ingest(&pkt);
    }
    sink.counters()
}

/// The batched workload: the same traffic volume spread over a few reports
/// (retransmissions / duplicate observations), ingested as one batch so the
/// anon-table cache amortizes resolution.
fn run_batched_same_reports() -> SinkCounters {
    let scenario = PathScenario::paper(PATH_LEN);
    let keys = Arc::new(scenario.keystore(0));
    let scheme = SchemeKind::Pnm.build(scenario.config());
    let mut sink = SinkEngine::new(
        Arc::clone(&keys),
        SinkConfig::new(VerifyMode::Nested).table_cache_capacity(DISTINCT_REPORTS as usize),
    );
    let mut rng = StdRng::seed_from_u64(SEED);
    let packets: Vec<Packet> = (0..PACKETS as u64)
        .map(|seq| {
            let report = Report::new(
                format!("bench-{:02}", seq % DISTINCT_REPORTS).into_bytes(),
                Location::new(0.0, 0.0),
                seq % DISTINCT_REPORTS,
            );
            let mut pkt = Packet::new(report);
            for hop in 0..PATH_LEN {
                let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
                scheme.mark(&ctx, &mut pkt, &mut rng);
            }
            pkt
        })
        .collect();
    sink.ingest_batch(&packets);
    sink.counters()
}

fn main() -> ExitCode {
    let mut out = "BENCH_sink.json".to_string();
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(v) => out = v,
                None => {
                    eprintln!("error: --out needs a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let distinct = run_distinct_reports();
    let batched = run_batched_same_reports();
    let json = format!(
        "{{\n  \"scenario\": \"PNM np=3, {PATH_LEN}-hop path, {PACKETS} packets, seed {SEED}\",\n\
         {},\n{}\n}}\n",
        counters_json("distinct_reports", &distinct),
        counters_json(&format!("batched_{DISTINCT_REPORTS}_reports"), &batched),
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    print!("{json}");
    ExitCode::SUCCESS
}
