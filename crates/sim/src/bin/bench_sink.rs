//! Records the sink pipeline's instrumentation counters and per-stage
//! latency breakdown from the canonical scenario into `BENCH_sink.json`,
//! giving future changes a perf trajectory to compare against.
//!
//! ```text
//! bench-sink [--smoke] [--out FILE] [--trace FILE]
//! ```
//!
//! Canonical scenario: the paper's §6.2 setting — a 20-hop path, PNM with
//! np = 3, 200 bogus packets, all sharing neither report nor table (each
//! packet is a distinct report) — plus a batched same-report workload (200
//! packets over 8 reports) that exercises the anon-table cache. Both runs
//! are fully seeded, so the counters are deterministic; the stage
//! latencies (`stage_ns`, nanosecond resolution) are wall-clock
//! measurements and vary run to run.
//!
//! `--smoke` runs a CI-sized workload (60 packets). `--trace FILE` writes
//! every pipeline span as JSONL to FILE. Neither changes any counter.

use std::env;
use std::process::ExitCode;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use pnm_core::{NodeContext, SinkConfig, SinkCounters, SinkEngine, StageMetrics, VerifyMode};
use pnm_obs::{JsonValue, Tracer};
use pnm_sim::{bogus_packet, PathScenario, SchemeKind};
use pnm_wire::{Location, NodeId, Packet, Report};

const PATH_LEN: u16 = 20;
const PACKETS: usize = 200;
const SMOKE_PACKETS: usize = 60;
const DISTINCT_REPORTS: u64 = 8;
const SEED: u64 = 2007;

/// One workload's result: the deterministic pipeline counters plus the
/// measured per-stage latency breakdown, as a single JSON object.
fn section(c: &SinkCounters, stages: &StageMetrics) -> JsonValue {
    match pnm_service::counters_json_value(c) {
        JsonValue::Object(mut entries) => {
            entries.push(("stage_ns".to_string(), stages.to_json_value()));
            JsonValue::Object(entries)
        }
        other => other,
    }
}

/// The paper's honest-path scenario: every packet is a distinct report.
fn run_distinct_reports(packets: usize, tracer: &Tracer) -> (SinkCounters, StageMetrics) {
    let scenario = PathScenario::paper(PATH_LEN);
    let keys = Arc::new(scenario.keystore(0));
    let scheme = SchemeKind::Pnm.build(scenario.config());
    let mut sink = SinkEngine::new(
        Arc::clone(&keys),
        SinkConfig::new(VerifyMode::Nested)
            .tracer(tracer.clone())
            .stage_timing(true),
    );
    let mut rng = StdRng::seed_from_u64(SEED);
    for seq in 0..packets as u64 {
        let mut pkt = bogus_packet(seq, SEED);
        for hop in 0..PATH_LEN {
            let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
            scheme.mark(&ctx, &mut pkt, &mut rng);
        }
        sink.ingest(&pkt);
    }
    (sink.counters(), sink.stage_metrics().clone())
}

/// The batched workload: the same traffic volume spread over a few reports
/// (retransmissions / duplicate observations), ingested as one batch so the
/// anon-table cache amortizes resolution.
fn run_batched_same_reports(packets: usize, tracer: &Tracer) -> (SinkCounters, StageMetrics) {
    let scenario = PathScenario::paper(PATH_LEN);
    let keys = Arc::new(scenario.keystore(0));
    let scheme = SchemeKind::Pnm.build(scenario.config());
    let mut sink = SinkEngine::new(
        Arc::clone(&keys),
        SinkConfig::new(VerifyMode::Nested)
            .table_cache_capacity(DISTINCT_REPORTS as usize)
            .tracer(tracer.clone())
            .stage_timing(true),
    );
    let mut rng = StdRng::seed_from_u64(SEED);
    let stream: Vec<Packet> = (0..packets as u64)
        .map(|seq| {
            let report = Report::new(
                format!("bench-{:02}", seq % DISTINCT_REPORTS).into_bytes(),
                Location::new(0.0, 0.0),
                seq % DISTINCT_REPORTS,
            );
            let mut pkt = Packet::new(report);
            for hop in 0..PATH_LEN {
                let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
                scheme.mark(&ctx, &mut pkt, &mut rng);
            }
            pkt
        })
        .collect();
    sink.ingest_batch(&stream);
    (sink.counters(), sink.stage_metrics().clone())
}

fn main() -> ExitCode {
    let mut out = "BENCH_sink.json".to_string();
    let mut trace: Option<String> = None;
    let mut smoke = false;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(v) => out = v,
                None => {
                    eprintln!("error: --out needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match args.next() {
                Some(v) => trace = Some(v),
                None => {
                    eprintln!("error: --trace needs a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let packets = if smoke { SMOKE_PACKETS } else { PACKETS };
    let (tracer, ring) = match &trace {
        Some(_) => {
            let (t, r) = Tracer::ring(1 << 18);
            (t, Some(r))
        }
        None => (Tracer::noop(), None),
    };

    let (distinct, distinct_stages) = run_distinct_reports(packets, &tracer);
    let (batched, batched_stages) = run_batched_same_reports(packets, &tracer);
    let batched_label = format!("batched_{DISTINCT_REPORTS}_reports");
    let doc = JsonValue::obj(vec![
        (
            "scenario",
            JsonValue::Str(format!(
                "PNM np=3, {PATH_LEN}-hop path, {packets} packets, seed {SEED}"
            )),
        ),
        (
            "mode",
            JsonValue::Str(if smoke { "smoke" } else { "full" }.to_string()),
        ),
        ("distinct_reports", section(&distinct, &distinct_stages)),
        (&batched_label, section(&batched, &batched_stages)),
    ]);
    let json = doc.render_pretty();
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    print!("{json}");

    if let (Some(path), Some(ring)) = (&trace, &ring) {
        if let Err(e) = std::fs::write(path, ring.export_jsonl()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {path} ({} events, {} dropped)",
            ring.len(),
            ring.dropped()
        );
        if ring.dropped() > 0 {
            eprintln!("trace ring overflowed; enlarge the capacity");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
