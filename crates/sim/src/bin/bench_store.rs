//! Measures the durable evidence store and records the results in
//! `BENCH_store.json`.
//!
//! ```text
//! bench-store [--out FILE] [--smoke]
//! ```
//!
//! Three questions, matching how the store sits in the service:
//!
//! 1. **Append throughput** — CRC-framed delta appends per second to a
//!    [`LogStore`], no fsync (the service default) and with fsync.
//! 2. **Replay time vs log size** — wall time for [`EvidenceStore::replay`]
//!    over logs of growing record counts, before and after compaction.
//! 3. **Ingest overhead** — ns/packet through a [`SinkEngine`] with no
//!    store, a [`MemStore`], and a [`LogStore`] attached (checkpointing
//!    every packet, the service's default cadence) — the price of
//!    durability on the hot path.
//!
//! Every mode validates recovery before timing: the replayed evidence must
//! be byte-identical to the engine that wrote it. `--smoke` runs the
//! validation with tiny sizes for CI and writes the same artifact shape.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use pnm_core::store::{Evidence, EvidenceStore, LogStore, MemStore, RecordKind};
use pnm_core::{
    MarkingScheme, NodeContext, ProbabilisticNestedMarking, SinkConfig, SinkEngine, VerifyMode,
};
use pnm_crypto::KeyStore;
use pnm_wire::{Location, NodeId, Packet, Report};
use rand::rngs::StdRng;
use rand::SeedableRng;

const HOPS: u16 = 10;

fn temp_log(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pnm-bench-store-{}-{tag}.log", std::process::id()))
}

/// A delta-sized evidence record: the shape a per-checkpoint append
/// carries (a handful of counters, a few nodes/edges of new support).
fn delta_evidence(i: u64) -> Evidence {
    let mut ev = Evidence::default();
    ev.counters.packets = 1;
    ev.counters.hash_count = 16;
    ev.counters.marks_verified = 8;
    ev.counters.suspicious = 1;
    ev.chains_observed = 1;
    let base = (i % 64) as u16;
    ev.nodes.extend([base, base + 1]);
    ev.edges.insert((base, base + 1));
    ev.head_support.insert(base, 1);
    ev.edge_support.insert((base, base + 1), 1);
    ev
}

fn marked_workload(ks: &KeyStore, count: u64) -> Vec<Packet> {
    let scheme = ProbabilisticNestedMarking::paper_default(HOPS as usize);
    let mut rng = StdRng::seed_from_u64(2007);
    (0..count)
        .map(|seq| {
            let report = Report::new(
                format!("bench-store-{seq}").into_bytes(),
                Location::new(seq as f32, 0.0),
                seq,
            );
            let mut pkt = Packet::new(report);
            for hop in 0..HOPS {
                let ctx = NodeContext::new(NodeId(hop), *ks.key(hop).unwrap());
                scheme.mark(&ctx, &mut pkt, &mut rng);
            }
            pkt
        })
        .collect()
}

/// Recovery round-trip validation: an engine's evidence, checkpointed
/// through a `LogStore`, must replay byte-identical — including after a
/// torn tail and after compaction.
fn validate_recovery(packets: &[Packet], ks: &Arc<KeyStore>) {
    use std::io::Write;
    let path = temp_log("validate");
    let store = Arc::new(LogStore::open(&path).expect("open log"));
    let mut engine = SinkEngine::new(Arc::clone(ks), SinkConfig::new(VerifyMode::Nested));
    engine.attach_store(Arc::clone(&store) as Arc<dyn EvidenceStore>, 0);
    for p in packets {
        engine.ingest(p);
        engine.checkpoint_to_store().expect("checkpoint");
    }
    drop(store);
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("reopen");
    f.write_all(&[0xEE; 11]).expect("torn tail");
    drop(f);

    let store = LogStore::open(&path).expect("reopen damaged log");
    assert_eq!(store.rejected_at_open(), 1, "torn tail must be counted");
    let replayed = store.replay().expect("replay").merged();
    assert_eq!(
        replayed.to_bytes(),
        engine.evidence().to_bytes(),
        "replayed evidence must be byte-identical"
    );
    store.compact().expect("compact");
    let compacted = store.replay().expect("replay after compact");
    assert_eq!(compacted.records, 1);
    assert_eq!(compacted.merged().to_bytes(), engine.evidence().to_bytes());
    std::fs::remove_file(&path).ok();
}

struct AppendResult {
    records: usize,
    append_ns: f64,
    fsync_append_ns: f64,
    replay_ms: f64,
    compacted_replay_ms: f64,
    log_bytes: u64,
}

fn bench_appends(records: usize) -> AppendResult {
    let path = temp_log("append");
    let store = LogStore::open(&path).expect("open log");
    let start = Instant::now();
    for i in 0..records {
        store
            .append(i as u32 % 4, RecordKind::Delta, &delta_evidence(i as u64))
            .expect("append");
    }
    let append_ns = start.elapsed().as_nanos() as f64 / records as f64;
    let log_bytes = std::fs::metadata(&path).expect("metadata").len();

    let start = Instant::now();
    let replay = store.replay().expect("replay");
    let replay_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(replay.records, records);

    store.compact().expect("compact");
    let start = Instant::now();
    let compacted = store.replay().expect("replay compacted");
    let compacted_replay_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(compacted.merged().to_bytes(), replay.merged().to_bytes());
    drop(store);
    std::fs::remove_file(&path).ok();

    // The fsync-per-append variant, over a smaller count (it is orders of
    // magnitude slower by design — that is the datum).
    let fsync_records = (records / 10).max(8);
    let path = temp_log("fsync");
    let store = LogStore::open(&path).expect("open log").with_fsync(true);
    let start = Instant::now();
    for i in 0..fsync_records {
        store
            .append(i as u32 % 4, RecordKind::Delta, &delta_evidence(i as u64))
            .expect("append");
    }
    let fsync_append_ns = start.elapsed().as_nanos() as f64 / fsync_records as f64;
    drop(store);
    std::fs::remove_file(&path).ok();

    AppendResult {
        records,
        append_ns,
        fsync_append_ns,
        replay_ms,
        compacted_replay_ms,
        log_bytes,
    }
}

struct IngestResult {
    packets: usize,
    none_ns: f64,
    mem_ns: f64,
    log_ns: f64,
}

fn bench_ingest(ks: &Arc<KeyStore>, packets: &[Packet]) -> IngestResult {
    let time_ingest = |store: Option<Arc<dyn EvidenceStore>>| -> f64 {
        let mut engine = SinkEngine::new(Arc::clone(ks), SinkConfig::new(VerifyMode::Nested));
        if let Some(store) = store {
            engine.attach_store(store, 0);
        }
        let start = Instant::now();
        for p in packets {
            std::hint::black_box(engine.ingest(p));
            if engine.store_attached() {
                engine.checkpoint_to_store().expect("checkpoint");
            }
        }
        start.elapsed().as_nanos() as f64 / packets.len() as f64
    };

    let none_ns = time_ingest(None);
    let mem_ns = time_ingest(Some(Arc::new(MemStore::new())));
    let path = temp_log("ingest");
    let log = Arc::new(LogStore::open(&path).expect("open log"));
    let log_ns = time_ingest(Some(log as Arc<dyn EvidenceStore>));
    std::fs::remove_file(&path).ok();
    IngestResult {
        packets: packets.len(),
        none_ns,
        mem_ns,
        log_ns,
    }
}

fn main() -> ExitCode {
    let mut out = "BENCH_store.json".to_string();
    let mut smoke = false;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(v) => out = v,
                None => {
                    eprintln!("error: --out needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--smoke" => smoke = true,
            other => {
                eprintln!("error: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let ks = Arc::new(KeyStore::derive_from_master(b"bench-store", HOPS));
    let workload = marked_workload(&ks, if smoke { 40 } else { 400 });
    validate_recovery(&workload, &ks);
    println!("recovery round-trip: byte-identical (torn tail counted, compaction exact)");

    let append_sizes: &[usize] = if smoke { &[100] } else { &[100, 1_000, 10_000] };
    let appends: Vec<AppendResult> = append_sizes.iter().map(|&n| bench_appends(n)).collect();
    let ingest = bench_ingest(&ks, &workload);

    for a in &appends {
        println!(
            "append {:>6} records: {:>8.0} ns/append ({:>8.0} with fsync)  replay {:>7.2} ms ({:.2} ms compacted)  {} bytes",
            a.records, a.append_ns, a.fsync_append_ns, a.replay_ms, a.compacted_replay_ms, a.log_bytes
        );
    }
    println!(
        "ingest overhead over {} packets: none {:.0} ns/pkt, mem {:.0} ns/pkt, log {:.0} ns/pkt",
        ingest.packets, ingest.none_ns, ingest.mem_ns, ingest.log_ns
    );

    let append_json: Vec<String> = appends
        .iter()
        .map(|a| {
            format!(
                concat!(
                    "    {{\"records\": {}, \"append_ns\": {:.0}, \"fsync_append_ns\": {:.0}, ",
                    "\"replay_ms\": {:.3}, \"compacted_replay_ms\": {:.3}, \"log_bytes\": {}}}"
                ),
                a.records,
                a.append_ns,
                a.fsync_append_ns,
                a.replay_ms,
                a.compacted_replay_ms,
                a.log_bytes
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"scenario\": \"durable evidence store: append-only CRC-framed log, {}-hop chain workload\",\n",
            "  \"claim\": \"replay is byte-identical to the writing engine (validated before timing, ",
            "including a torn tail and post-compaction); MemStore attachment costs ~nothing; ",
            "LogStore per-checkpoint appends add bounded overhead without fsync\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"appends\": [\n{}\n  ],\n",
            "  \"ingest\": {{\n",
            "    \"packets\": {},\n",
            "    \"no_store_ns_per_packet\": {:.0},\n",
            "    \"memstore_ns_per_packet\": {:.0},\n",
            "    \"logstore_ns_per_packet\": {:.0},\n",
            "    \"memstore_overhead\": {:.3},\n",
            "    \"logstore_overhead\": {:.3}\n",
            "  }}\n",
            "}}\n"
        ),
        HOPS,
        if smoke { "smoke" } else { "full" },
        append_json.join(",\n"),
        ingest.packets,
        ingest.none_ns,
        ingest.mem_ns,
        ingest.log_ns,
        ingest.mem_ns / ingest.none_ns,
        ingest.log_ns / ingest.none_ns,
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    print!("{json}");
    ExitCode::SUCCESS
}
