//! Interactive traceback demo: watch the sink corner a colluding mole.
//!
//! ```text
//! trace-demo [--hops N] [--mole POS] [--attack KIND] [--scheme NAME]
//!            [--packets L] [--seed S] [--every K] [--spec FILE]
//! ```
//!
//! `--spec FILE` loads a scenario-spec document (see `pnm_sim::spec`);
//! explicit flags given after it override the file.
//!
//! Attacks: no-mark, mark-insertion, mark-removal, mark-reordering,
//! mark-altering, selective-dropping, identity-swapping.
//! Schemes: pnm (default), nested, extended-ams, plain, prob-nested-plain-id.

use std::env;
use std::process::ExitCode;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

use pnm_adversary::{AttackKind, AttackPlan, ForwardingMole, MoleAction, SourceMole};
use pnm_core::{Localization, NodeContext, SinkConfig, SinkEngine};
use pnm_sim::{PathScenario, ScenarioSpec, SchemeKind};
use pnm_wire::NodeId;

struct Options {
    hops: u16,
    mole: u16,
    attack: AttackKind,
    scheme: SchemeKind,
    packets: usize,
    seed: u64,
    every: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            hops: 10,
            mole: 5,
            attack: AttackKind::SelectiveDrop,
            scheme: SchemeKind::Pnm,
            packets: 300,
            seed: 2007,
            every: 25,
        }
    }
}

fn parse_attack(s: &str) -> Option<AttackKind> {
    AttackKind::all().into_iter().find(|a| a.as_str() == s)
}

fn parse_scheme(s: &str) -> Option<SchemeKind> {
    SchemeKind::all().into_iter().find(|k| k.name() == s)
}

fn parse_args() -> Result<Options, String> {
    let mut o = Options::default();
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--hops" => o.hops = value("--hops")?.parse().map_err(|e| format!("{e}"))?,
            "--mole" => o.mole = value("--mole")?.parse().map_err(|e| format!("{e}"))?,
            "--packets" => o.packets = value("--packets")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => o.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--every" => o.every = value("--every")?.parse().map_err(|e| format!("{e}"))?,
            "--attack" => {
                let v = value("--attack")?;
                o.attack = parse_attack(&v).ok_or(format!("unknown attack {v}"))?;
            }
            "--scheme" => {
                let v = value("--scheme")?;
                o.scheme = parse_scheme(&v).ok_or(format!("unknown scheme {v}"))?;
            }
            "--spec" => {
                let path = value("--spec")?;
                let doc = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                let spec = ScenarioSpec::parse(&doc).map_err(|e| format!("{path}: {e}"))?;
                o.hops = spec.path.path_len;
                o.mole = spec.attack.mole_position;
                o.attack = spec.kind;
                o.packets = spec.attack.packets;
                o.seed = spec.attack.seed;
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if o.mole >= o.hops {
        return Err("--mole must be on the path (< --hops)".into());
    }
    Ok(o)
}

/// Renders the chain with the sink's current knowledge.
fn render_chain(hops: u16, mole: u16, observed: &[NodeId], suspect: Option<NodeId>) {
    let mut line = String::from("  S☠ ─");
    for v in 0..hops {
        let id = NodeId(v);
        let seen = observed.contains(&id);
        let cell = match (Some(id) == suspect, v == mole, seen) {
            (true, _, _) => format!("[v{v}]"),
            (_, true, _) => format!("X{v}☠"),
            (_, _, true) => format!("v{v}"),
            (_, _, false) => format!("·{v}"),
        };
        line.push_str(&format!(" {cell} ─"));
    }
    line.push_str(" SINK");
    println!("{line}");
}

fn main() -> ExitCode {
    let o = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "trace-demo: {} vs {} | {}-hop chain, forwarding mole X at v{}, source mole S upstream \
         of v0, {} packets\n(☠ marks ground-truth moles the sink must find; [vK] = current \
         suspect; ·K = mark not yet collected)\n",
        o.scheme.name(),
        o.attack,
        o.hops,
        o.mole,
        o.packets
    );

    let scenario = PathScenario::paper(o.hops);
    let keys = Arc::new(scenario.keystore(1));
    let scheme = o.scheme.build(scenario.config());
    let source_id = NodeId(o.hops);
    let mut source = SourceMole::new(source_id, *keys.key(source_id.raw()).unwrap());
    let plan = AttackPlan::canonical(o.attack, &[0]);
    let mut mole = ForwardingMole::new(NodeId(o.mole), *keys.key(o.mole).unwrap(), plan)
        .with_partner(source_id, *keys.key(source_id.raw()).unwrap());

    let mut sink = SinkEngine::new(Arc::clone(&keys), SinkConfig::new(o.scheme.verify_mode()));
    let mut rng = StdRng::seed_from_u64(o.seed);
    let mut dropped = 0usize;

    for seq in 1..=o.packets {
        let mut pkt = source.inject(&mut rng);
        if o.attack == AttackKind::IdentitySwap {
            let ctx = if rng.next_u64() & 1 == 0 {
                NodeContext::new(source_id, *keys.key(source_id.raw()).unwrap())
            } else {
                NodeContext::new(NodeId(o.mole), *keys.key(o.mole).unwrap())
            };
            scheme.mark(&ctx, &mut pkt, &mut rng);
        }
        let mut was_dropped = false;
        for hop in 0..o.hops {
            if hop == o.mole {
                if mole.process(&mut pkt, scheme.as_ref(), &mut rng) == MoleAction::Dropped {
                    was_dropped = true;
                    break;
                }
            } else {
                let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
                scheme.mark(&ctx, &mut pkt, &mut rng);
            }
        }
        if was_dropped {
            dropped += 1;
            continue;
        }
        sink.ingest(&pkt);

        if seq % o.every == 0 || seq == o.packets {
            let observed: Vec<NodeId> = sink.reconstructor().observed_nodes().collect();
            let loc = sink.localize();
            let suspect = match &loc {
                Localization::MostUpstream(c) => Some(*c),
                _ => None,
            };
            println!(
                "after {seq:>4} pkts ({dropped} dropped): {} marks collected, {}",
                observed.len(),
                match &loc {
                    Localization::MostUpstream(c) => format!("suspect = {c}"),
                    Localization::Ambiguous(c) => format!("{} candidates", c.len()),
                    Localization::Loop { members, junction } =>
                        format!("LOOP of {} nodes, junction {junction:?}", members.len()),
                    Localization::NoEvidence => "no evidence".to_string(),
                }
            );
            render_chain(o.hops, o.mole, &observed, suspect);
        }
    }

    println!();
    let c = sink.counters();
    println!(
        "sink pipeline: {} packets, {} marks verified ({} rejected), {} MAC evaluations for \
         anon-id resolution, {} anon-table builds ({} cache hits)",
        c.packets,
        c.marks_verified,
        c.marks_rejected,
        c.hash_count,
        c.table_builds,
        c.table_cache_hits
    );
    match sink.localize() {
        Localization::MostUpstream(c) => {
            let caught = c.raw() == o.mole
                || c.raw().abs_diff(o.mole) == 1
                || c == source_id
                || c.raw() == 0;
            println!(
                "verdict: the sink pins {c}'s one-hop neighborhood — {}",
                if caught {
                    "a mole is inside it. CAUGHT."
                } else {
                    "no mole there. The sink was MISLED."
                }
            );
        }
        Localization::Loop { junction, .. } => {
            println!(
                "verdict: identity-swap loop found; the mole hides at the junction {junction:?}'s \
                 neighborhood. CAUGHT."
            );
        }
        other => println!("verdict: inconclusive ({other:?}) — the attack hid the moles."),
    }
    ExitCode::SUCCESS
}
