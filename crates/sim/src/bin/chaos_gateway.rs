//! Gateway-edge chaos soak: sweeps client-side wire-fault intensity
//! (connection kills, resets, partial writes, bit flips, stalls, delays)
//! over a **live gateway on a Unix-domain socket** and gates the edge
//! resilience contract.
//!
//! ```text
//! chaos-gateway [--smoke] [--out FILE]
//! ```
//!
//! At every sweep point a [`ResilientClient`] pushes the same marked
//! packet stream through a [`ChaosTransport`](pnm_gateway::ChaosTransport)-wrapped wire into a fresh
//! gateway, then the tenant is drained and the gateway shut down
//! gracefully. The gates, all of which must hold at every intensity:
//!
//! - **exactly once**: every send resolves `Counted`, and the server's
//!   `ingested_total` equals the packet count — no loss, no double count,
//!   no matter how many retries and reconnects the faults forced;
//! - **evidence identity**: the drained evidence is byte-identical to a
//!   fault-free sequential run of the same packets — wire faults never
//!   alter (and therefore never falsely implicate) anything;
//! - **balanced accounting**: `attempts − packets == retries` and
//!   `connects − 1 == reconnects`, exactly; at intensity zero every
//!   fault/retry/duplicate counter is zero;
//! - **zero panics**: neither the client loop nor any shard worker
//!   panics (the drain summary's `panics` field is part of the gate);
//! - **graceful drain**: `shutdown_graceful` flushes within budget;
//! - **coherent ops**: a live ops snapshot fetched over the same
//!   chaos-wrapped connection names the tenant as running, counts
//!   exactly the acked packets, and shows a clean flight recorder
//!   (re-requested on garbled bodies — ops replies are read-only).
//!
//! The summary is merged into `BENCH_chaos.json` as a `"gateway"`
//! section, next to the network-layer soak written by `chaos_soak`.
//! `--smoke` runs the CI-sized sweep (2 points, 120 packets each).

use std::env;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use pnm_core::{
    IsolationPolicy, MarkingScheme, NodeContext, ProbabilisticNestedMarking, SinkConfig,
    SinkEngine, VerifyMode,
};
use pnm_crypto::KeyStore;
use pnm_gateway::{
    BackoffPolicy, ChaosPlan, ClientConfig, ClientReport, Connector, Gateway, GatewayClient,
    GatewayConfig, ResilientClient, ResilientConfig, TenantConfig, TenantRegistry,
};
use pnm_obs::{JsonValue, Registry};
use pnm_service::ServiceConfig;
use pnm_wire::{Location, NodeId, Packet, Report};
use rand::rngs::StdRng;
use rand::SeedableRng;

const NODES: u16 = 6;
const SEED: u64 = 2007;
const TENANT: &[u8] = b"edge";

fn temp_sock(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pnm-chaosgw-{}-{tag}.sock", std::process::id()))
}

fn sink_config() -> SinkConfig {
    SinkConfig::new(VerifyMode::Nested)
        .isolation(IsolationPolicy::SuspectsOnly)
        .table_cache_capacity(4)
}

fn workload(ks: &KeyStore, count: u64) -> Vec<Vec<u8>> {
    let scheme = ProbabilisticNestedMarking::paper_default(NODES as usize);
    let mut rng = StdRng::seed_from_u64(SEED);
    (0..count)
        .map(|seq| {
            let report = Report::new(
                format!("edge-{seq}").into_bytes(),
                Location::new(seq as f32, 0.0),
                seq,
            );
            let mut pkt = Packet::new(report);
            for hop in 0..NODES {
                let ctx = NodeContext::new(NodeId(hop), *ks.key(hop).unwrap());
                scheme.mark(&ctx, &mut pkt, &mut rng);
            }
            pkt.to_bytes()
        })
        .collect()
}

/// The fault-free reference: a solo sequential run mirroring the pool's
/// drain semantics (per-packet isolation stripped, policy applied once).
fn reference_evidence(ks: &Arc<KeyStore>, packets: &[Vec<u8>]) -> Vec<u8> {
    let mut seq = SinkEngine::new(Arc::clone(ks), sink_config().without_isolation());
    for p in packets {
        seq.ingest(&Packet::from_bytes(p).expect("workload packets are canonical"));
    }
    let mut merged = SinkEngine::new(Arc::clone(ks), sink_config());
    merged.absorb(&seq);
    merged.refresh_quarantine();
    merged.quarantine_source_regions();
    merged.evidence().to_bytes()
}

/// First integer value of the metrics line carrying `name` and every
/// label fragment in `labels`.
fn metric(text: &str, name: &str, labels: &[&str]) -> u64 {
    text.lines()
        .find(|l| l.starts_with(name) && labels.iter().all(|frag| l.contains(frag)))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

struct PointResult {
    intensity: f64,
    report: ClientReport,
    faults: [u64; 6], // kills, resets, partial_writes, corruptions, stalls, delays
    server_ingested: u64,
    server_duplicates: u64,
    all_counted: bool,
    evidence_identical: bool,
    drain_panics: u64,
    graceful: bool,
    mirrored_consistent: bool,
    ops_consistent: bool,
}

impl PointResult {
    fn balanced(&self) -> bool {
        let r = &self.report;
        r.attempts - r.counted == r.retries
            && r.connects.saturating_sub(1) == r.reconnects
            && self.server_duplicates >= r.duplicates
            && self.mirrored_consistent
    }

    fn quiet_if_calm(&self) -> bool {
        self.intensity > 0.0
            || (self.report.retries == 0
                && self.report.reconnects == 0
                && self.report.duplicates == 0
                && self.report.io_errors == 0
                && self.faults.iter().all(|&f| f == 0))
    }

    fn json(&self) -> String {
        let r = &self.report;
        format!(
            concat!(
                "    {{\"intensity\": {:.2}, \"packets\": {}, \"attempts\": {}, ",
                "\"retries\": {}, \"connects\": {}, \"reconnects\": {}, ",
                "\"io_errors\": {}, \"retryable_acks\": {}, \"duplicates\": {},\n",
                "     \"kills\": {}, \"resets\": {}, \"partial_writes\": {}, ",
                "\"corruptions\": {}, \"stalls\": {}, \"delays\": {},\n",
                "     \"server_ingested\": {}, \"server_duplicates\": {}, ",
                "\"drain_panics\": {}, \"all_acked_counted\": {}, ",
                "\"evidence_identical\": {}, \"graceful_shutdown\": {}, ",
                "\"ops_consistent\": {}}}"
            ),
            self.intensity,
            r.counted,
            r.attempts,
            r.retries,
            r.connects,
            r.reconnects,
            r.io_errors,
            r.retryable_acks,
            r.duplicates,
            self.faults[0],
            self.faults[1],
            self.faults[2],
            self.faults[3],
            self.faults[4],
            self.faults[5],
            self.server_ingested,
            self.server_duplicates,
            self.drain_panics,
            self.all_counted,
            self.evidence_identical,
            self.graceful,
            self.ops_consistent,
        )
    }
}

fn run_point(
    intensity: f64,
    ks: &Arc<KeyStore>,
    packets: &[Vec<u8>],
    reference: &[u8],
) -> PointResult {
    let registry = Arc::new(
        TenantRegistry::builder()
            .tenant(
                "edge",
                TenantConfig::new(Arc::clone(ks), ServiceConfig::new(sink_config()).shards(1)),
            )
            .build()
            .expect("tenant registry"),
    );
    let mut gw = Gateway::new(
        Arc::clone(&registry),
        GatewayConfig::default()
            .workers(2)
            .poll_interval(Duration::from_micros(200)),
    );
    let sock = temp_sock(&format!("i{:03}", (intensity * 100.0) as u32));
    gw.listen_uds(&sock).expect("listen");
    let handle = gw.spawn().expect("spawn");

    let connector = Connector::uds(&sock)
        .config(
            ClientConfig::default()
                .connect_timeout(Duration::from_secs(2))
                .read_timeout(Duration::from_millis(400))
                .write_timeout(Duration::from_millis(400)),
        )
        .chaos(
            ChaosPlan::at_intensity(intensity),
            SEED ^ intensity.to_bits(),
        );
    let counters = connector.chaos_counters();
    let client_metrics = Registry::default();
    let mut client = ResilientClient::new(
        connector,
        SEED,
        ResilientConfig::default()
            .backoff(
                BackoffPolicy::new(Duration::from_millis(1), Duration::from_millis(30))
                    .jitter(0.25),
            )
            .seed(SEED)
            .max_attempts(400),
    )
    .with_metrics(&client_metrics, "edge");

    let mut all_counted = true;
    for p in packets {
        match client.send(TENANT, p) {
            Ok(out) if out.is_counted() => {}
            Ok(_) | Err(_) => all_counted = false,
        }
    }

    // The live ops surface must agree with the wire: a snapshot fetched
    // over the same chaos-wrapped connection as the ingest traffic
    // names this tenant as running, counts exactly the acked packets,
    // and shows a clean flight recorder. Ops replies are read-only and
    // carry no ingest-style CRC, so a fault can garble one body; the
    // reader's contract is to re-request until a snapshot parses — the
    // gate fails only if no coherent snapshot arrives at all.
    let ops_consistent = (0..5).any(|_| {
        client
            .ops_snapshot(TENANT)
            .ok()
            .and_then(|text| pnm_obs::json::parse(&text).ok())
            .is_some_and(|v| {
                let str_field = |k: &str| v.get(k).and_then(|x| x.as_str().map(str::to_string));
                let ingested = v
                    .get("error_budget")
                    .and_then(|b| b.get("ingested"))
                    .and_then(JsonValue::as_u64);
                str_field("tenant").as_deref() == Some("edge")
                    && str_field("state").as_deref() == Some("running")
                    && ingested == Some(packets.len() as u64)
                    && v.get("flight_dumps").and_then(JsonValue::as_u64) == Some(0)
                    && v.get("panics").and_then(JsonValue::as_u64) == Some(0)
            })
    });

    let report = client.report();
    drop(client);

    use std::sync::atomic::Ordering::Relaxed;
    let faults = [
        counters.kills.load(Relaxed),
        counters.resets.load(Relaxed),
        counters.partial_writes.load(Relaxed),
        counters.corruptions.load(Relaxed),
        counters.stalls.load(Relaxed),
        counters.delays.load(Relaxed),
    ];

    // The obs mirror must agree with the report, attempt for attempt.
    let mirror = client_metrics.prometheus_text();
    let mirrored_consistent = metric(&mirror, "pnm_client_attempts_total", &["client=\"edge\""])
        == report.attempts
        && metric(&mirror, "pnm_client_retries_total", &["client=\"edge\""]) == report.retries
        && metric(&mirror, "pnm_client_acks_total", &["code=\"accepted\""])
            == report.counted - report.duplicates;

    let text = registry.metrics_text();
    let server_ingested = metric(&text, "pnm_gateway_ingested_total", &["tenant=\"edge\""]);
    let server_duplicates = metric(&text, "pnm_gateway_duplicate_total", &["tenant=\"edge\""]);

    let (evidence_identical, drain_panics) = {
        let mut c = GatewayClient::connect_uds(&sock).expect("drain connection");
        let verdict = c.drain(TENANT).expect("drain");
        let panics = verdict
            .summary_json
            .split("\"panics\": ")
            .nth(1)
            .and_then(|rest| {
                rest[..rest
                    .find(|c: char| !c.is_ascii_digit())
                    .unwrap_or(rest.len())]
                    .parse()
                    .ok()
            })
            .unwrap_or(u64::MAX);
        (verdict.evidence_bytes == reference, panics)
    };
    let graceful = handle.shutdown_graceful(Duration::from_secs(10));

    PointResult {
        intensity,
        report,
        faults,
        server_ingested,
        server_duplicates,
        all_counted,
        evidence_identical,
        drain_panics,
        graceful,
        mirrored_consistent,
        ops_consistent,
    }
}

fn merge_gateway_section(existing: Option<String>, section: &str) -> String {
    let head = match existing {
        Some(text) => {
            // Replace an earlier gateway section, or open up the closing
            // brace of the soak's summary object.
            let cut = text
                .find("\n  \"gateway\":")
                .map(|i| text[..i].trim_end().trim_end_matches(',').to_string())
                .or_else(|| {
                    text.trim_end()
                        .strip_suffix('}')
                        .map(|t| t.trim_end().trim_end_matches(',').to_string())
                });
            match cut {
                Some(h) if !h.trim().is_empty() && h.trim() != "{" => h,
                _ => "{".to_string(),
            }
        }
        None => "{".to_string(),
    };
    if head == "{" {
        format!("{{\n  \"gateway\": {section}\n}}\n")
    } else {
        format!("{head},\n  \"gateway\": {section}\n}}\n")
    }
}

fn main() -> ExitCode {
    let mut out = "BENCH_chaos.json".to_string();
    let mut smoke = false;
    let mut args = env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(v) => out = v,
                None => {
                    eprintln!("error: --out needs a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let packets_per_point: u64 = if smoke { 120 } else { 400 };
    let intensities: &[f64] = if smoke {
        &[0.0, 1.0]
    } else {
        &[0.0, 0.25, 0.5, 0.75, 1.0]
    };

    let ks = Arc::new(KeyStore::derive_from_master(b"edge-chaos", NODES));
    let packets = workload(&ks, packets_per_point);
    let reference = reference_evidence(&ks, &packets);

    let mut points = Vec::new();
    let mut panicked = false;
    for &intensity in intensities {
        eprintln!("chaos-gateway: intensity {intensity:.2}, {packets_per_point} packets over UDS");
        match catch_unwind(AssertUnwindSafe(|| {
            run_point(intensity, &ks, &packets, &reference)
        })) {
            Ok(p) => points.push(p),
            Err(_) => {
                eprintln!("chaos-gateway: PANIC at intensity {intensity:.2}");
                panicked = true;
            }
        }
    }

    let zero_panics = !panicked && points.iter().all(|p| p.drain_panics == 0);
    let all_counted = points
        .iter()
        .all(|p| p.all_counted && p.server_ingested == packets_per_point);
    let evidence_identical = points.iter().all(|p| p.evidence_identical);
    let counters_balanced = points.iter().all(PointResult::balanced);
    let calm_quiet = points.iter().all(PointResult::quiet_if_calm);
    let graceful = points.iter().all(|p| p.graceful);
    let ops_consistent = points.iter().all(|p| p.ops_consistent);
    let chaos_fired = points
        .iter()
        .any(|p| p.intensity >= 1.0 && p.faults.iter().sum::<u64>() > 0);

    let section = format!(
        concat!(
            "{{\n",
            "    \"scenario\": \"gateway edge chaos over UDS, {} packets per point, ",
            "{} nodes, seed {}\",\n",
            "    \"claim\": \"acked ingest is exactly-once under arbitrary wire chaos: ",
            "evidence byte-identical to the fault-free run, accounting balanced, ",
            "zero panics, graceful drain\",\n",
            "    \"mode\": \"{}\",\n",
            "    \"zero_panics\": {},\n",
            "    \"all_acked_counted\": {},\n",
            "    \"evidence_identical\": {},\n",
            "    \"counters_balanced\": {},\n",
            "    \"calm_point_quiet\": {},\n",
            "    \"graceful_shutdown\": {},\n",
            "    \"ops_consistent\": {},\n",
            "    \"chaos_fired\": {},\n",
            "    \"points\": [\n{}\n    ]\n",
            "  }}"
        ),
        packets_per_point,
        NODES,
        SEED,
        if smoke { "smoke" } else { "full" },
        zero_panics,
        all_counted,
        evidence_identical,
        counters_balanced,
        calm_quiet,
        graceful,
        ops_consistent,
        chaos_fired,
        points
            .iter()
            .map(PointResult::json)
            .collect::<Vec<_>>()
            .join(",\n"),
    );

    let merged = merge_gateway_section(std::fs::read_to_string(&out).ok(), &section);
    if let Err(e) = std::fs::write(&out, &merged) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote gateway section to {out}");

    if zero_panics
        && all_counted
        && evidence_identical
        && counters_balanced
        && calm_quiet
        && graceful
        && ops_consistent
        && chaos_fired
    {
        println!(
            "chaos-gateway: PASS ({} points, exactly-once held at every intensity)",
            points.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "chaos-gateway: FAIL (zero_panics={zero_panics} all_acked_counted={all_counted} \
             evidence_identical={evidence_identical} counters_balanced={counters_balanced} \
             calm_point_quiet={calm_quiet} graceful_shutdown={graceful} \
             ops_consistent={ops_consistent} chaos_fired={chaos_fired})"
        );
        ExitCode::FAILURE
    }
}
