//! CI validator for observability artifacts.
//!
//! ```text
//! obs-check [--trace FILE]... [--bench FILE]... [--flight FILE]...
//! ```
//!
//! For every `--trace` file (JSONL from a ring collector): each line must
//! parse as a JSON object with the event envelope (`event`, `kind`,
//! `span`, `at_us`), every `span_close` must carry a `dur_us` and match a
//! prior `span_open` on the same span id, and opens must balance closes
//! exactly at end of file. Trace identity is checked too: every traced
//! span naming a parent must have that parent opened **in the same
//! trace** somewhere in the file, and every traced instant's enclosing
//! span must belong to its trace — the causal-chain invariant behind
//! "one packet, one trace".
//!
//! For every `--bench` file: the document must parse and contain, at some
//! depth, a per-stage breakdown object carrying all five pipeline stage
//! keys ([`STAGE_NAMES`]).
//!
//! For every `--flight` file (a flight-recorder black-box): the first
//! line must be the anomaly header (a JSON object with string `anomaly`
//! and integer `dump`), and every following line must be a valid event
//! envelope. No balance requirement — a black-box is a snapshot of a live
//! ring, so spans may be open mid-dump.
//!
//! Exits nonzero, naming the file and line, on the first violation.

use std::collections::HashMap;
use std::env;
use std::process::ExitCode;

use pnm_core::STAGE_NAMES;
use pnm_obs::JsonValue;

/// Validates one event line's envelope and returns its decoded identity.
fn check_event_line(v: &JsonValue, fail: &dyn Fn(&str) -> String) -> Result<Envelope, String> {
    if v.get("event").and_then(JsonValue::as_str).is_none() {
        return Err(fail("missing string field \"event\""));
    }
    if v.get("at_us").and_then(JsonValue::as_u64).is_none() {
        return Err(fail("missing integer field \"at_us\""));
    }
    let kind = match v
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| fail("missing string field \"kind\""))?
    {
        "span_open" => Kind::Open,
        "span_close" => Kind::Close,
        "instant" => Kind::Instant,
        other => return Err(fail(&format!("unknown event kind {other:?}"))),
    };
    let span = v
        .get("span")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| fail("missing integer field \"span\""))?;
    if kind == Kind::Close && v.get("dur_us").and_then(JsonValue::as_u64).is_none() {
        return Err(fail("span_close without integer \"dur_us\""));
    }
    // Trace identity is optional (legacy events omit it) but must be
    // well-typed when present.
    let trace = match v.get("trace") {
        None => 0,
        Some(t) => t
            .as_u64()
            .ok_or_else(|| fail("field \"trace\" is not an integer"))?,
    };
    let parent = match v.get("parent") {
        None => 0,
        Some(p) => p
            .as_u64()
            .ok_or_else(|| fail("field \"parent\" is not an integer"))?,
    };
    Ok(Envelope {
        kind,
        span,
        trace,
        parent,
    })
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Open,
    Close,
    Instant,
}

struct Envelope {
    kind: Kind,
    span: u64,
    trace: u64,
    parent: u64,
}

fn check_trace(path: &str) -> Result<(usize, usize), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let mut open_spans: HashMap<u64, u64> = HashMap::new();
    // Every span ever opened in the file → its trace id (0 = untraced).
    let mut span_trace: HashMap<u64, u64> = HashMap::new();
    // Deferred parentage checks: (line, trace, parent span id). Checked
    // at EOF so concurrent shards' interleavings cannot false-positive.
    let mut need_parent: Vec<(usize, u64, u64)> = Vec::new();
    let mut events = 0usize;
    let mut spans = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fail = |msg: &str| format!("{path}:{}: {msg}", lineno + 1);
        let v = pnm_obs::json::parse(line).map_err(|e| fail(&format!("bad JSON: {e}")))?;
        events += 1;
        let env = check_event_line(&v, &fail)?;
        match env.kind {
            Kind::Open => {
                spans += 1;
                *open_spans.entry(env.span).or_insert(0) += 1;
                span_trace.insert(env.span, env.trace);
                if env.trace != 0 && env.parent != 0 {
                    need_parent.push((lineno + 1, env.trace, env.parent));
                }
            }
            Kind::Close => {
                let depth = open_spans
                    .get_mut(&env.span)
                    .ok_or_else(|| fail(&format!("span_close for unopened span {}", env.span)))?;
                *depth -= 1;
                if *depth == 0 {
                    open_spans.remove(&env.span);
                }
            }
            Kind::Instant => {
                // A traced instant's `span` is the enclosing span; it
                // must belong to the same trace.
                if env.trace != 0 && env.span != 0 {
                    need_parent.push((lineno + 1, env.trace, env.span));
                }
            }
        }
    }
    if !open_spans.is_empty() {
        let mut ids: Vec<u64> = open_spans.keys().copied().collect();
        ids.sort_unstable();
        return Err(format!(
            "{path}: {} span(s) never closed: {ids:?}",
            ids.len()
        ));
    }
    for (line, trace, parent) in need_parent {
        match span_trace.get(&parent) {
            None => {
                return Err(format!(
                    "{path}:{line}: parent span {parent} of trace {trace:#x} never opened"
                ))
            }
            Some(&t) if t != trace => {
                return Err(format!(
                    "{path}:{line}: parent span {parent} belongs to trace {t:#x}, not {trace:#x}"
                ))
            }
            Some(_) => {}
        }
    }
    Ok((events, spans))
}

fn check_flight(path: &str) -> Result<(usize, String), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (hline, header) = lines
        .next()
        .ok_or_else(|| format!("{path}: empty black-box"))?;
    let hline = hline + 1;
    let v = pnm_obs::json::parse(header).map_err(|e| format!("{path}:{hline}: bad JSON: {e}"))?;
    let anomaly = v
        .get("anomaly")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("{path}:{hline}: header missing string field \"anomaly\""))?
        .to_string();
    if v.get("dump").and_then(JsonValue::as_u64).is_none() {
        return Err(format!(
            "{path}:{hline}: header missing integer field \"dump\""
        ));
    }
    let mut events = 0usize;
    for (lineno, line) in lines {
        let fail = |msg: &str| format!("{path}:{}: {msg}", lineno + 1);
        let v = pnm_obs::json::parse(line).map_err(|e| fail(&format!("bad JSON: {e}")))?;
        check_event_line(&v, &fail)?;
        events += 1;
    }
    Ok((events, anomaly))
}

/// True when `v` (at any depth) is an object carrying every pipeline
/// stage key — the shape `StageMetrics::to_json_value` emits.
fn has_stage_block(v: &JsonValue) -> bool {
    match v {
        JsonValue::Object(entries) => {
            STAGE_NAMES
                .iter()
                .all(|stage| entries.iter().any(|(k, _)| k == stage))
                || entries.iter().any(|(_, child)| has_stage_block(child))
        }
        JsonValue::Array(items) => items.iter().any(has_stage_block),
        _ => false,
    }
}

fn check_bench(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let v = pnm_obs::json::parse(&text).map_err(|e| format!("{path}: bad JSON: {e}"))?;
    if !has_stage_block(&v) {
        return Err(format!(
            "{path}: no object carries all five stage keys {STAGE_NAMES:?}"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut traces = Vec::new();
    let mut benches = Vec::new();
    let mut flights = Vec::new();
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => match args.next() {
                Some(v) => traces.push(v),
                None => {
                    eprintln!("error: --trace needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--bench" => match args.next() {
                Some(v) => benches.push(v),
                None => {
                    eprintln!("error: --bench needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--flight" => match args.next() {
                Some(v) => flights.push(v),
                None => {
                    eprintln!("error: --flight needs a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    if traces.is_empty() && benches.is_empty() && flights.is_empty() {
        eprintln!("usage: obs-check [--trace FILE]... [--bench FILE]... [--flight FILE]...");
        return ExitCode::FAILURE;
    }

    for path in &traces {
        match check_trace(path) {
            Ok((events, spans)) => {
                println!("{path}: ok ({events} events, {spans} spans, balanced)");
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    for path in &benches {
        match check_bench(path) {
            Ok(()) => println!("{path}: ok (stage breakdown present)"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    for path in &flights {
        match check_flight(path) {
            Ok((events, anomaly)) => {
                println!("{path}: ok ({events} events, anomaly {anomaly:?})");
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
