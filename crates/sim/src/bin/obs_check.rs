//! CI validator for observability artifacts.
//!
//! ```text
//! obs-check [--trace FILE]... [--bench FILE]...
//! ```
//!
//! For every `--trace` file (JSONL from a ring collector): each line must
//! parse as a JSON object with the event envelope (`event`, `kind`,
//! `span`, `at_us`), every `span_close` must carry a `dur_us` and match a
//! prior `span_open` on the same span id, and opens must balance closes
//! exactly at end of file.
//!
//! For every `--bench` file: the document must parse and contain, at some
//! depth, a per-stage breakdown object carrying all five pipeline stage
//! keys ([`STAGE_NAMES`]).
//!
//! Exits nonzero, naming the file and line, on the first violation.

use std::collections::HashMap;
use std::env;
use std::process::ExitCode;

use pnm_core::STAGE_NAMES;
use pnm_obs::JsonValue;

fn check_trace(path: &str) -> Result<(usize, usize), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let mut open_spans: HashMap<u64, u64> = HashMap::new();
    let mut events = 0usize;
    let mut spans = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fail = |msg: &str| format!("{path}:{}: {msg}", lineno + 1);
        let v = pnm_obs::json::parse(line).map_err(|e| fail(&format!("bad JSON: {e}")))?;
        events += 1;
        if v.get("event").and_then(JsonValue::as_str).is_none() {
            return Err(fail("missing string field \"event\""));
        }
        if v.get("at_us").and_then(JsonValue::as_u64).is_none() {
            return Err(fail("missing integer field \"at_us\""));
        }
        let kind = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| fail("missing string field \"kind\""))?;
        let span = v
            .get("span")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| fail("missing integer field \"span\""))?;
        match kind {
            "span_open" => {
                spans += 1;
                *open_spans.entry(span).or_insert(0) += 1;
            }
            "span_close" => {
                if v.get("dur_us").and_then(JsonValue::as_u64).is_none() {
                    return Err(fail("span_close without integer \"dur_us\""));
                }
                let depth = open_spans
                    .get_mut(&span)
                    .ok_or_else(|| fail(&format!("span_close for unopened span {span}")))?;
                *depth -= 1;
                if *depth == 0 {
                    open_spans.remove(&span);
                }
            }
            "instant" => {}
            other => return Err(fail(&format!("unknown event kind {other:?}"))),
        }
    }
    if !open_spans.is_empty() {
        let mut ids: Vec<u64> = open_spans.keys().copied().collect();
        ids.sort_unstable();
        return Err(format!(
            "{path}: {} span(s) never closed: {ids:?}",
            ids.len()
        ));
    }
    Ok((events, spans))
}

/// True when `v` (at any depth) is an object carrying every pipeline
/// stage key — the shape `StageMetrics::to_json_value` emits.
fn has_stage_block(v: &JsonValue) -> bool {
    match v {
        JsonValue::Object(entries) => {
            STAGE_NAMES
                .iter()
                .all(|stage| entries.iter().any(|(k, _)| k == stage))
                || entries.iter().any(|(_, child)| has_stage_block(child))
        }
        JsonValue::Array(items) => items.iter().any(has_stage_block),
        _ => false,
    }
}

fn check_bench(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let v = pnm_obs::json::parse(&text).map_err(|e| format!("{path}: bad JSON: {e}"))?;
    if !has_stage_block(&v) {
        return Err(format!(
            "{path}: no object carries all five stage keys {STAGE_NAMES:?}"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut traces = Vec::new();
    let mut benches = Vec::new();
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => match args.next() {
                Some(v) => traces.push(v),
                None => {
                    eprintln!("error: --trace needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--bench" => match args.next() {
                Some(v) => benches.push(v),
                None => {
                    eprintln!("error: --bench needs a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    if traces.is_empty() && benches.is_empty() {
        eprintln!("usage: obs-check [--trace FILE]... [--bench FILE]...");
        return ExitCode::FAILURE;
    }

    for path in &traces {
        match check_trace(path) {
            Ok((events, spans)) => {
                println!("{path}: ok ({events} events, {spans} spans, balanced)");
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    for path in &benches {
        match check_bench(path) {
            Ok(()) => println!("{path}: ok (stage breakdown present)"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
