//! Regenerates every figure and table of the paper's evaluation.
//!
//! ```text
//! regen-figures [fig4|fig5|fig6|fig7|attack-matrix|latency|all]
//!               [--runs N] [--csv] [--packets N]
//! ```
//!
//! Defaults follow the paper: 5000 runs for Figure 5, 100 runs for
//! Figures 6/7. Use `--runs` to trade fidelity for speed.

use std::env;
use std::process::ExitCode;

use pnm_sim::{
    attack_matrix, background_table, baselines_table, dynamics_table, field_study_table, fig4,
    fig5, fig67, filtering_table, frames_table, latency_table, mac_width_table, one_by_one_table,
    overhead_table, tradeoff_table, AttackScenario, Table,
};

struct Options {
    target: String,
    runs: Option<usize>,
    csv: bool,
    packets: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut target = None;
    let mut runs = None;
    let mut csv = false;
    let mut packets = 80;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--runs" => {
                let v = args.next().ok_or("--runs needs a value")?;
                runs = Some(v.parse::<usize>().map_err(|e| format!("--runs: {e}"))?);
            }
            "--packets" => {
                let v = args.next().ok_or("--packets needs a value")?;
                packets = v.parse::<u64>().map_err(|e| format!("--packets: {e}"))?;
            }
            "--csv" => csv = true,
            other if !other.starts_with('-') && target.is_none() => {
                target = Some(other.to_string());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Options {
        target: target.unwrap_or_else(|| "all".to_string()),
        runs,
        csv,
        packets,
    })
}

fn emit(table: &Table, csv: bool) {
    if csv {
        print!("# {}\n{}", table.title, table.to_csv());
    } else {
        println!("{table}");
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: regen-figures [fig4|fig5|fig6|fig7|attack-matrix|latency|background|\
                 dynamics|overhead|all] [--runs N] [--csv] [--packets N]"
            );
            return ExitCode::FAILURE;
        }
    };

    let fig5_runs = opts.runs.unwrap_or(5000);
    let fig67_runs = opts.runs.unwrap_or(100);

    match opts.target.as_str() {
        "fig4" => emit(&fig4(opts.packets), opts.csv),
        "fig5" => emit(&fig5(fig5_runs, 40), opts.csv),
        "fig6" => emit(&fig67(fig67_runs).0, opts.csv),
        "fig7" => emit(&fig67(fig67_runs).1, opts.csv),
        "fig67" => {
            let (f6, f7) = fig67(fig67_runs);
            emit(&f6, opts.csv);
            emit(&f7, opts.csv);
        }
        "attack-matrix" => emit(
            &attack_matrix(&AttackScenario::default_cell(2024)),
            opts.csv,
        ),
        "latency" => emit(&latency_table(1500, 50.0, 7), opts.csv),
        "background" => emit(&background_table(300, 7), opts.csv),
        "dynamics" => emit(&dynamics_table(400, 7), opts.csv),
        "overhead" => emit(&overhead_table(200, 7), opts.csv),
        "one-by-one" => emit(&one_by_one_table(300, 11), opts.csv),
        "filtering" => emit(&filtering_table(10, 600, 7), opts.csv),
        "baselines" => emit(&baselines_table(10, 300, 7), opts.csv),
        "tradeoff" => emit(&tradeoff_table(20, 7), opts.csv),
        "mac-width" => emit(&mac_width_table(4000, 7), opts.csv),
        "field-study" => emit(&field_study_table(3, 300, 7), opts.csv),
        "frames" => emit(&frames_table(2000, 0.01, 7), opts.csv),
        "all" => {
            emit(&fig4(opts.packets), opts.csv);
            emit(&fig5(fig5_runs, 40), opts.csv);
            let (f6, f7) = fig67(fig67_runs);
            emit(&f6, opts.csv);
            emit(&f7, opts.csv);
            emit(
                &attack_matrix(&AttackScenario::default_cell(2024)),
                opts.csv,
            );
            emit(&latency_table(1500, 50.0, 7), opts.csv);
            emit(&background_table(300, 7), opts.csv);
            emit(&dynamics_table(400, 7), opts.csv);
            emit(&overhead_table(200, 7), opts.csv);
            emit(&one_by_one_table(300, 11), opts.csv);
            emit(&filtering_table(10, 600, 7), opts.csv);
            emit(&baselines_table(10, 300, 7), opts.csv);
            emit(&tradeoff_table(20, 7), opts.csv);
            emit(&mac_width_table(4000, 7), opts.csv);
            emit(&field_study_table(3, 300, 7), opts.csv);
            emit(&frames_table(2000, 0.01, 7), opts.csv);
        }
        other => {
            eprintln!("error: unknown target {other}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
