//! Experiment harness for the PNM reproduction: everything needed to
//! regenerate the paper's evaluation (§6) and discussion (§7) numbers.
//!
//! - [`scenario`] — scheme selection and the paper's path scenarios.
//! - [`runner`] — seeded, parallel Monte-Carlo runs.
//! - [`figures`] — regenerates Figures 4–7.
//! - [`attack_matrix`](mod@attack_matrix) — the scheme × attack security matrix (§3, §5).
//! - [`latency`] — the §7 traceback-latency claim on the Mica2 radio model.
//! - [`chaos`] — fault-injection soak: localization degradation under
//!   bursty loss, corruption, and duplication (the `chaos_soak` binary).
//! - [`table`] — console/CSV result tables.
//!
//! The `regen-figures` binary drives all of it:
//!
//! ```text
//! cargo run -p pnm-sim --release --bin regen-figures -- all --runs 100
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod attack_matrix;
pub mod background;
pub mod baselines_cmp;
pub mod chaos;
pub mod dynamics;
pub mod field_study;
pub mod figures;
pub mod filtering;
pub mod frames;
pub mod latency;
pub mod one_by_one;
pub mod overhead;
pub mod runner;
pub mod scenario;
pub mod spec;
pub mod table;

pub use ablation::{
    mac_width_table, measure_mac_width, measure_tradeoff, tradeoff_table, MacWidthRow, TradeoffRow,
};
pub use attack_matrix::{attack_matrix, evaluate_cell, AttackScenario, Outcome};
pub use background::{background_table, run_background_traffic, BackgroundRun};
pub use baselines_cmp::{baselines_table, compare_approaches, ApproachCost};
pub use chaos::{
    run_point as run_chaos_point, sweep_points as chaos_sweep_points, ChaosConfig, ChaosPoint,
    ChaosRun,
};
pub use dynamics::{dynamics_table, run_with_churn, DynamicsRun};
pub use field_study::{field_study_table, run_field_study, FieldRound, FieldStudy};
pub use figures::{fig4, fig5, fig6, fig67, fig7, identification_sweep, IdentificationPoint};
pub use filtering::{filtering_table, run_filtering_traceback, FilteringRun, SefParams};
pub use frames::{frames_table, measure_frames, FrameCell};
pub use latency::{latency_table, traceback_latency, LatencyResult};
pub use one_by_one::{iterative_cleanup, one_by_one_table, CatchRound, CleanupResult};
pub use overhead::{measure_overhead, overhead_table, OverheadCell};
pub use runner::{bogus_packet, parallel_runs, run_honest_path, HonestRun};
pub use scenario::{PathScenario, SchemeKind};
pub use spec::{ScenarioSpec, SpecError};
pub use table::Table;
