//! Filtering + traceback: the §8 complementarity argument, quantified.
//!
//! "Several en-route filtering schemes have been proposed to drop the
//! false data en-route… However, these schemes only mitigate the threats.
//! First, none of them can achieve perfect filtering. Second, filtering
//! does not prevent moles from continuing to inject bogus reports…
//! Our traceback scheme complements the filtering ones by locating the
//! moles."
//!
//! Setup: an n-hop chain where every forwarder runs both SEF en-route
//! checking (`pnm-filter`) and PNM marking (`pnm-core`). A source mole
//! that compromised `c` key partitions injects forged endorsed reports.
//! Measured per `c`: how far forgeries travel (vs the closed form), how
//! much energy filtering saves, and how many injections traceback needs —
//! showing that filtering weakens as `c` grows while traceback keeps
//! working (and at `c = t` filtering is blind, leaving traceback as the
//! only defense).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use pnm_analysis::OnlineStats;
use pnm_core::{
    MarkingScheme, NodeContext, ProbabilisticNestedMarking, SinkConfig, SinkEngine, VerifyMode,
};
use pnm_crypto::KeyStore;
use pnm_filter::{
    en_route_check, expected_filtering_hops, forge_report, per_hop_detection_probability,
    sink_check, FilterDecision, KeyPool, KeyRing,
};
use pnm_wire::{Location, NodeId, Packet, Report};

use crate::table::Table;

/// SEF parameters used throughout the experiment.
#[derive(Clone, Copy, Debug)]
pub struct SefParams {
    /// Key-pool partitions.
    pub partitions: u16,
    /// Keys per partition.
    pub keys_per_partition: u16,
    /// Ring size per node.
    pub ring_size: u16,
    /// Required endorsements per report.
    pub t: usize,
}

impl Default for SefParams {
    fn default() -> Self {
        SefParams {
            partitions: 10,
            keys_per_partition: 8,
            ring_size: 4,
            t: 5,
        }
    }
}

/// Result of one filtering + traceback run.
#[derive(Clone, Debug)]
pub struct FilteringRun {
    /// Compromised partitions.
    pub compromised: usize,
    /// Forged packets injected.
    pub injected: usize,
    /// Dropped en route by SEF.
    pub filtered_en_route: usize,
    /// Hops traveled by filtered packets.
    pub hops_before_drop: OnlineStats,
    /// Reached the sink (all flagged bogus there — SEF's sink check is
    /// exhaustive).
    pub reached_sink: usize,
    /// Whether PNM identified the mole's first forwarder.
    pub identified: bool,
    /// Injections needed until identification settled.
    pub injections_to_identify: Option<usize>,
    /// The closed-form per-hop detection probability.
    pub analytic_per_hop: f64,
}

/// Runs `injected` forged reports from a mole with `compromised` distinct
/// partitions down an `n`-hop chain running SEF + PNM.
pub fn run_filtering_traceback(
    n: u16,
    params: SefParams,
    compromised: usize,
    injected: usize,
    seed: u64,
) -> FilteringRun {
    let pool = KeyPool::new(b"sef-sim", params.partitions, params.keys_per_partition);
    // Forwarder rings: node i gets ring i (ids offset by 1000 to decouple
    // ring assignment from the mole's compromised rings).
    let rings: Vec<KeyRing> = (0..n)
        .map(|i| pool.assign_ring(1000 + i, params.ring_size))
        .collect();
    // The mole's compromised rings: `compromised` distinct partitions.
    let mut mole_rings: Vec<KeyRing> = Vec::new();
    let mut parts = std::collections::HashSet::new();
    for node in 0..2000u16 {
        let r = pool.assign_ring(node, params.ring_size);
        if parts.insert(r.partition) {
            mole_rings.push(r);
            if mole_rings.len() == compromised {
                break;
            }
        }
    }
    let mole_ring_refs: Vec<&KeyRing> = mole_rings.iter().collect();

    let keys = Arc::new(KeyStore::derive_from_master(b"sef-pnm", n));
    let scheme = ProbabilisticNestedMarking::paper_default(n as usize);
    let mut sink = SinkEngine::new(Arc::clone(&keys), SinkConfig::new(VerifyMode::Nested));
    let mut rng = StdRng::seed_from_u64(seed);

    let mut run = FilteringRun {
        compromised,
        injected,
        filtered_en_route: 0,
        hops_before_drop: OnlineStats::new(),
        reached_sink: 0,
        identified: false,
        injections_to_identify: None,
        analytic_per_hop: per_hop_detection_probability(
            params.partitions,
            params.keys_per_partition,
            params.ring_size,
            params.t,
            compromised,
        ),
    };

    let mut status: Vec<(usize, Option<NodeId>)> = Vec::new(); // (injection #, status)
    for seq in 0..injected {
        let report = Report::new(
            format!("forged-{seq}").into_bytes(),
            Location::new(999.0, 999.0),
            seq as u64,
        );
        let endorsed = forge_report(
            &report,
            &mole_ring_refs,
            params.t,
            params.partitions,
            &mut rng,
        );
        let mut pkt = Packet::new(endorsed.report.clone());
        let mut dropped_at = None;
        for hop in 0..n {
            // SEF check first: a forwarder drops provably forged reports.
            if en_route_check(&rings[hop as usize], &endorsed, params.t)
                == FilterDecision::DropForged
            {
                dropped_at = Some(hop as usize + 1);
                break;
            }
            // Still alive: PNM marking as usual.
            let ctx = NodeContext::new(NodeId(hop), *keys.key(hop).unwrap());
            scheme.mark(&ctx, &mut pkt, &mut rng);
        }
        match dropped_at {
            Some(hops) => {
                run.filtered_en_route += 1;
                run.hops_before_drop.push(hops as f64);
            }
            None => {
                run.reached_sink += 1;
                // The sink's exhaustive check flags it bogus (never passes
                // unless the mole covers all t partitions), feeding
                // traceback.
                let bogus = !sink_check(&pool, &endorsed, params.t);
                if bogus || compromised >= params.t {
                    sink.ingest(&pkt);
                    status.push((seq + 1, sink.unequivocal_source()));
                }
            }
        }
    }

    if status.last().and_then(|(_, s)| *s) == Some(NodeId(0)) {
        run.identified = true;
        let mut idx = status.len();
        while idx > 0 && status[idx - 1].1 == Some(NodeId(0)) {
            idx -= 1;
        }
        run.injections_to_identify = Some(status[idx].0);
    }
    run
}

/// The filtering + traceback table: compromised-partition sweep.
pub fn filtering_table(n: u16, injected: usize, seed: u64) -> Table {
    let params = SefParams::default();
    let mut t = Table::new(
        format!(
            "SEF filtering + PNM traceback ({n}-hop chain, t={}, {injected} forged injections)",
            params.t
        ),
        vec![
            "compromised partitions",
            "filtered en route",
            "mean hops (sim)",
            "mean hops (analytic)",
            "reached sink",
            "mole identified",
            "injections to identify",
        ],
    );
    for c in [1usize, 2, 3, 4, 5] {
        let r = run_filtering_traceback(n, params, c, injected, seed);
        // Conditional mean hop-of-drop (among dropped packets), comparable
        // to the simulated column: (E − h·q^h) / (1 − q^h).
        let (unconditional, survive) = expected_filtering_hops(r.analytic_per_hop, n as usize);
        let analytic_hops = if survive < 1.0 - 1e-12 {
            (unconditional - n as f64 * survive) / (1.0 - survive)
        } else {
            f64::NAN
        };
        t.push_row(vec![
            c.to_string(),
            format!("{}/{}", r.filtered_en_route, r.injected),
            if r.hops_before_drop.count() > 0 {
                format!("{:.1}", r.hops_before_drop.mean())
            } else {
                "-".into()
            },
            if analytic_hops.is_nan() {
                "-".to_string()
            } else {
                format!("{analytic_hops:.1}")
            },
            r.reached_sink.to_string(),
            if r.identified { "yes" } else { "no" }.to_string(),
            r.injections_to_identify
                .map_or("-".into(), |p| p.to_string()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filtering_weakens_as_compromise_grows() {
        let p = SefParams::default();
        let low = run_filtering_traceback(10, p, 1, 400, 5);
        let high = run_filtering_traceback(10, p, 4, 400, 5);
        let full = run_filtering_traceback(10, p, 5, 400, 5);
        assert!(
            low.filtered_en_route > high.filtered_en_route,
            "low {} vs high {}",
            low.filtered_en_route,
            high.filtered_en_route
        );
        // Full partition coverage: SEF cannot filter anything.
        assert_eq!(full.filtered_en_route, 0);
        assert_eq!(full.reached_sink, 400);
    }

    #[test]
    fn traceback_still_identifies_under_filtering() {
        // Even when most forgeries are filtered en route, enough survivors
        // reach the sink for PNM to pin the mole's first forwarder.
        let r = run_filtering_traceback(10, SefParams::default(), 1, 800, 7);
        assert!(r.identified, "{r:?}");
        assert!(r.filtered_en_route > 0);
    }

    #[test]
    fn traceback_is_the_only_defense_at_full_coverage() {
        let r = run_filtering_traceback(10, SefParams::default(), 5, 400, 9);
        assert_eq!(r.filtered_en_route, 0, "filtering blind at c=t");
        assert!(r.identified, "traceback still works: {r:?}");
    }

    #[test]
    fn simulated_drop_hops_match_analysis() {
        let p = SefParams::default();
        let r = run_filtering_traceback(10, p, 1, 2000, 11);
        let per_hop = r.analytic_per_hop;
        assert!((per_hop - 0.2).abs() < 1e-9);
        let (expected, _) = expected_filtering_hops(per_hop, 10);
        // Compare the mean drop hop among *dropped* packets against the
        // truncated-geometric mean conditioned on dropping.
        // E[hops | dropped] = (E - h·q^h) / (1 - q^h).
        let q: f64 = 1.0 - per_hop;
        let survive = q.powi(10);
        let conditional = (expected - 10.0 * survive) / (1.0 - survive);
        let sim = r.hops_before_drop.mean();
        assert!(
            (sim - conditional).abs() < 0.4,
            "sim {sim} vs analytic {conditional}"
        );
    }

    #[test]
    fn table_renders() {
        let t = filtering_table(10, 200, 3);
        assert_eq!(t.len(), 5);
    }
}
