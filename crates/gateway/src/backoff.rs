//! Capped exponential backoff with seeded, bounded jitter.
//!
//! Pure and deterministic: the delay for attempt `n` is a function of
//! (policy, seed, n) alone, so a soak run replays byte-for-byte from its
//! seed and the proptests in this module can pin the schedule's shape —
//! monotone non-decreasing until the cap, jitter inside its band.

use std::time::Duration;

use crate::chaos::splitmix64;

/// Jitter is clamped to at most 1/3: a doubling schedule stays monotone
/// non-decreasing exactly when `2·(1−j) ≥ (1+j)`, i.e. `j ≤ 1/3`.
pub const MAX_JITTER: f64 = 1.0 / 3.0;

/// The shape of a backoff schedule: base delay, doubling, cap, jitter
/// fraction.
#[derive(Clone, Copy, Debug)]
pub struct BackoffPolicy {
    base: Duration,
    cap: Duration,
    jitter: f64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy::new(Duration::from_millis(10), Duration::from_secs(2))
    }
}

impl BackoffPolicy {
    /// Doubling from `base` up to `cap`, no jitter. `cap` is raised to at
    /// least `base`.
    pub fn new(base: Duration, cap: Duration) -> Self {
        BackoffPolicy {
            base,
            cap: cap.max(base),
            jitter: 0.0,
        }
    }

    /// Multiplies every delay by a seeded factor in `[1−j, 1+j)`. `j` is
    /// clamped to `[0, 1/3]` ([`MAX_JITTER`]) so the schedule stays
    /// monotone non-decreasing below the cap.
    pub fn jitter(mut self, j: f64) -> Self {
        self.jitter = if j.is_finite() {
            j.clamp(0.0, MAX_JITTER)
        } else {
            0.0
        };
        self
    }

    /// The nominal (jitter-free) delay for `attempt` (0-based):
    /// `min(base · 2^attempt, cap)`.
    pub fn nominal(&self, attempt: u32) -> Duration {
        let base = self.base.as_nanos();
        let cap = self.cap.as_nanos();
        let exp = base.saturating_mul(1u128.checked_shl(attempt.min(96)).unwrap_or(u128::MAX));
        let ns = exp.min(cap);
        Duration::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX))
    }

    /// Binds the policy to a seed, yielding the concrete schedule.
    pub fn schedule(self, seed: u64) -> BackoffSchedule {
        BackoffSchedule { policy: self, seed }
    }
}

/// A [`BackoffPolicy`] bound to a seed — a pure function from attempt
/// number to delay.
#[derive(Clone, Copy, Debug)]
pub struct BackoffSchedule {
    policy: BackoffPolicy,
    seed: u64,
}

impl BackoffSchedule {
    /// The delay before retry number `attempt` (0-based). Deterministic:
    /// the same (policy, seed, attempt) always yields the same delay, and
    /// the draw is keyed by attempt (not by call order), so interleaved
    /// queries cannot skew the schedule.
    pub fn delay(&self, attempt: u32) -> Duration {
        let nominal = self.policy.nominal(attempt);
        let j = self.policy.jitter;
        if j == 0.0 {
            return nominal;
        }
        let mut state = self.seed ^ (u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let unit = (splitmix64(&mut state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let factor = 1.0 - j + 2.0 * j * unit;
        Duration::from_nanos((nominal.as_nanos() as f64 * factor) as u64)
    }

    /// The policy's jitter-free delay for `attempt`.
    pub fn nominal(&self, attempt: u32) -> Duration {
        self.policy.nominal(attempt)
    }

    /// The configured jitter fraction.
    pub fn jitter(&self) -> f64 {
        self.policy.jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_jitter_doubles_to_the_cap_exactly() {
        let s = BackoffPolicy::new(Duration::from_millis(10), Duration::from_millis(100))
            .schedule(1234);
        assert_eq!(s.delay(0), Duration::from_millis(10));
        assert_eq!(s.delay(1), Duration::from_millis(20));
        assert_eq!(s.delay(2), Duration::from_millis(40));
        assert_eq!(s.delay(3), Duration::from_millis(80));
        assert_eq!(s.delay(4), Duration::from_millis(100), "capped");
        assert_eq!(s.delay(60), Duration::from_millis(100));
        // Huge attempt numbers must not overflow.
        assert_eq!(s.delay(u32::MAX), Duration::from_millis(100));
    }

    #[test]
    fn jitter_clamps_to_the_monotone_bound() {
        assert_eq!(
            BackoffPolicy::default().jitter(0.9).schedule(0).jitter(),
            MAX_JITTER
        );
        assert_eq!(
            BackoffPolicy::default()
                .jitter(f64::NAN)
                .schedule(0)
                .jitter(),
            0.0
        );
        assert_eq!(
            BackoffPolicy::default().jitter(-1.0).schedule(0).jitter(),
            0.0
        );
    }

    proptest! {
        /// Delays never decrease while the nominal value is below the cap.
        #[test]
        fn monotone_nondecreasing_up_to_the_cap(
            seed in any::<u64>(),
            base_ms in 1u64..500,
            cap_mult in 1u64..64,
            jitter in 0.0f64..1.0,
        ) {
            let base = Duration::from_millis(base_ms);
            let cap = Duration::from_millis(base_ms * cap_mult);
            let s = BackoffPolicy::new(base, cap).jitter(jitter).schedule(seed);
            for attempt in 0..20u32 {
                // Once the next nominal hits the cap, jitter may wiggle
                // within the cap band; below it, monotone must hold.
                if s.nominal(attempt + 1) < cap {
                    prop_assert!(
                        s.delay(attempt + 1) >= s.delay(attempt),
                        "attempt {attempt}: {:?} then {:?}",
                        s.delay(attempt),
                        s.delay(attempt + 1),
                    );
                }
            }
        }

        /// Every delay stays inside its jitter band around the nominal.
        #[test]
        fn jitter_stays_within_bounds(
            seed in any::<u64>(),
            base_ms in 1u64..1000,
            cap_mult in 1u64..64,
            jitter in 0.0f64..1.0,
        ) {
            let base = Duration::from_millis(base_ms);
            let cap = Duration::from_millis(base_ms * cap_mult);
            let s = BackoffPolicy::new(base, cap).jitter(jitter).schedule(seed);
            let j = s.jitter();
            for attempt in 0..24u32 {
                let nominal = s.nominal(attempt).as_nanos() as f64;
                let d = s.delay(attempt).as_nanos() as f64;
                // One nanosecond of slack for the float round-trip.
                prop_assert!(d >= nominal * (1.0 - j) - 1.0);
                prop_assert!(d <= nominal * (1.0 + j) + 1.0);
                prop_assert!(s.delay(attempt) <= Duration::from_nanos(
                    (cap.as_nanos() as f64 * (1.0 + j)) as u64 + 1
                ));
            }
        }

        /// Same seed, same schedule; different seed, (almost surely)
        /// different draws but identical nominal shape.
        #[test]
        fn deterministic_per_seed(
            seed in any::<u64>(),
            base_ms in 1u64..1000,
            jitter in 0.01f64..1.0,
        ) {
            let policy = BackoffPolicy::new(
                Duration::from_millis(base_ms),
                Duration::from_millis(base_ms * 32),
            ).jitter(jitter);
            let a = policy.schedule(seed);
            let b = policy.schedule(seed);
            let c = policy.schedule(seed ^ 0xdead_beef);
            for attempt in 0..16u32 {
                prop_assert_eq!(a.delay(attempt), b.delay(attempt));
                prop_assert_eq!(a.nominal(attempt), c.nominal(attempt));
            }
        }
    }
}
