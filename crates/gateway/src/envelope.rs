//! The gateway's framed envelope protocol.
//!
//! Every request on a gateway connection is one length-prefixed frame
//! carrying `pnm-wire` canonical packet bytes (or nothing, for control
//! opcodes) plus a small envelope identifying the tenant:
//!
//! ```text
//! magic(2 = "PG") | version(1) | opcode(1) | tenant_len(1) | tenant |
//! payload_len(4, BE) | payload
//! ```
//!
//! Responses are simpler — requests are answered in order on the same
//! connection, so no correlation id is needed:
//!
//! ```text
//! status(1) | payload_len(4, BE) | payload
//! ```
//!
//! Decoding is **total** in the same sense as `pnm-wire`: for any byte
//! stream the decoder returns a frame, "need more bytes", or a structured
//! [`EnvelopeError`] — never a panic, and never an allocation driven by an
//! unvalidated length field (both length fields are checked against hard
//! caps before any buffer grows). Because frames are delimited only by
//! their own lengths, a connection that produced an envelope error cannot
//! be resynchronized and must be closed; the gateway counts the rejection
//! first.

use std::fmt;

/// Frame magic: `"PG"` (PNM gateway).
pub const MAGIC: [u8; 2] = *b"PG";

/// Protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Fixed bytes before the tenant id: magic + version + opcode + tenant_len.
pub const FIXED_HEADER: usize = 5;

/// Hard cap on the tenant-id length (the field is one byte, but tenant
/// names double as metrics label values, so keep them short).
pub const MAX_TENANT_LEN: usize = 64;

/// Default cap on a request payload. A marked packet is a few hundred
/// bytes; 1 MiB leaves two orders of magnitude of headroom while bounding
/// what a hostile length field can make the server buffer.
pub const DEFAULT_MAX_PAYLOAD: usize = 1 << 20;

/// What the client asks the gateway to do with a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpCode {
    /// Payload is one canonical packet; feed it to the tenant's pool.
    /// Fire-and-forget: no response frame, rejections are counted.
    Ingest = 0,
    /// Respond with the tenant's live service snapshot as JSON.
    Snapshot = 1,
    /// Respond with the whole gateway's Prometheus text exposition
    /// (every tenant, `tenant="..."` labels). The envelope's tenant field
    /// is ignored — scrape agents are not tenants.
    MetricsText = 2,
    /// Drain the tenant's pool and respond with its verdict: canonical
    /// evidence bytes plus a JSON summary (see
    /// [`crate::DrainVerdict`]). Idempotent — a second drain returns the
    /// same bytes.
    Drain = 3,
}

impl OpCode {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(OpCode::Ingest),
            1 => Some(OpCode::Snapshot),
            2 => Some(OpCode::MetricsText),
            3 => Some(OpCode::Drain),
            _ => None,
        }
    }
}

/// One decoded request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Protocol version (always [`VERSION`] after a successful decode).
    pub version: u8,
    /// The requested operation.
    pub opcode: OpCode,
    /// Tenant id bytes (1..=[`MAX_TENANT_LEN`]).
    pub tenant: Vec<u8>,
    /// Operation payload (canonical packet bytes for `Ingest`).
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Builds an ingest frame for a tenant.
    pub fn ingest(tenant: &[u8], packet_bytes: &[u8]) -> Self {
        Envelope {
            version: VERSION,
            opcode: OpCode::Ingest,
            tenant: tenant.to_vec(),
            payload: packet_bytes.to_vec(),
        }
    }

    /// Builds a payload-less control frame.
    pub fn control(opcode: OpCode, tenant: &[u8]) -> Self {
        Envelope {
            version: VERSION,
            opcode,
            tenant: tenant.to_vec(),
            payload: Vec::new(),
        }
    }

    /// Canonical frame encoding.
    ///
    /// # Panics
    ///
    /// Panics if the tenant id is empty or longer than
    /// [`MAX_TENANT_LEN`], or the payload exceeds `u32::MAX` — both are
    /// caller bugs, not wire conditions.
    pub fn encode(&self) -> Vec<u8> {
        assert!(
            !self.tenant.is_empty() && self.tenant.len() <= MAX_TENANT_LEN,
            "tenant id must be 1..={MAX_TENANT_LEN} bytes"
        );
        assert!(u32::try_from(self.payload.len()).is_ok(), "payload too big");
        let mut out = Vec::with_capacity(FIXED_HEADER + self.tenant.len() + 4 + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(self.version);
        out.push(self.opcode as u8);
        out.push(self.tenant.len() as u8);
        out.extend_from_slice(&self.tenant);
        out.extend_from_slice(&(self.payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Tries to decode one frame from the front of `buf`.
    ///
    /// Returns `Ok(Some((envelope, consumed)))` on a complete frame,
    /// `Ok(None)` when `buf` holds a valid but incomplete prefix (read
    /// more bytes and retry), or a structured [`EnvelopeError`] as soon as
    /// the prefix can no longer begin a valid frame. Total: never panics,
    /// never allocates more than the frame's checked lengths.
    pub fn decode(
        buf: &[u8],
        max_payload: usize,
    ) -> Result<Option<(Envelope, usize)>, EnvelopeError> {
        // Validate fixed fields as soon as their bytes exist, so garbage
        // fails fast instead of stalling as a "partial frame".
        if !buf.is_empty() && buf[0] != MAGIC[0] {
            return Err(EnvelopeError::BadMagic([buf[0], 0]));
        }
        if buf.len() >= 2 && buf[..2] != MAGIC {
            return Err(EnvelopeError::BadMagic([buf[0], buf[1]]));
        }
        if buf.len() >= 3 && buf[2] != VERSION {
            return Err(EnvelopeError::BadVersion(buf[2]));
        }
        if buf.len() >= 4 && OpCode::from_u8(buf[3]).is_none() {
            return Err(EnvelopeError::BadOpcode(buf[3]));
        }
        if buf.len() >= 5 && (buf[4] == 0 || buf[4] as usize > MAX_TENANT_LEN) {
            return Err(EnvelopeError::BadTenantLen(buf[4]));
        }
        if buf.len() < FIXED_HEADER {
            return Ok(None);
        }
        let opcode = OpCode::from_u8(buf[3]).expect("validated above");
        let tenant_len = buf[4] as usize;
        let len_off = FIXED_HEADER + tenant_len;
        if buf.len() < len_off + 4 {
            return Ok(None);
        }
        let declared = u32::from_be_bytes([
            buf[len_off],
            buf[len_off + 1],
            buf[len_off + 2],
            buf[len_off + 3],
        ]) as usize;
        if declared > max_payload {
            return Err(EnvelopeError::PayloadTooLarge {
                declared,
                max: max_payload,
            });
        }
        let end = len_off + 4 + declared;
        if buf.len() < end {
            return Ok(None);
        }
        Ok(Some((
            Envelope {
                version: VERSION,
                opcode,
                tenant: buf[FIXED_HEADER..len_off].to_vec(),
                payload: buf[len_off + 4..end].to_vec(),
            },
            end,
        )))
    }
}

/// Response status byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// The operation succeeded; the payload is its result.
    Ok = 0,
    /// The operation was refused (unknown tenant, drained tenant); the
    /// payload is a short human-readable reason.
    Rejected = 1,
    /// The connection violated the protocol; the payload is the reason
    /// and the server closes the connection after writing it.
    Error = 2,
}

impl Status {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Status::Ok),
            1 => Some(Status::Rejected),
            2 => Some(Status::Error),
            _ => None,
        }
    }
}

/// One decoded response frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// Outcome of the request.
    pub status: Status,
    /// Result bytes (`Ok`) or a reason string (`Rejected`/`Error`).
    pub payload: Vec<u8>,
}

impl Response {
    /// Builds a response.
    pub fn new(status: Status, payload: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            payload: payload.into(),
        }
    }

    /// Canonical response encoding: `status | payload_len(4, BE) | payload`.
    pub fn encode(&self) -> Vec<u8> {
        assert!(u32::try_from(self.payload.len()).is_ok(), "payload too big");
        let mut out = Vec::with_capacity(5 + self.payload.len());
        out.push(self.status as u8);
        out.extend_from_slice(&(self.payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Tries to decode one response from the front of `buf`; same
    /// contract as [`Envelope::decode`].
    pub fn decode(
        buf: &[u8],
        max_payload: usize,
    ) -> Result<Option<(Response, usize)>, EnvelopeError> {
        if buf.is_empty() {
            return Ok(None);
        }
        let Some(status) = Status::from_u8(buf[0]) else {
            return Err(EnvelopeError::BadStatus(buf[0]));
        };
        if buf.len() < 5 {
            return Ok(None);
        }
        let declared = u32::from_be_bytes([buf[1], buf[2], buf[3], buf[4]]) as usize;
        if declared > max_payload {
            return Err(EnvelopeError::PayloadTooLarge {
                declared,
                max: max_payload,
            });
        }
        if buf.len() < 5 + declared {
            return Ok(None);
        }
        Ok(Some((
            Response {
                status,
                payload: buf[5..5 + declared].to_vec(),
            },
            5 + declared,
        )))
    }
}

/// Why a byte stream cannot continue as a valid frame sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnvelopeError {
    /// The first two bytes are not [`MAGIC`].
    BadMagic([u8; 2]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Tenant length zero or beyond [`MAX_TENANT_LEN`].
    BadTenantLen(u8),
    /// Unknown response status byte.
    BadStatus(u8),
    /// Declared payload length exceeds the negotiated cap.
    PayloadTooLarge {
        /// The length the frame claimed.
        declared: usize,
        /// The cap it violated.
        max: usize,
    },
}

impl EnvelopeError {
    /// Stable short name, used as the `reason` label on rejection
    /// counters.
    pub fn reason(&self) -> &'static str {
        match self {
            EnvelopeError::BadMagic(_) => "bad_magic",
            EnvelopeError::BadVersion(_) => "bad_version",
            EnvelopeError::BadOpcode(_) => "bad_opcode",
            EnvelopeError::BadTenantLen(_) => "bad_tenant_len",
            EnvelopeError::BadStatus(_) => "bad_status",
            EnvelopeError::PayloadTooLarge { .. } => "oversized",
        }
    }
}

impl fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvelopeError::BadMagic(b) => write!(f, "bad frame magic {b:02x?}"),
            EnvelopeError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            EnvelopeError::BadOpcode(v) => write!(f, "unknown opcode {v}"),
            EnvelopeError::BadTenantLen(v) => write!(f, "tenant length {v} out of range"),
            EnvelopeError::BadStatus(v) => write!(f, "unknown response status {v}"),
            EnvelopeError::PayloadTooLarge { declared, max } => {
                write!(f, "declared payload {declared} exceeds cap {max}")
            }
        }
    }
}

impl std::error::Error for EnvelopeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Envelope {
        Envelope::ingest(b"alpha", b"some canonical packet bytes")
    }

    #[test]
    fn round_trip() {
        for env in [
            sample(),
            Envelope::control(OpCode::Snapshot, b"t"),
            Envelope::control(OpCode::MetricsText, b"scraper"),
            Envelope::control(OpCode::Drain, &[0xff; MAX_TENANT_LEN]),
        ] {
            let bytes = env.encode();
            let (decoded, used) = Envelope::decode(&bytes, DEFAULT_MAX_PAYLOAD)
                .unwrap()
                .unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(decoded, env);
        }
    }

    #[test]
    fn response_round_trip() {
        for resp in [
            Response::new(Status::Ok, &b"payload"[..]),
            Response::new(Status::Rejected, &b"unknown tenant"[..]),
            Response::new(Status::Error, &b""[..]),
        ] {
            let bytes = resp.encode();
            let (decoded, used) = Response::decode(&bytes, DEFAULT_MAX_PAYLOAD)
                .unwrap()
                .unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn every_truncation_is_incomplete_not_error() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert_eq!(
                Envelope::decode(&bytes[..cut], DEFAULT_MAX_PAYLOAD).unwrap(),
                None,
                "cut {cut}"
            );
        }
    }

    #[test]
    fn back_to_back_frames_decode_in_sequence() {
        let a = sample();
        let b = Envelope::control(OpCode::Drain, b"beta");
        let mut stream = a.encode();
        stream.extend_from_slice(&b.encode());
        let (first, used) = Envelope::decode(&stream, DEFAULT_MAX_PAYLOAD)
            .unwrap()
            .unwrap();
        assert_eq!(first, a);
        let (second, used2) = Envelope::decode(&stream[used..], DEFAULT_MAX_PAYLOAD)
            .unwrap()
            .unwrap();
        assert_eq!(second, b);
        assert_eq!(used + used2, stream.len());
    }

    #[test]
    fn garbage_prefixes_fail_fast() {
        assert_eq!(
            Envelope::decode(b"XX", 64).unwrap_err().reason(),
            "bad_magic"
        );
        // Wrong first byte fails on one byte already.
        assert_eq!(
            Envelope::decode(b"Q", 64).unwrap_err().reason(),
            "bad_magic"
        );
        assert_eq!(
            Envelope::decode(b"PG\x07", 64).unwrap_err().reason(),
            "bad_version"
        );
        assert_eq!(
            Envelope::decode(b"PG\x01\x63", 64).unwrap_err().reason(),
            "bad_opcode"
        );
        assert_eq!(
            Envelope::decode(b"PG\x01\x00\x00", 64)
                .unwrap_err()
                .reason(),
            "bad_tenant_len"
        );
    }

    #[test]
    fn oversized_payload_rejected_before_buffering() {
        let mut bytes = sample().encode();
        // Rewrite the payload length field to something absurd.
        let len_off = FIXED_HEADER + 5; // tenant "alpha"
        bytes[len_off..len_off + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            Envelope::decode(&bytes, DEFAULT_MAX_PAYLOAD).unwrap_err(),
            EnvelopeError::PayloadTooLarge { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "tenant id")]
    fn encoding_empty_tenant_is_a_caller_bug() {
        let _ = Envelope::ingest(b"", b"x").encode();
    }
}
