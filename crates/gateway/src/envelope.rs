//! The gateway's framed envelope protocol.
//!
//! Every request on a gateway connection is one length-prefixed frame
//! carrying `pnm-wire` canonical packet bytes (or nothing, for control
//! opcodes) plus a small envelope identifying the tenant:
//!
//! ```text
//! magic(2 = "PG") | version(1) | opcode(1) | tenant_len(1) | tenant |
//! payload_len(4, BE) | payload
//! ```
//!
//! Responses are simpler — requests are answered in order on the same
//! connection, so no correlation id is needed:
//!
//! ```text
//! status(1) | payload_len(4, BE) | payload
//! ```
//!
//! Decoding is **total** in the same sense as `pnm-wire`: for any byte
//! stream the decoder returns a frame, "need more bytes", or a structured
//! [`EnvelopeError`] — never a panic, and never an allocation driven by an
//! unvalidated length field (both length fields are checked against hard
//! caps before any buffer grows). Because frames are delimited only by
//! their own lengths, a connection that produced an envelope error cannot
//! be resynchronized and must be closed; the gateway counts the rejection
//! first.

use std::fmt;

/// Frame magic: `"PG"` (PNM gateway).
pub const MAGIC: [u8; 2] = *b"PG";

/// Protocol version this build speaks. Version 2 added the resilience
/// opcodes ([`OpCode::IngestSeq`], [`OpCode::Health`], [`OpCode::Ready`]);
/// version 3 adds the observability opcodes ([`OpCode::IngestTraced`],
/// [`OpCode::Ops`]). Version-1 and version-2 frames are still decoded
/// (see [`MIN_VERSION`]) so earlier clients keep working unchanged
/// against a version-3 server.
pub const VERSION: u8 = 3;

/// Oldest protocol version this build still accepts.
pub const MIN_VERSION: u8 = 1;

/// Fixed bytes before the tenant id: magic + version + opcode + tenant_len.
pub const FIXED_HEADER: usize = 5;

/// Hard cap on the tenant-id length (the field is one byte, but tenant
/// names double as metrics label values, so keep them short).
pub const MAX_TENANT_LEN: usize = 64;

/// Default cap on a request payload. A marked packet is a few hundred
/// bytes; 1 MiB leaves two orders of magnitude of headroom while bounding
/// what a hostile length field can make the server buffer.
pub const DEFAULT_MAX_PAYLOAD: usize = 1 << 20;

/// What the client asks the gateway to do with a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpCode {
    /// Payload is one canonical packet; feed it to the tenant's pool.
    /// Fire-and-forget: no response frame, rejections are counted.
    Ingest = 0,
    /// Respond with the tenant's live service snapshot as JSON.
    Snapshot = 1,
    /// Respond with the whole gateway's Prometheus text exposition
    /// (every tenant, `tenant="..."` labels). The envelope's tenant field
    /// is ignored — scrape agents are not tenants.
    MetricsText = 2,
    /// Drain the tenant's pool and respond with its verdict: canonical
    /// evidence bytes plus a JSON summary (see
    /// [`crate::DrainVerdict`]). Idempotent — a second drain returns the
    /// same bytes.
    Drain = 3,
    /// Sequenced, acknowledged ingest (version 2). Payload is a
    /// [`SeqFrame`]: client session id, monotone sequence number, a
    /// CRC-32 binding both to the tenant and the packet bytes, then the
    /// canonical packet. Always answered with [`Status::Ok`] carrying an
    /// [`IngestAck`] — the ack code, not the response status, carries the
    /// admission outcome, so a retried frame gets a structured
    /// `Duplicate`/`Busy`/`Drained` instead of a silent drop.
    IngestSeq = 4,
    /// Liveness probe (version 2): answered `Ok` with `"ok"` as long as
    /// the process serves frames, draining or not.
    Health = 5,
    /// Readiness probe (version 2): `Ok` with `"ready"` while the gateway
    /// accepts new work, `Rejected` with `"draining"` once graceful
    /// shutdown has begun.
    Ready = 6,
    /// Sequenced, acknowledged **and traced** ingest (version 3). Payload
    /// is a [`TracedFrame`]: a [`SeqFrame`] extended with a 64-bit trace
    /// id and parent span id, so the client's causal context crosses the
    /// wire and every span the gateway, shard queue, and sink emit for
    /// this packet lands in one trace. Acked exactly like
    /// [`OpCode::IngestSeq`], except the [`IngestAck`] echoes the trace
    /// id back.
    IngestTraced = 7,
    /// Live ops surface (version 3): respond `Ok` with the tenant's
    /// health/SLO snapshot as JSON — rolling stage p99s, error-budget
    /// counters, backlog, and the last anomaly the tenant's flight
    /// recorder dumped. Tenant `*` returns every tenant keyed by id.
    Ops = 8,
}

impl OpCode {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(OpCode::Ingest),
            1 => Some(OpCode::Snapshot),
            2 => Some(OpCode::MetricsText),
            3 => Some(OpCode::Drain),
            4 => Some(OpCode::IngestSeq),
            5 => Some(OpCode::Health),
            6 => Some(OpCode::Ready),
            7 => Some(OpCode::IngestTraced),
            8 => Some(OpCode::Ops),
            _ => None,
        }
    }

    /// Whether `version` frames may carry this opcode (the resilience
    /// opcodes require version 2, the observability opcodes version 3).
    fn in_version(self, version: u8) -> bool {
        match version {
            0..=1 => (self as u8) <= OpCode::Drain as u8,
            2 => (self as u8) <= OpCode::Ready as u8,
            _ => true,
        }
    }
}

/// One decoded request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Protocol version (within [`MIN_VERSION`]..=[`VERSION`] after a
    /// successful decode).
    pub version: u8,
    /// The requested operation.
    pub opcode: OpCode,
    /// Tenant id bytes (1..=[`MAX_TENANT_LEN`]).
    pub tenant: Vec<u8>,
    /// Operation payload (canonical packet bytes for `Ingest`).
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Builds an ingest frame for a tenant.
    pub fn ingest(tenant: &[u8], packet_bytes: &[u8]) -> Self {
        Envelope {
            version: VERSION,
            opcode: OpCode::Ingest,
            tenant: tenant.to_vec(),
            payload: packet_bytes.to_vec(),
        }
    }

    /// Builds a payload-less control frame.
    pub fn control(opcode: OpCode, tenant: &[u8]) -> Self {
        Envelope {
            version: VERSION,
            opcode,
            tenant: tenant.to_vec(),
            payload: Vec::new(),
        }
    }

    /// Builds a sequenced, acknowledged ingest frame (see [`SeqFrame`]).
    pub fn ingest_seq(tenant: &[u8], session: u64, seq: u64, packet_bytes: &[u8]) -> Self {
        Envelope {
            version: VERSION,
            opcode: OpCode::IngestSeq,
            tenant: tenant.to_vec(),
            payload: SeqFrame::encode_payload(tenant, session, seq, packet_bytes),
        }
    }

    /// Builds a sequenced, acknowledged, traced ingest frame (see
    /// [`TracedFrame`]): `trace` is the client's 64-bit trace id and
    /// `parent` the span id the server-side spans should hang under.
    pub fn ingest_traced(
        tenant: &[u8],
        trace: u64,
        parent: u64,
        session: u64,
        seq: u64,
        packet_bytes: &[u8],
    ) -> Self {
        Envelope {
            version: VERSION,
            opcode: OpCode::IngestTraced,
            tenant: tenant.to_vec(),
            payload: TracedFrame::encode_payload(tenant, trace, parent, session, seq, packet_bytes),
        }
    }

    /// Canonical frame encoding.
    ///
    /// # Panics
    ///
    /// Panics if the tenant id is empty or longer than
    /// [`MAX_TENANT_LEN`], or the payload exceeds `u32::MAX` — both are
    /// caller bugs, not wire conditions.
    pub fn encode(&self) -> Vec<u8> {
        assert!(
            !self.tenant.is_empty() && self.tenant.len() <= MAX_TENANT_LEN,
            "tenant id must be 1..={MAX_TENANT_LEN} bytes"
        );
        assert!(u32::try_from(self.payload.len()).is_ok(), "payload too big");
        let mut out = Vec::with_capacity(FIXED_HEADER + self.tenant.len() + 4 + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(self.version);
        out.push(self.opcode as u8);
        out.push(self.tenant.len() as u8);
        out.extend_from_slice(&self.tenant);
        out.extend_from_slice(&(self.payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Tries to decode one frame from the front of `buf`.
    ///
    /// Returns `Ok(Some((envelope, consumed)))` on a complete frame,
    /// `Ok(None)` when `buf` holds a valid but incomplete prefix (read
    /// more bytes and retry), or a structured [`EnvelopeError`] as soon as
    /// the prefix can no longer begin a valid frame. Total: never panics,
    /// never allocates more than the frame's checked lengths.
    pub fn decode(
        buf: &[u8],
        max_payload: usize,
    ) -> Result<Option<(Envelope, usize)>, EnvelopeError> {
        // Validate fixed fields as soon as their bytes exist, so garbage
        // fails fast instead of stalling as a "partial frame".
        if !buf.is_empty() && buf[0] != MAGIC[0] {
            return Err(EnvelopeError::BadMagic([buf[0], 0]));
        }
        if buf.len() >= 2 && buf[..2] != MAGIC {
            return Err(EnvelopeError::BadMagic([buf[0], buf[1]]));
        }
        if buf.len() >= 3 && !(MIN_VERSION..=VERSION).contains(&buf[2]) {
            return Err(EnvelopeError::BadVersion(buf[2]));
        }
        if buf.len() >= 4 {
            match OpCode::from_u8(buf[3]) {
                Some(op) if op.in_version(buf[2]) => {}
                _ => return Err(EnvelopeError::BadOpcode(buf[3])),
            }
        }
        if buf.len() >= 5 && (buf[4] == 0 || buf[4] as usize > MAX_TENANT_LEN) {
            return Err(EnvelopeError::BadTenantLen(buf[4]));
        }
        if buf.len() < FIXED_HEADER {
            return Ok(None);
        }
        let opcode = OpCode::from_u8(buf[3]).expect("validated above");
        let tenant_len = buf[4] as usize;
        let len_off = FIXED_HEADER + tenant_len;
        if buf.len() < len_off + 4 {
            return Ok(None);
        }
        let declared = u32::from_be_bytes([
            buf[len_off],
            buf[len_off + 1],
            buf[len_off + 2],
            buf[len_off + 3],
        ]) as usize;
        if declared > max_payload {
            return Err(EnvelopeError::PayloadTooLarge {
                declared,
                max: max_payload,
            });
        }
        let end = len_off + 4 + declared;
        if buf.len() < end {
            return Ok(None);
        }
        Ok(Some((
            Envelope {
                version: buf[2],
                opcode,
                tenant: buf[FIXED_HEADER..len_off].to_vec(),
                payload: buf[len_off + 4..end].to_vec(),
            },
            end,
        )))
    }
}

/// The payload of an [`OpCode::IngestSeq`] frame:
///
/// ```text
/// session(8, BE) | seq(8, BE) | crc32(4, BE) | packet bytes
/// ```
///
/// `session` identifies one client instance for the lifetime of its
/// retry state (it survives reconnects — that is the point); `seq` is
/// the client's monotone per-session sequence number. The CRC is
/// CRC-32/IEEE over `tenant | session(8) | seq(8) | packet`, binding the
/// frame to its tenant so a bit-flipped tenant id (or session, sequence
/// number, or packet byte) is detected end-to-end as `Corrupt` instead of
/// being absorbed — the integrity check that makes "acked ≡ counted
/// exactly once" hold under wire corruption.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeqFrame {
    /// Client session id (stable across reconnects).
    pub session: u64,
    /// Monotone per-session sequence number.
    pub seq: u64,
    /// Canonical packet bytes.
    pub packet: Vec<u8>,
}

/// Fixed prefix of a [`SeqFrame`] payload: session + seq + crc.
pub const SEQ_FRAME_HEADER: usize = 8 + 8 + 4;

impl SeqFrame {
    fn crc(tenant: &[u8], session: u64, seq: u64, packet: &[u8]) -> u32 {
        let mut bound = Vec::with_capacity(tenant.len() + 16 + packet.len());
        bound.extend_from_slice(tenant);
        bound.extend_from_slice(&session.to_be_bytes());
        bound.extend_from_slice(&seq.to_be_bytes());
        bound.extend_from_slice(packet);
        pnm_core::store::crc32(&bound)
    }

    /// Encodes the payload for [`Envelope::ingest_seq`].
    pub fn encode_payload(tenant: &[u8], session: u64, seq: u64, packet: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(SEQ_FRAME_HEADER + packet.len());
        out.extend_from_slice(&session.to_be_bytes());
        out.extend_from_slice(&seq.to_be_bytes());
        out.extend_from_slice(&Self::crc(tenant, session, seq, packet).to_be_bytes());
        out.extend_from_slice(packet);
        out
    }

    /// Decodes and integrity-checks an `IngestSeq` payload against the
    /// envelope's tenant. Total: too-short payloads and CRC mismatches
    /// come back as `Err` (the caller answers [`AckCode::Corrupt`]),
    /// never a panic.
    pub fn decode_payload(tenant: &[u8], payload: &[u8]) -> Result<Self, &'static str> {
        if payload.len() < SEQ_FRAME_HEADER {
            return Err("seq frame shorter than its header");
        }
        let session = u64::from_be_bytes(payload[0..8].try_into().expect("sized"));
        let seq = u64::from_be_bytes(payload[8..16].try_into().expect("sized"));
        let crc = u32::from_be_bytes(payload[16..20].try_into().expect("sized"));
        let packet = &payload[SEQ_FRAME_HEADER..];
        if Self::crc(tenant, session, seq, packet) != crc {
            return Err("seq frame crc mismatch");
        }
        Ok(SeqFrame {
            session,
            seq,
            packet: packet.to_vec(),
        })
    }
}

/// The payload of an [`OpCode::IngestTraced`] frame:
///
/// ```text
/// trace(8, BE) | parent(8, BE) | session(8, BE) | seq(8, BE) |
/// crc32(4, BE) | packet bytes
/// ```
///
/// A [`SeqFrame`] extended with the client's causal context: `trace` is
/// the 64-bit trace id minted once per logical send (retries reuse it, so
/// one packet is one trace no matter how many times the wire ate it), and
/// `parent` is the client-side span the gateway's `gateway.ingest` span
/// becomes a child of. The CRC is CRC-32/IEEE over
/// `tenant | trace(8) | parent(8) | session(8) | seq(8) | packet` — the
/// trace identity is integrity-bound like everything else, so a
/// bit-flipped trace id surfaces as [`AckCode::Corrupt`] instead of
/// silently splicing the packet into someone else's trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TracedFrame {
    /// Trace id minted by the client (nonzero for a real trace).
    pub trace: u64,
    /// Client-side parent span id (0 = root the server spans directly
    /// under the trace).
    pub parent: u64,
    /// Client session id (stable across reconnects).
    pub session: u64,
    /// Monotone per-session sequence number.
    pub seq: u64,
    /// Canonical packet bytes.
    pub packet: Vec<u8>,
}

/// Fixed prefix of a [`TracedFrame`] payload: trace + parent + session +
/// seq + crc.
pub const TRACED_FRAME_HEADER: usize = 8 + 8 + 8 + 8 + 4;

impl TracedFrame {
    fn crc(tenant: &[u8], trace: u64, parent: u64, session: u64, seq: u64, packet: &[u8]) -> u32 {
        let mut bound = Vec::with_capacity(tenant.len() + 32 + packet.len());
        bound.extend_from_slice(tenant);
        bound.extend_from_slice(&trace.to_be_bytes());
        bound.extend_from_slice(&parent.to_be_bytes());
        bound.extend_from_slice(&session.to_be_bytes());
        bound.extend_from_slice(&seq.to_be_bytes());
        bound.extend_from_slice(packet);
        pnm_core::store::crc32(&bound)
    }

    /// Encodes the payload for [`Envelope::ingest_traced`].
    pub fn encode_payload(
        tenant: &[u8],
        trace: u64,
        parent: u64,
        session: u64,
        seq: u64,
        packet: &[u8],
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(TRACED_FRAME_HEADER + packet.len());
        out.extend_from_slice(&trace.to_be_bytes());
        out.extend_from_slice(&parent.to_be_bytes());
        out.extend_from_slice(&session.to_be_bytes());
        out.extend_from_slice(&seq.to_be_bytes());
        out.extend_from_slice(
            &Self::crc(tenant, trace, parent, session, seq, packet).to_be_bytes(),
        );
        out.extend_from_slice(packet);
        out
    }

    /// Decodes and integrity-checks an `IngestTraced` payload against the
    /// envelope's tenant. Total: too-short payloads and CRC mismatches
    /// come back as `Err` (the caller answers [`AckCode::Corrupt`]),
    /// never a panic.
    pub fn decode_payload(tenant: &[u8], payload: &[u8]) -> Result<Self, &'static str> {
        if payload.len() < TRACED_FRAME_HEADER {
            return Err("traced frame shorter than its header");
        }
        let trace = u64::from_be_bytes(payload[0..8].try_into().expect("sized"));
        let parent = u64::from_be_bytes(payload[8..16].try_into().expect("sized"));
        let session = u64::from_be_bytes(payload[16..24].try_into().expect("sized"));
        let seq = u64::from_be_bytes(payload[24..32].try_into().expect("sized"));
        let crc = u32::from_be_bytes(payload[32..36].try_into().expect("sized"));
        let packet = &payload[TRACED_FRAME_HEADER..];
        if Self::crc(tenant, trace, parent, session, seq, packet) != crc {
            return Err("traced frame crc mismatch");
        }
        Ok(TracedFrame {
            trace,
            parent,
            session,
            seq,
            packet: packet.to_vec(),
        })
    }
}

/// Outcome code inside an [`IngestAck`].
///
/// `Accepted` and `Duplicate` both mean **counted exactly once** — the
/// packet is (already) absorbed into the tenant's evidence; everything
/// else means **not counted**. Retryable codes (`Busy`, `Corrupt`,
/// `RateLimited`) invite the client to resend the same sequence number;
/// terminal codes (`Malformed`, `Drained`, `UnknownTenant`) will never
/// succeed and the client should give the packet up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AckCode {
    /// Counted: enqueued into the tenant's pool and recorded in the
    /// dedup window.
    Accepted = 0,
    /// Counted earlier: the (session, seq) is already in the dedup
    /// window; this retry was **not** absorbed a second time.
    Duplicate = 1,
    /// Not counted: the tenant's pool shed the packet. The ack's
    /// `retry_after_ms` says when to try again — the structured reply
    /// that replaces a silent shed.
    Busy = 2,
    /// Not counted, terminal: the packet bytes fail `Packet::from_bytes`.
    Malformed = 3,
    /// Not counted, retryable: the frame failed its CRC (bit damage
    /// between client and server).
    Corrupt = 4,
    /// Not counted, terminal: the tenant is drained; its verdict is final.
    Drained = 5,
    /// Not counted, retryable: the tenant's token bucket was empty.
    RateLimited = 6,
    /// Not counted, terminal: no such tenant is provisioned.
    UnknownTenant = 7,
}

impl AckCode {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(AckCode::Accepted),
            1 => Some(AckCode::Duplicate),
            2 => Some(AckCode::Busy),
            3 => Some(AckCode::Malformed),
            4 => Some(AckCode::Corrupt),
            5 => Some(AckCode::Drained),
            6 => Some(AckCode::RateLimited),
            7 => Some(AckCode::UnknownTenant),
            _ => None,
        }
    }

    /// Whether this outcome means the packet is counted (exactly once).
    pub fn is_counted(self) -> bool {
        matches!(self, AckCode::Accepted | AckCode::Duplicate)
    }

    /// Whether resending the same sequence number can change the outcome.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            AckCode::Busy | AckCode::Corrupt | AckCode::RateLimited
        )
    }

    /// Stable short name (metrics label / log text).
    pub fn reason(self) -> &'static str {
        match self {
            AckCode::Accepted => "accepted",
            AckCode::Duplicate => "duplicate",
            AckCode::Busy => "busy",
            AckCode::Malformed => "malformed",
            AckCode::Corrupt => "corrupt",
            AckCode::Drained => "drained",
            AckCode::RateLimited => "rate_limited",
            AckCode::UnknownTenant => "unknown_tenant",
        }
    }
}

/// The response payload to an [`OpCode::IngestSeq`] or
/// [`OpCode::IngestTraced`] frame:
///
/// ```text
/// code(1) | seq(8, BE) | retry_after_ms(4, BE) | crc32(4, BE)            (legacy)
/// code(1) | seq(8, BE) | retry_after_ms(4, BE) | trace(8, BE) | crc32(4) (traced)
/// ```
///
/// The CRC covers every byte before it, so a bit-flipped ack (say,
/// `Malformed` damaged into `Duplicate`, which would make the client
/// book an uncounted packet as counted) is rejected by the client and
/// retried instead of trusted. A traced ingest is answered with the
/// 25-byte form echoing the request's trace id — the client checks the
/// echo so a misrouted ack cannot close the wrong trace; a plain
/// `IngestSeq` keeps the original 17-byte form, byte-identical to what a
/// version-2 server sent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestAck {
    /// Admission outcome.
    pub code: AckCode,
    /// Echo of the request's sequence number — the client checks it
    /// against its outstanding request.
    pub seq: u64,
    /// For [`AckCode::Busy`]: suggested wait before retrying, in
    /// milliseconds. Zero otherwise.
    pub retry_after_ms: u32,
    /// Echo of the request's trace id (version 3). Zero for a plain
    /// `IngestSeq` ack, which also selects the legacy 17-byte encoding.
    pub trace: u64,
}

/// Exact byte length of a legacy (untraced) encoded [`IngestAck`].
pub const INGEST_ACK_LEN: usize = 1 + 8 + 4 + 4;

/// Exact byte length of a trace-echoing encoded [`IngestAck`].
pub const INGEST_ACK_TRACED_LEN: usize = 1 + 8 + 4 + 8 + 4;

impl IngestAck {
    /// An ack with no retry hint.
    pub fn new(code: AckCode, seq: u64) -> Self {
        IngestAck {
            code,
            seq,
            retry_after_ms: 0,
            trace: 0,
        }
    }

    /// Sets the retry hint (meaningful for [`AckCode::Busy`] and
    /// [`AckCode::RateLimited`]).
    pub fn with_retry_after(mut self, ms: u32) -> Self {
        self.retry_after_ms = ms;
        self
    }

    /// Echoes the request's trace id (selects the 25-byte encoding when
    /// nonzero).
    pub fn with_trace(mut self, trace: u64) -> Self {
        self.trace = trace;
        self
    }

    /// Canonical encoding (see type docs): the legacy 17-byte form when
    /// `trace` is zero, the 25-byte trace-echoing form otherwise.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(INGEST_ACK_TRACED_LEN);
        out.push(self.code as u8);
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.retry_after_ms.to_be_bytes());
        if self.trace != 0 {
            out.extend_from_slice(&self.trace.to_be_bytes());
        }
        let crc = pnm_core::store::crc32(&out);
        out.extend_from_slice(&crc.to_be_bytes());
        out
    }

    /// Decodes and integrity-checks an ack payload, accepting both the
    /// 17-byte legacy form and the 25-byte traced form. Total: wrong
    /// length, unknown code, and CRC damage are `Err`, never a panic.
    pub fn decode(payload: &[u8]) -> Result<Self, &'static str> {
        let trace = match payload.len() {
            INGEST_ACK_LEN => 0,
            INGEST_ACK_TRACED_LEN => u64::from_be_bytes(payload[13..21].try_into().expect("sized")),
            _ => return Err("ack payload has the wrong length"),
        };
        let body = payload.len() - 4;
        let crc = u32::from_be_bytes(payload[body..].try_into().expect("sized"));
        if pnm_core::store::crc32(&payload[..body]) != crc {
            return Err("ack crc mismatch");
        }
        if payload.len() == INGEST_ACK_TRACED_LEN && trace == 0 {
            return Err("traced ack with zero trace id");
        }
        let code = AckCode::from_u8(payload[0]).ok_or("unknown ack code")?;
        Ok(IngestAck {
            code,
            seq: u64::from_be_bytes(payload[1..9].try_into().expect("sized")),
            retry_after_ms: u32::from_be_bytes(payload[9..13].try_into().expect("sized")),
            trace,
        })
    }
}

/// Response status byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// The operation succeeded; the payload is its result.
    Ok = 0,
    /// The operation was refused (unknown tenant, drained tenant); the
    /// payload is a short human-readable reason.
    Rejected = 1,
    /// The connection violated the protocol; the payload is the reason
    /// and the server closes the connection after writing it.
    Error = 2,
}

impl Status {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Status::Ok),
            1 => Some(Status::Rejected),
            2 => Some(Status::Error),
            _ => None,
        }
    }
}

/// One decoded response frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// Outcome of the request.
    pub status: Status,
    /// Result bytes (`Ok`) or a reason string (`Rejected`/`Error`).
    pub payload: Vec<u8>,
}

impl Response {
    /// Builds a response.
    pub fn new(status: Status, payload: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            payload: payload.into(),
        }
    }

    /// Canonical response encoding: `status | payload_len(4, BE) | payload`.
    pub fn encode(&self) -> Vec<u8> {
        assert!(u32::try_from(self.payload.len()).is_ok(), "payload too big");
        let mut out = Vec::with_capacity(5 + self.payload.len());
        out.push(self.status as u8);
        out.extend_from_slice(&(self.payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Tries to decode one response from the front of `buf`; same
    /// contract as [`Envelope::decode`].
    pub fn decode(
        buf: &[u8],
        max_payload: usize,
    ) -> Result<Option<(Response, usize)>, EnvelopeError> {
        if buf.is_empty() {
            return Ok(None);
        }
        let Some(status) = Status::from_u8(buf[0]) else {
            return Err(EnvelopeError::BadStatus(buf[0]));
        };
        if buf.len() < 5 {
            return Ok(None);
        }
        let declared = u32::from_be_bytes([buf[1], buf[2], buf[3], buf[4]]) as usize;
        if declared > max_payload {
            return Err(EnvelopeError::PayloadTooLarge {
                declared,
                max: max_payload,
            });
        }
        if buf.len() < 5 + declared {
            return Ok(None);
        }
        Ok(Some((
            Response {
                status,
                payload: buf[5..5 + declared].to_vec(),
            },
            5 + declared,
        )))
    }
}

/// Why a byte stream cannot continue as a valid frame sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnvelopeError {
    /// The first two bytes are not [`MAGIC`].
    BadMagic([u8; 2]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Tenant length zero or beyond [`MAX_TENANT_LEN`].
    BadTenantLen(u8),
    /// Unknown response status byte.
    BadStatus(u8),
    /// Declared payload length exceeds the negotiated cap.
    PayloadTooLarge {
        /// The length the frame claimed.
        declared: usize,
        /// The cap it violated.
        max: usize,
    },
}

impl EnvelopeError {
    /// Stable short name, used as the `reason` label on rejection
    /// counters.
    pub fn reason(&self) -> &'static str {
        match self {
            EnvelopeError::BadMagic(_) => "bad_magic",
            EnvelopeError::BadVersion(_) => "bad_version",
            EnvelopeError::BadOpcode(_) => "bad_opcode",
            EnvelopeError::BadTenantLen(_) => "bad_tenant_len",
            EnvelopeError::BadStatus(_) => "bad_status",
            EnvelopeError::PayloadTooLarge { .. } => "oversized",
        }
    }
}

impl fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvelopeError::BadMagic(b) => write!(f, "bad frame magic {b:02x?}"),
            EnvelopeError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            EnvelopeError::BadOpcode(v) => write!(f, "unknown opcode {v}"),
            EnvelopeError::BadTenantLen(v) => write!(f, "tenant length {v} out of range"),
            EnvelopeError::BadStatus(v) => write!(f, "unknown response status {v}"),
            EnvelopeError::PayloadTooLarge { declared, max } => {
                write!(f, "declared payload {declared} exceeds cap {max}")
            }
        }
    }
}

impl std::error::Error for EnvelopeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Envelope {
        Envelope::ingest(b"alpha", b"some canonical packet bytes")
    }

    #[test]
    fn round_trip() {
        for env in [
            sample(),
            Envelope::control(OpCode::Snapshot, b"t"),
            Envelope::control(OpCode::MetricsText, b"scraper"),
            Envelope::control(OpCode::Drain, &[0xff; MAX_TENANT_LEN]),
        ] {
            let bytes = env.encode();
            let (decoded, used) = Envelope::decode(&bytes, DEFAULT_MAX_PAYLOAD)
                .unwrap()
                .unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(decoded, env);
        }
    }

    #[test]
    fn response_round_trip() {
        for resp in [
            Response::new(Status::Ok, &b"payload"[..]),
            Response::new(Status::Rejected, &b"unknown tenant"[..]),
            Response::new(Status::Error, &b""[..]),
        ] {
            let bytes = resp.encode();
            let (decoded, used) = Response::decode(&bytes, DEFAULT_MAX_PAYLOAD)
                .unwrap()
                .unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn every_truncation_is_incomplete_not_error() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert_eq!(
                Envelope::decode(&bytes[..cut], DEFAULT_MAX_PAYLOAD).unwrap(),
                None,
                "cut {cut}"
            );
        }
    }

    #[test]
    fn back_to_back_frames_decode_in_sequence() {
        let a = sample();
        let b = Envelope::control(OpCode::Drain, b"beta");
        let mut stream = a.encode();
        stream.extend_from_slice(&b.encode());
        let (first, used) = Envelope::decode(&stream, DEFAULT_MAX_PAYLOAD)
            .unwrap()
            .unwrap();
        assert_eq!(first, a);
        let (second, used2) = Envelope::decode(&stream[used..], DEFAULT_MAX_PAYLOAD)
            .unwrap()
            .unwrap();
        assert_eq!(second, b);
        assert_eq!(used + used2, stream.len());
    }

    #[test]
    fn garbage_prefixes_fail_fast() {
        assert_eq!(
            Envelope::decode(b"XX", 64).unwrap_err().reason(),
            "bad_magic"
        );
        // Wrong first byte fails on one byte already.
        assert_eq!(
            Envelope::decode(b"Q", 64).unwrap_err().reason(),
            "bad_magic"
        );
        assert_eq!(
            Envelope::decode(b"PG\x07", 64).unwrap_err().reason(),
            "bad_version"
        );
        assert_eq!(
            Envelope::decode(b"PG\x01\x63", 64).unwrap_err().reason(),
            "bad_opcode"
        );
        assert_eq!(
            Envelope::decode(b"PG\x01\x00\x00", 64)
                .unwrap_err()
                .reason(),
            "bad_tenant_len"
        );
    }

    #[test]
    fn oversized_payload_rejected_before_buffering() {
        let mut bytes = sample().encode();
        // Rewrite the payload length field to something absurd.
        let len_off = FIXED_HEADER + 5; // tenant "alpha"
        bytes[len_off..len_off + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            Envelope::decode(&bytes, DEFAULT_MAX_PAYLOAD).unwrap_err(),
            EnvelopeError::PayloadTooLarge { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "tenant id")]
    fn encoding_empty_tenant_is_a_caller_bug() {
        let _ = Envelope::ingest(b"", b"x").encode();
    }

    #[test]
    fn v2_frames_round_trip() {
        for env in [
            Envelope::ingest_seq(b"alpha", 0xfeed, 42, b"packet bytes"),
            Envelope::control(OpCode::Health, b"_"),
            Envelope::control(OpCode::Ready, b"_"),
        ] {
            let bytes = env.encode();
            let (decoded, used) = Envelope::decode(&bytes, DEFAULT_MAX_PAYLOAD)
                .unwrap()
                .unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(decoded, env);
        }
    }

    #[test]
    fn version_1_frames_still_decode_but_not_v2_opcodes() {
        // A PR-7 client frame: version byte 1, opcode Snapshot.
        let mut v1 = Envelope::control(OpCode::Snapshot, b"alpha");
        v1.version = 1;
        let bytes = v1.encode();
        let (decoded, _) = Envelope::decode(&bytes, DEFAULT_MAX_PAYLOAD)
            .unwrap()
            .unwrap();
        assert_eq!(decoded.version, 1);
        assert_eq!(decoded.opcode, OpCode::Snapshot);
        // The same version byte with a resilience opcode is rejected.
        let mut bad = Envelope::control(OpCode::Health, b"alpha");
        bad.version = 1;
        assert_eq!(
            Envelope::decode(&bad.encode(), DEFAULT_MAX_PAYLOAD)
                .unwrap_err()
                .reason(),
            "bad_opcode"
        );
    }

    #[test]
    fn seq_frame_binds_tenant_session_seq_and_packet() {
        let payload = SeqFrame::encode_payload(b"alpha", 7, 9, b"pkt");
        let frame = SeqFrame::decode_payload(b"alpha", &payload).unwrap();
        assert_eq!(
            (frame.session, frame.seq, frame.packet.as_slice()),
            (7, 9, &b"pkt"[..])
        );
        // Wrong tenant → CRC mismatch (a bit-flipped tenant id cannot be
        // silently absorbed by a neighbouring tenant).
        assert!(SeqFrame::decode_payload(b"alphb", &payload).is_err());
        // Any flipped byte → CRC mismatch.
        for i in 0..payload.len() {
            let mut damaged = payload.clone();
            damaged[i] ^= 0x10;
            assert!(
                SeqFrame::decode_payload(b"alpha", &damaged).is_err(),
                "flip at {i} must not verify"
            );
        }
        assert!(SeqFrame::decode_payload(b"alpha", &payload[..10]).is_err());
    }

    #[test]
    fn ingest_ack_round_trips_and_rejects_damage() {
        for ack in [
            IngestAck::new(AckCode::Accepted, 3),
            IngestAck::new(AckCode::Duplicate, u64::MAX),
            IngestAck {
                code: AckCode::Busy,
                seq: 12,
                retry_after_ms: 250,
                trace: 0,
            },
        ] {
            let bytes = ack.encode();
            assert_eq!(bytes.len(), INGEST_ACK_LEN);
            assert_eq!(IngestAck::decode(&bytes).unwrap(), ack);
        }
        // A single flipped bit anywhere is detected — including the code
        // byte, where Malformed→Duplicate would otherwise book an
        // uncounted packet as counted.
        let bytes = IngestAck::new(AckCode::Malformed, 5).encode();
        for i in 0..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[i] ^= 0x02;
            assert!(IngestAck::decode(&damaged).is_err(), "flip at {i}");
        }
        assert!(IngestAck::decode(&bytes[..7]).is_err());
    }

    #[test]
    fn v3_frames_round_trip() {
        for env in [
            Envelope::ingest_traced(b"alpha", 0xdead_beef, 0x77, 0xfeed, 42, b"packet bytes"),
            Envelope::control(OpCode::Ops, b"alpha"),
            Envelope::control(OpCode::Ops, b"*"),
        ] {
            let bytes = env.encode();
            let (decoded, used) = Envelope::decode(&bytes, DEFAULT_MAX_PAYLOAD)
                .unwrap()
                .unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(decoded, env);
        }
    }

    #[test]
    fn version_2_frames_still_decode_but_not_v3_opcodes() {
        let mut v2 = Envelope::ingest_seq(b"alpha", 1, 2, b"pkt");
        v2.version = 2;
        let (decoded, _) = Envelope::decode(&v2.encode(), DEFAULT_MAX_PAYLOAD)
            .unwrap()
            .unwrap();
        assert_eq!(decoded.version, 2);
        assert_eq!(decoded.opcode, OpCode::IngestSeq);
        for opcode in [OpCode::IngestTraced, OpCode::Ops] {
            let mut bad = Envelope::control(opcode, b"alpha");
            bad.version = 2;
            assert_eq!(
                Envelope::decode(&bad.encode(), DEFAULT_MAX_PAYLOAD)
                    .unwrap_err()
                    .reason(),
                "bad_opcode"
            );
        }
    }

    #[test]
    fn traced_frame_binds_trace_identity_too() {
        let payload = TracedFrame::encode_payload(b"alpha", 0xabc, 0x11, 7, 9, b"pkt");
        let frame = TracedFrame::decode_payload(b"alpha", &payload).unwrap();
        assert_eq!(
            (frame.trace, frame.parent, frame.session, frame.seq),
            (0xabc, 0x11, 7, 9)
        );
        assert_eq!(frame.packet, b"pkt");
        // Wrong tenant → CRC mismatch.
        assert!(TracedFrame::decode_payload(b"alphb", &payload).is_err());
        // Any flipped byte — including the trace id — is detected, so a
        // damaged trace id cannot splice the packet into another trace.
        for i in 0..payload.len() {
            let mut damaged = payload.clone();
            damaged[i] ^= 0x10;
            assert!(
                TracedFrame::decode_payload(b"alpha", &damaged).is_err(),
                "flip at {i} must not verify"
            );
        }
        assert!(TracedFrame::decode_payload(b"alpha", &payload[..20]).is_err());
    }

    #[test]
    fn traced_ack_round_trips_and_rejects_damage() {
        let ack = IngestAck::new(AckCode::Accepted, 3).with_trace(0xfeed_f00d);
        let bytes = ack.encode();
        assert_eq!(bytes.len(), INGEST_ACK_TRACED_LEN);
        assert_eq!(IngestAck::decode(&bytes).unwrap(), ack);
        for i in 0..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[i] ^= 0x02;
            assert!(IngestAck::decode(&damaged).is_err(), "flip at {i}");
        }
        // An untraced ack still encodes to the legacy 17-byte form, so a
        // version-2 client reading this server sees identical bytes.
        let legacy = IngestAck::new(AckCode::Accepted, 3).encode();
        assert_eq!(legacy.len(), INGEST_ACK_LEN);
        assert_eq!(IngestAck::decode(&legacy).unwrap().trace, 0);
    }

    #[test]
    fn ack_code_classification() {
        for code in [
            AckCode::Accepted,
            AckCode::Duplicate,
            AckCode::Busy,
            AckCode::Malformed,
            AckCode::Corrupt,
            AckCode::Drained,
            AckCode::RateLimited,
            AckCode::UnknownTenant,
        ] {
            assert_eq!(
                code.is_counted(),
                matches!(code, AckCode::Accepted | AckCode::Duplicate)
            );
            // No code is both counted and retryable.
            assert!(!(code.is_counted() && code.is_retryable()));
        }
    }
}
