//! Seeded, deterministic socket-level fault injection.
//!
//! [`ChaosTransport`] wraps any [`Transport`] and injects the failure
//! modes a real edge sees — connection kills, resets, partial writes,
//! stalls, delays, and byte corruption — *between* the protocol code and
//! the kernel, so the bytes on the wire (and the peer's view of the
//! connection) are genuinely damaged. This extends the packet-level
//! `FaultPlan` of `pnm-sim` down to the transport the gateway actually
//! serves.
//!
//! Determinism: every decision comes from an internal SplitMix64 stream
//! seeded at construction, so a failing soak run replays exactly from its
//! seed. Probabilities are evaluated **per I/O call**, not per byte —
//! coarse, but it keeps the fault rate independent of chunk sizes.
//!
//! The injected faults deliberately live on the **client side** of the
//! wire. Corrupting a write damages bytes *before* the server's CRC
//! checks; killing a connection mid-request loses the ack, not the
//! server's absorption — exactly the ambiguity the exactly-once protocol
//! ([`crate::SeqFrame`] / [`crate::IngestAck`] / [`crate::dedup`]) must
//! resolve.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::transport::Transport;

/// SplitMix64 step — the standard seed mixer; dependency-free and good
/// enough for fault scheduling (this is not cryptographic randomness).
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from a SplitMix64 state.
pub(crate) fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Per-I/O-call fault probabilities (each in `[0, 1]`) plus durations.
#[derive(Clone, Copy, Debug)]
pub struct ChaosPlan {
    /// Kill the connection (shutdown both halves, then error). The peer
    /// sees a close; the client sees the error and must reconnect.
    pub kill: f64,
    /// Fail the call with `ConnectionReset` and poison the connection
    /// without a clean shutdown — the abortive-close flavor.
    pub reset: f64,
    /// Truncate a write to roughly half its bytes (the caller's
    /// `write_all` continues, so the frame crosses in fragments — and a
    /// kill between fragments leaves a half-written frame on the wire).
    pub partial_write: f64,
    /// Flip one bit of the outgoing bytes.
    pub corrupt: f64,
    /// Sleep [`stall`](Self::stall_for) before a read — delaying the ack
    /// past the client's patience if the timeout is tight.
    pub stall: f64,
    /// Sleep [`delay`](Self::delay_for) before a write — ordinary added
    /// latency.
    pub delay: f64,
    /// Stall duration.
    pub stall_for: Duration,
    /// Delay duration.
    pub delay_for: Duration,
}

impl ChaosPlan {
    /// No faults at all (every probability zero).
    pub fn calm() -> Self {
        ChaosPlan {
            kill: 0.0,
            reset: 0.0,
            partial_write: 0.0,
            corrupt: 0.0,
            stall: 0.0,
            delay: 0.0,
            stall_for: Duration::from_millis(40),
            delay_for: Duration::from_millis(2),
        }
    }

    /// The reference full-intensity mix the soak sweep scales: kills and
    /// resets rare per call, partial writes and delays common, corruption
    /// in between.
    pub fn full() -> Self {
        ChaosPlan {
            kill: 0.02,
            reset: 0.02,
            partial_write: 0.20,
            corrupt: 0.05,
            stall: 0.02,
            delay: 0.10,
            stall_for: Duration::from_millis(40),
            delay_for: Duration::from_millis(2),
        }
    }

    /// [`full`](Self::full) scaled by `intensity` in `[0, 1]` — the knob
    /// the `chaos_gateway` sweep turns. Intensity 0 is exactly
    /// [`calm`](Self::calm) (zero injected faults).
    pub fn at_intensity(intensity: f64) -> Self {
        let x = intensity.clamp(0.0, 1.0);
        let f = Self::full();
        ChaosPlan {
            kill: f.kill * x,
            reset: f.reset * x,
            partial_write: f.partial_write * x,
            corrupt: f.corrupt * x,
            stall: f.stall * x,
            delay: f.delay * x,
            stall_for: f.stall_for,
            delay_for: f.delay_for,
        }
    }

    /// Whether this plan can inject anything at all.
    pub fn is_calm(&self) -> bool {
        self.kill == 0.0
            && self.reset == 0.0
            && self.partial_write == 0.0
            && self.corrupt == 0.0
            && self.stall == 0.0
            && self.delay == 0.0
    }
}

/// Shared tally of every fault actually injected — the "injected" side of
/// the soak's counter-balance gate.
#[derive(Debug, Default)]
pub struct ChaosCounters {
    /// Connections killed (clean shutdown injected).
    pub kills: AtomicU64,
    /// Connections reset (abortive error injected).
    pub resets: AtomicU64,
    /// Writes truncated.
    pub partial_writes: AtomicU64,
    /// Outgoing buffers with a bit flipped.
    pub corruptions: AtomicU64,
    /// Reads stalled.
    pub stalls: AtomicU64,
    /// Writes delayed.
    pub delays: AtomicU64,
}

impl ChaosCounters {
    /// Total connection-fatal faults (kills + resets) — each one forces a
    /// client reconnect.
    pub fn fatal(&self) -> u64 {
        self.kills.load(Ordering::Relaxed) + self.resets.load(Ordering::Relaxed)
    }

    /// Total of every injected fault.
    pub fn total(&self) -> u64 {
        self.fatal()
            + self.partial_writes.load(Ordering::Relaxed)
            + self.corruptions.load(Ordering::Relaxed)
            + self.stalls.load(Ordering::Relaxed)
            + self.delays.load(Ordering::Relaxed)
    }
}

/// A [`Transport`] that misbehaves on schedule.
pub struct ChaosTransport {
    inner: Box<dyn Transport>,
    plan: ChaosPlan,
    rng: u64,
    counters: Arc<ChaosCounters>,
    /// A kill or reset already happened; every later call fails.
    dead: bool,
}

impl ChaosTransport {
    /// Wraps `inner` with the plan's faults, drawing decisions from
    /// `seed`. Injected faults are tallied into `counters` (shared across
    /// the reconnects of one logical client, so the totals survive the
    /// connections they killed).
    pub fn new(
        inner: Box<dyn Transport>,
        plan: ChaosPlan,
        seed: u64,
        counters: Arc<ChaosCounters>,
    ) -> Self {
        ChaosTransport {
            inner,
            plan,
            // Pre-mix so seed 0 and seed 1 diverge immediately.
            rng: seed ^ 0xD6E8_FEB8_6659_FD93,
            counters,
            dead: false,
        }
    }

    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && unit(&mut self.rng) < p
    }

    fn die(&mut self, clean: bool) -> io::Error {
        self.dead = true;
        if clean {
            self.counters.kills.fetch_add(1, Ordering::Relaxed);
            self.inner.shutdown();
            io::Error::new(io::ErrorKind::BrokenPipe, "chaos: connection killed")
        } else {
            self.counters.resets.fetch_add(1, Ordering::Relaxed);
            io::Error::new(io::ErrorKind::ConnectionReset, "chaos: connection reset")
        }
    }
}

impl Transport for ChaosTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "chaos: connection already dead",
            ));
        }
        if self.roll(self.plan.kill) {
            return Err(self.die(true));
        }
        if self.roll(self.plan.reset) {
            return Err(self.die(false));
        }
        if self.roll(self.plan.stall) {
            self.counters.stalls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.plan.stall_for);
        }
        self.inner.read(buf)
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "chaos: connection already dead",
            ));
        }
        if self.roll(self.plan.kill) {
            return Err(self.die(true));
        }
        if self.roll(self.plan.reset) {
            return Err(self.die(false));
        }
        if self.roll(self.plan.delay) {
            self.counters.delays.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.plan.delay_for);
        }
        let mut take = buf.len();
        if take > 1 && self.roll(self.plan.partial_write) {
            self.counters.partial_writes.fetch_add(1, Ordering::Relaxed);
            take = (take / 2).max(1);
        }
        if !buf.is_empty() && self.roll(self.plan.corrupt) {
            self.counters.corruptions.fetch_add(1, Ordering::Relaxed);
            let mut damaged = buf[..take].to_vec();
            let pos = (splitmix64(&mut self.rng) as usize) % damaged.len();
            let bit = 1u8 << (splitmix64(&mut self.rng) % 8) as u8;
            damaged[pos] ^= bit;
            // Report the damaged bytes as fully written so the caller
            // does not "repair" the frame by resending a clean suffix.
            self.inner.write_all(&damaged)?;
            return Ok(take);
        }
        self.inner.write(&buf[..take])
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(timeout)
    }

    fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_write_timeout(timeout)
    }

    fn shutdown(&self) {
        self.inner.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// An in-memory transport that records what was written.
    #[derive(Default)]
    struct Tape(Arc<Mutex<Vec<u8>>>);

    impl Transport for Tape {
        fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
            Ok(0)
        }
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn set_read_timeout(&self, _t: Option<Duration>) -> io::Result<()> {
            Ok(())
        }
        fn set_write_timeout(&self, _t: Option<Duration>) -> io::Result<()> {
            Ok(())
        }
        fn shutdown(&self) {}
    }

    #[test]
    fn calm_plan_is_a_transparent_wrapper() {
        let tape = Arc::new(Mutex::new(Vec::new()));
        let counters = Arc::new(ChaosCounters::default());
        let mut t = ChaosTransport::new(
            Box::new(Tape(Arc::clone(&tape))),
            ChaosPlan::calm(),
            7,
            Arc::clone(&counters),
        );
        for _ in 0..1000 {
            t.write_all(b"hello").unwrap();
        }
        assert_eq!(tape.lock().unwrap().len(), 5000);
        assert_eq!(counters.total(), 0, "calm injects nothing");
    }

    #[test]
    fn same_seed_same_faults_different_seed_different_faults() {
        let run = |seed: u64| {
            let counters = Arc::new(ChaosCounters::default());
            let mut t = ChaosTransport::new(
                Box::new(Tape::default()),
                ChaosPlan::at_intensity(1.0),
                seed,
                Arc::clone(&counters),
            );
            let mut outcomes = Vec::new();
            for i in 0..300u32 {
                outcomes.push(t.write(&i.to_be_bytes()).map_err(|e| e.kind()));
                if t.dead {
                    break;
                }
            }
            (outcomes, counters.total())
        };
        let (a1, c1) = run(42);
        let (a2, c2) = run(42);
        let (b, _) = run(43);
        assert_eq!(a1, a2, "deterministic per seed");
        assert_eq!(c1, c2);
        assert_ne!(a1, b, "seeds diverge");
    }

    #[test]
    fn full_intensity_injects_and_kills_poison_the_connection() {
        let counters = Arc::new(ChaosCounters::default());
        let mut t = ChaosTransport::new(
            Box::new(Tape::default()),
            ChaosPlan::at_intensity(1.0),
            1,
            Arc::clone(&counters),
        );
        let mut died = false;
        for _ in 0..5000 {
            if t.write(b"abcdefgh").is_err() {
                died = true;
                break;
            }
        }
        assert!(died, "1:25 fatal odds never hit in 5000 calls?");
        assert!(counters.fatal() >= 1);
        // Dead is dead: everything after the fatal fault fails.
        assert!(t.write(b"x").is_err());
        let mut buf = [0u8; 4];
        assert!(t.read(&mut buf).is_err());
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        // A plan that only corrupts, always.
        let plan = ChaosPlan {
            corrupt: 1.0,
            ..ChaosPlan::calm()
        };
        let tape = Arc::new(Mutex::new(Vec::new()));
        let counters = Arc::new(ChaosCounters::default());
        let mut t = ChaosTransport::new(
            Box::new(Tape(Arc::clone(&tape))),
            plan,
            9,
            Arc::clone(&counters),
        );
        let clean = [0u8; 32];
        assert_eq!(t.write(&clean).unwrap(), 32);
        let written = tape.lock().unwrap().clone();
        assert_eq!(written.len(), 32);
        let flipped: u32 = written
            .iter()
            .zip(clean.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1, "exactly one bit of damage");
        assert_eq!(counters.corruptions.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn intensity_zero_is_calm_and_scaling_is_linear() {
        assert!(ChaosPlan::at_intensity(0.0).is_calm());
        assert!(!ChaosPlan::at_intensity(0.5).is_calm());
        let half = ChaosPlan::at_intensity(0.5);
        let full = ChaosPlan::full();
        assert!((half.kill - full.kill * 0.5).abs() < 1e-12);
        assert!((half.partial_write - full.partial_write * 0.5).abs() < 1e-12);
        // Out-of-range intensities clamp instead of exploding.
        assert!(ChaosPlan::at_intensity(-3.0).is_calm());
        assert!((ChaosPlan::at_intensity(9.0).kill - full.kill).abs() < 1e-12);
    }
}
