//! Connection- and tenant-level admission control.
//!
//! Admission composes with — never replaces — the service layer's own
//! Block/Shed queue policies. The gateway's job is to refuse work *before*
//! it costs a packet decode or a queue slot: per-tenant token buckets cap
//! sustained ingest rate, per-connection buffer caps bound what a slow or
//! hostile peer can make the server hold, and a stall deadline evicts
//! clients that park a partial frame (or never read their responses).

use std::time::{Duration, Instant};

/// A classic token bucket: `rate` tokens accrue per second up to `burst`;
/// each admitted packet spends one token.
///
/// Time is passed in explicitly ([`TokenBucket::try_take_at`]) so tests
/// and simulations can drive it deterministically; [`TokenBucket::try_take`]
/// is the wall-clock convenience.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket refilling at `rate_per_sec`, holding at most `burst`
    /// tokens, starting full. Rates and bursts are clamped to a small
    /// positive floor so a mis-configured zero cannot silently admit
    /// everything (use no bucket at all for "unlimited").
    pub fn new(rate_per_sec: f64, burst: f64) -> Self {
        let rate_per_sec = rate_per_sec.max(f64::MIN_POSITIVE);
        let burst = burst.max(1.0);
        TokenBucket {
            rate_per_sec,
            burst,
            tokens: burst,
            last: Instant::now(),
        }
    }

    /// Spends one token against the wall clock.
    pub fn try_take(&mut self) -> bool {
        self.try_take_at(Instant::now())
    }

    /// Spends one token with an explicit clock. A `now` earlier than the
    /// last observation refills nothing (monotonicity is the caller's
    /// concern; the bucket just saturates).
    pub fn try_take_at(&mut self, now: Instant) -> bool {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.burst);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (diagnostic).
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

/// Per-connection byte-level limits enforced by the server loop.
#[derive(Clone, Copy, Debug)]
pub struct ConnLimits {
    /// Cap on one request payload; a frame declaring more is rejected
    /// before buffering and the connection closed.
    pub max_payload: usize,
    /// Cap on buffered-but-unparsed request bytes per connection (the
    /// "max in-flight bytes" bound). With `max_payload` below this, a
    /// well-formed client can never hit it; a flooder can.
    pub max_buffer: usize,
    /// How long a connection may sit with a partial frame buffered, or
    /// with unread response bytes pending, before it is evicted as a slow
    /// client.
    pub stall_deadline: Duration,
}

impl Default for ConnLimits {
    fn default() -> Self {
        ConnLimits {
            max_payload: crate::envelope::DEFAULT_MAX_PAYLOAD,
            max_buffer: 1 << 21,
            stall_deadline: Duration::from_secs(5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_starve_then_refill() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(10.0, 3.0);
        // Burst capacity admits exactly 3 back-to-back.
        assert!(b.try_take_at(t0));
        assert!(b.try_take_at(t0));
        assert!(b.try_take_at(t0));
        assert!(!b.try_take_at(t0));
        // 100 ms at 10/s refills one token.
        assert!(b.try_take_at(t0 + Duration::from_millis(100)));
        assert!(!b.try_take_at(t0 + Duration::from_millis(100)));
        // A long quiet period refills to burst, not beyond.
        let later = t0 + Duration::from_secs(60);
        assert!(b.try_take_at(later));
        assert!(b.try_take_at(later));
        assert!(b.try_take_at(later));
        assert!(!b.try_take_at(later));
    }

    #[test]
    fn clock_going_backwards_refills_nothing() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(1000.0, 1.0);
        assert!(b.try_take_at(t0 + Duration::from_secs(1)));
        // Earlier timestamp: saturating duration is zero, no refill.
        assert!(!b.try_take_at(t0));
        assert!(b.available() < 1.0);
    }

    #[test]
    fn zero_rate_is_clamped_not_unlimited() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(0.0, 0.0);
        assert!(b.try_take_at(t0), "burst floor of 1 admits one packet");
        assert!(!b.try_take_at(t0 + Duration::from_secs(1)));
    }
}
