//! The byte-stream abstraction under the gateway client.
//!
//! [`GatewayClient`](crate::GatewayClient) speaks the envelope protocol
//! over anything implementing [`Transport`]: a TCP stream, a Unix-domain
//! stream, or a [`ChaosTransport`](crate::ChaosTransport) wrapping either
//! — which is the point of the trait: fault injection composes at the
//! socket layer without the protocol code knowing.

use std::io;
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// A blocking, bidirectional byte stream with optional I/O deadlines.
///
/// Semantics follow `std::net`: `read` returning `Ok(0)` is EOF, a read
/// past the deadline fails with `WouldBlock`/`TimedOut`, and `shutdown`
/// tears down both directions best-effort (later operations fail).
pub trait Transport: Send {
    /// Reads up to `buf.len()` bytes.
    ///
    /// # Errors
    ///
    /// Standard `std::io::Read` errors, including timeouts.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;

    /// Writes a prefix of `buf`, returning how many bytes were taken.
    ///
    /// # Errors
    ///
    /// Standard `std::io::Write` errors, including timeouts.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize>;

    /// Sets (or clears) the read deadline applied to each `read`.
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;

    /// Sets (or clears) the write deadline applied to each `write`.
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;

    /// Best-effort immediate teardown of both directions.
    fn shutdown(&self);

    /// Writes all of `buf` or fails.
    ///
    /// # Errors
    ///
    /// `WriteZero` if the stream stops taking bytes; otherwise whatever
    /// `write` returned (`Interrupted` is retried).
    fn write_all(&mut self, mut buf: &[u8]) -> io::Result<()> {
        while !buf.is_empty() {
            match self.write(buf) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "transport stopped accepting bytes",
                    ))
                }
                Ok(n) => buf = &buf[n..],
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

impl Transport for TcpStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(self, buf)
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        io::Write::write(self, buf)
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, timeout)
    }

    fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_write_timeout(self, timeout)
    }

    fn shutdown(&self) {
        let _ = TcpStream::shutdown(self, std::net::Shutdown::Both);
    }
}

impl Transport for UnixStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(self, buf)
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        io::Write::write(self, buf)
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        UnixStream::set_read_timeout(self, timeout)
    }

    fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        UnixStream::set_write_timeout(self, timeout)
    }

    fn shutdown(&self) {
        let _ = UnixStream::shutdown(self, std::net::Shutdown::Both);
    }
}
