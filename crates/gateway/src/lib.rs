//! # pnm-gateway — a network-facing multi-tenant ingestion front-end
//!
//! `pnm-service` turns the sink engine into a long-running in-process
//! service; this crate puts that service behind a socket. One gateway
//! process terminates TCP and Unix-domain connections, speaks a small
//! length-prefixed envelope protocol carrying canonical `pnm-wire` packet
//! bytes, and multiplexes any number of **tenants** — fully isolated
//! traceback deployments sharing nothing but the listener:
//!
//! * **Framing.** Every request is one self-delimiting frame
//!   ([`Envelope`]): magic, version, opcode, tenant id, length-prefixed
//!   payload. Decoding is total in the `pnm-wire` sense — garbage,
//!   bit-flips, and truncation become counted rejections or "need more
//!   bytes", never a panic, and no unvalidated length field drives an
//!   allocation. Opcodes: [`OpCode::Ingest`] (fire-and-forget packet
//!   delivery), [`OpCode::Snapshot`], [`OpCode::MetricsText`],
//!   [`OpCode::Drain`], and — since protocol version 2 —
//!   [`OpCode::IngestSeq`] (acked, exactly-once delivery),
//!   [`OpCode::Health`], and [`OpCode::Ready`].
//! * **Resilience.** Sequenced ingest carries a client session id, a
//!   monotone sequence number, and an end-to-end CRC ([`SeqFrame`]); the
//!   server answers every frame with an [`IngestAck`] and deduplicates
//!   retries through a bounded per-tenant window ([`dedup`]), so a frame
//!   is absorbed into the evidence monoid **exactly once** no matter how
//!   often the connection dies mid-ack. [`ResilientClient`] wraps
//!   reconnect, capped seeded-jitter backoff ([`BackoffPolicy`]), and
//!   per-request timeouts; [`ChaosTransport`] injects deterministic
//!   socket-level faults to prove all of it under fire.
//!   [`GatewayHandle::shutdown_graceful`] stops accepting, flushes
//!   in-flight connections, and writes a final per-tenant durable
//!   checkpoint.
//! * **Tenancy.** A [`TenantRegistry`] maps tenant ids to fully private
//!   stacks: each tenant owns its [`KeyStore`](pnm_crypto::KeyStore), its
//!   [`ServicePool`](pnm_service::ServicePool) (own shards, queues,
//!   checkpoint cadence), and optionally its own append-only evidence log
//!   (one file per tenant under
//!   [`evidence_dir`](TenantRegistryBuilder::evidence_dir)). One
//!   [`metrics_text`](TenantRegistry::metrics_text) scrape renders every
//!   tenant with `tenant="..."` labels. The integration suite proves the
//!   isolation property end to end: verdicts served through the gateway
//!   are byte-identical to per-tenant sequential engine runs.
//! * **Admission.** Work is refused as early as possible: framing errors
//!   and oversized declarations at the decoder, floods at per-connection
//!   buffer caps and stall deadlines ([`ConnLimits`]), sustained
//!   over-rate tenants at token buckets ([`TokenBucket`]), and finally
//!   the service pools' own Block/Shed queue policies. Every refusal is a
//!   labelled counter.
//! * **Serving.** No async runtime, no dependencies: a nonblocking
//!   acceptor thread deals connections to worker readiness loops
//!   ([`Gateway`]); connection state never crosses threads after accept.
//!   [`GatewayClient`] is the matching blocking client.
//!
//! The `bench-gateway` binary in `pnm-sim` measures end-to-end ingest
//! throughput and latency at 1/4/16 tenants over this stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod backoff;
mod chaos;
mod client;
pub mod dedup;
mod envelope;
mod resilient;
mod server;
mod tenant;
mod transport;

pub use admission::{ConnLimits, TokenBucket};
pub use backoff::{BackoffPolicy, BackoffSchedule, MAX_JITTER};
pub use chaos::{ChaosCounters, ChaosPlan, ChaosTransport};
pub use client::{ClientConfig, GatewayClient, CLIENT_MAX_RESPONSE};
pub use envelope::{
    AckCode, Envelope, EnvelopeError, IngestAck, OpCode, Response, SeqFrame, Status, TracedFrame,
    DEFAULT_MAX_PAYLOAD, FIXED_HEADER, INGEST_ACK_LEN, INGEST_ACK_TRACED_LEN, MAGIC,
    MAX_TENANT_LEN, MIN_VERSION, SEQ_FRAME_HEADER, TRACED_FRAME_HEADER, VERSION,
};
pub use resilient::{ClientReport, Connector, ResilientClient, ResilientConfig, SendOutcome};
pub use server::{Gateway, GatewayConfig, GatewayHandle};
pub use tenant::{
    DrainVerdict, IngestStatus, RateLimit, TenantConfig, TenantRegistry, TenantRegistryBuilder,
};
pub use transport::Transport;
