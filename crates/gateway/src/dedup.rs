//! Per-tenant bounded dedup window: the server half of exactly-once
//! ingest.
//!
//! A client retries an [`crate::OpCode::IngestSeq`] frame whenever it is
//! not sure the last one landed — the connection died before the ack, the
//! ack was corrupted, a timeout fired. The only way a retry is safe is if
//! the server remembers which `(session, seq)` pairs it has already
//! absorbed: the first copy is counted and acked `Accepted`, every later
//! copy is acked `Duplicate` without touching the evidence monoid.
//!
//! Memory is bounded in both dimensions:
//!
//! * **Sessions per tenant** are capped; adding one beyond the cap evicts
//!   the least-recently-used session (counted by the caller). A client
//!   whose session is evicted mid-retry would be double-counted, so size
//!   the cap generously relative to concurrent client count — the
//!   default (1024) is far above anything a single gateway serves today.
//! * **Out-of-order seqs per session** are capped by the window width.
//!   Acked seqs are compressed into a watermark (`everything below is
//!   acked`) as soon as they are contiguous; only acked seqs *above a
//!   gap* occupy window slots. A gap only forms when a seq reaches a
//!   terminal non-counted outcome (malformed packet) or a client
//!   pipelines more than one outstanding frame. If the window overflows,
//!   the watermark jumps over the oldest gap — retries of seqs below the
//!   watermark then read as `Duplicate` even if they were never counted.
//!   With the [`crate::ResilientClient`] discipline (one outstanding
//!   frame, terminal outcomes are never retried) the window never holds
//!   more than one entry and the degradation is unreachable.

use std::collections::{BTreeMap, BTreeSet};

/// Default cap on tracked sessions per tenant.
pub const DEFAULT_MAX_SESSIONS: usize = 1024;

/// Default cap on non-contiguous acked seqs retained per session.
pub const DEFAULT_WINDOW: usize = 1024;

/// One session's acked-seq state.
#[derive(Debug, Default)]
struct SessionWindow {
    /// Every seq strictly below this is acked.
    watermark: u64,
    /// Acked seqs at or above the watermark (non-contiguous tail).
    acked: BTreeSet<u64>,
    /// LRU tick of the last touch.
    last_used: u64,
}

impl SessionWindow {
    fn is_acked(&self, seq: u64) -> bool {
        seq < self.watermark || self.acked.contains(&seq)
    }

    /// Records an accepted seq, compresses the contiguous prefix into the
    /// watermark, and enforces the width cap (jumping the watermark over
    /// the oldest gap on overflow).
    fn record(&mut self, seq: u64, window: usize) {
        if seq < self.watermark {
            return;
        }
        self.acked.insert(seq);
        while self.acked.remove(&self.watermark) {
            self.watermark += 1;
        }
        while self.acked.len() > window {
            let oldest = *self.acked.iter().next().expect("non-empty");
            self.acked.remove(&oldest);
            self.watermark = oldest + 1;
            while self.acked.remove(&self.watermark) {
                self.watermark += 1;
            }
        }
    }
}

/// Verdict of a dedup lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DedupVerdict {
    /// Never seen: admit it, then [`DedupState::record`] it.
    Fresh,
    /// Already counted: ack `Duplicate`, do not absorb again.
    Duplicate,
}

/// Bounded per-tenant dedup state across all of the tenant's sessions.
#[derive(Debug)]
pub struct DedupState {
    sessions: BTreeMap<u64, SessionWindow>,
    max_sessions: usize,
    window: usize,
    tick: u64,
    evicted_sessions: u64,
}

impl Default for DedupState {
    fn default() -> Self {
        Self::new(DEFAULT_MAX_SESSIONS, DEFAULT_WINDOW)
    }
}

impl DedupState {
    /// A window holding at most `max_sessions` sessions of `window`
    /// non-contiguous acked seqs each (both clamped to at least 1).
    pub fn new(max_sessions: usize, window: usize) -> Self {
        DedupState {
            sessions: BTreeMap::new(),
            max_sessions: max_sessions.max(1),
            window: window.max(1),
            tick: 0,
            evicted_sessions: 0,
        }
    }

    /// Whether `(session, seq)` was already counted.
    pub fn lookup(&mut self, session: u64, seq: u64) -> DedupVerdict {
        self.tick += 1;
        let tick = self.tick;
        match self.sessions.get_mut(&session) {
            Some(w) => {
                w.last_used = tick;
                if w.is_acked(seq) {
                    DedupVerdict::Duplicate
                } else {
                    DedupVerdict::Fresh
                }
            }
            None => DedupVerdict::Fresh,
        }
    }

    /// Records `(session, seq)` as counted. Call only after the packet
    /// was actually absorbed (acked ≡ counted — the record and the ack
    /// must cover the same set).
    pub fn record(&mut self, session: u64, seq: u64) {
        self.tick += 1;
        let tick = self.tick;
        if !self.sessions.contains_key(&session) && self.sessions.len() >= self.max_sessions {
            // Evict the least-recently-used session.
            let lru = self
                .sessions
                .iter()
                .min_by_key(|(_, w)| w.last_used)
                .map(|(&s, _)| s)
                .expect("non-empty at cap");
            self.sessions.remove(&lru);
            self.evicted_sessions += 1;
        }
        let w = self.sessions.entry(session).or_default();
        w.last_used = tick;
        w.record(seq, self.window);
    }

    /// Sessions currently tracked.
    pub fn sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Sessions evicted at the cap since construction.
    pub fn evicted_sessions(&self) -> u64 {
        self.evicted_sessions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_copy_fresh_every_retry_duplicate() {
        let mut d = DedupState::default();
        assert_eq!(d.lookup(1, 0), DedupVerdict::Fresh);
        d.record(1, 0);
        for _ in 0..3 {
            assert_eq!(d.lookup(1, 0), DedupVerdict::Duplicate);
        }
        // Same seq on a different session is a different frame.
        assert_eq!(d.lookup(2, 0), DedupVerdict::Fresh);
    }

    #[test]
    fn contiguous_seqs_compress_into_the_watermark() {
        let mut d = DedupState::new(4, 4);
        for seq in 0..10_000u64 {
            assert_eq!(d.lookup(9, seq), DedupVerdict::Fresh);
            d.record(9, seq);
        }
        let w = d.sessions.get(&9).unwrap();
        assert_eq!(w.watermark, 10_000);
        assert!(w.acked.is_empty(), "compressed, not retained");
        assert_eq!(d.lookup(9, 123), DedupVerdict::Duplicate);
    }

    #[test]
    fn gap_entries_are_bounded_by_the_window() {
        let mut d = DedupState::new(4, 8);
        // Leave seq 0 un-acked forever (a terminal malformed outcome):
        // the watermark cannot advance, so acked seqs pile into the set.
        for seq in 1..100u64 {
            d.record(9, seq);
        }
        let w = d.sessions.get(&9).unwrap();
        assert!(w.acked.len() <= 8, "window bound holds: {}", w.acked.len());
        // Recent seqs still dedup exactly.
        assert_eq!(d.lookup(9, 99), DedupVerdict::Duplicate);
        assert_eq!(d.lookup(9, 100), DedupVerdict::Fresh);
    }

    #[test]
    fn session_cap_evicts_least_recently_used() {
        let mut d = DedupState::new(2, 4);
        d.record(1, 0);
        d.record(2, 0);
        // Touch session 1 so session 2 is the LRU.
        assert_eq!(d.lookup(1, 0), DedupVerdict::Duplicate);
        d.record(3, 0);
        assert_eq!(d.sessions(), 2);
        assert_eq!(d.evicted_sessions(), 1);
        assert_eq!(d.lookup(1, 0), DedupVerdict::Duplicate, "kept");
        assert_eq!(d.lookup(3, 0), DedupVerdict::Duplicate, "kept");
        assert_eq!(d.lookup(2, 0), DedupVerdict::Fresh, "evicted");
    }

    #[test]
    fn out_of_order_acks_within_the_window_dedup_exactly() {
        let mut d = DedupState::new(4, 16);
        for &seq in &[5u64, 3, 7, 0, 1] {
            assert_eq!(d.lookup(4, seq), DedupVerdict::Fresh);
            d.record(4, seq);
        }
        for &seq in &[5u64, 3, 7, 0, 1] {
            assert_eq!(d.lookup(4, seq), DedupVerdict::Duplicate);
        }
        for &seq in &[2u64, 4, 6, 8] {
            assert_eq!(d.lookup(4, seq), DedupVerdict::Fresh);
        }
    }
}
