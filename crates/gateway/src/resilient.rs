//! A gateway client that survives the wire: reconnect, capped
//! seeded-jitter backoff, per-request timeouts, and exactly-once acked
//! ingest.
//!
//! [`ResilientClient`] owns one logical connection to a gateway. Every
//! packet it sends travels as an [`crate::OpCode::IngestSeq`] frame under
//! a (session, seq) identity; when the wire fails — connection killed
//! mid-ack, corrupted bytes, a `Busy` shed — the client reconnects and
//! resends **the same sequence number**, and the server's dedup window
//! guarantees the retry is never double-counted. The client keeps exactly
//! one frame outstanding, which also keeps the server's per-session
//! window at its minimal footprint (see [`crate::dedup`]).
//!
//! Accounting is exact by construction and exposed both as a plain
//! [`ClientReport`] and (optionally) through a
//! [`pnm_obs::Registry`]: `attempts − packets == retries`, and every
//! reconnect beyond the first connection is counted — the client-side
//! half of the chaos soak's balance gates.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use pnm_obs::{Registry, Tracer};

use crate::backoff::{BackoffPolicy, BackoffSchedule};
use crate::chaos::{splitmix64, ChaosCounters, ChaosPlan, ChaosTransport};
use crate::client::{ClientConfig, GatewayClient};
use crate::envelope::{AckCode, IngestAck};
use crate::tenant::DrainVerdict;
use crate::transport::Transport;

/// Where (and how) to establish gateway connections. One connector serves
/// one logical client, re-dialing the same target on every reconnect —
/// optionally through a fresh [`ChaosTransport`] whose per-connection
/// seed is derived deterministically from the base seed and the
/// connection ordinal.
pub struct Connector {
    target: Target,
    config: ClientConfig,
    chaos: Option<(ChaosPlan, u64)>,
    counters: Arc<ChaosCounters>,
    conns: u64,
}

enum Target {
    Tcp(SocketAddr),
    Uds(PathBuf),
}

impl Connector {
    /// Connects over TCP to `addr`.
    pub fn tcp(addr: SocketAddr) -> Self {
        Self::with_target(Target::Tcp(addr))
    }

    /// Connects over the Unix-domain socket at `path`.
    pub fn uds(path: impl AsRef<Path>) -> Self {
        Self::with_target(Target::Uds(path.as_ref().to_path_buf()))
    }

    fn with_target(target: Target) -> Self {
        Connector {
            target,
            config: ClientConfig::default(),
            chaos: None,
            counters: Arc::new(ChaosCounters::default()),
            conns: 0,
        }
    }

    /// Applies connect/read/write deadlines to every connection dialed.
    pub fn config(mut self, config: ClientConfig) -> Self {
        self.config = config;
        self
    }

    /// Wraps every connection in a [`ChaosTransport`] running `plan`,
    /// with per-connection seeds derived from `seed`. A calm plan is a
    /// no-op (no wrapper at all).
    pub fn chaos(mut self, plan: ChaosPlan, seed: u64) -> Self {
        self.chaos = if plan.is_calm() {
            None
        } else {
            Some((plan, seed))
        };
        self
    }

    /// The shared fault tally across all of this connector's connections.
    pub fn chaos_counters(&self) -> Arc<ChaosCounters> {
        Arc::clone(&self.counters)
    }

    /// Dials one connection (the resilient client calls this on every
    /// reconnect).
    ///
    /// # Errors
    ///
    /// Propagates the socket connect/option failure.
    pub fn connect(&mut self) -> io::Result<GatewayClient> {
        let raw: Box<dyn Transport> = match &self.target {
            Target::Tcp(addr) => {
                let s = TcpStream::connect_timeout(addr, self.config.connect_deadline())?;
                s.set_nodelay(true)?;
                Box::new(s)
            }
            Target::Uds(path) => Box::new(UnixStream::connect(path)?),
        };
        let ordinal = self.conns;
        self.conns += 1;
        let transport: Box<dyn Transport> = match &self.chaos {
            Some((plan, seed)) => {
                let mut mix = seed ^ ordinal.wrapping_mul(0xA24B_AED4_963E_E407);
                let conn_seed = splitmix64(&mut mix);
                Box::new(ChaosTransport::new(
                    raw,
                    *plan,
                    conn_seed,
                    Arc::clone(&self.counters),
                ))
            }
            None => raw,
        };
        GatewayClient::from_transport_with(transport, self.config)
    }
}

/// Retry shape for a [`ResilientClient`].
#[derive(Clone, Copy, Debug)]
pub struct ResilientConfig {
    backoff: BackoffPolicy,
    seed: u64,
    max_attempts: u32,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        ResilientConfig {
            backoff: BackoffPolicy::new(Duration::from_millis(2), Duration::from_millis(250))
                .jitter(0.25),
            seed: 0,
            max_attempts: 16,
        }
    }
}

impl ResilientConfig {
    /// The backoff policy between attempts.
    pub fn backoff(mut self, policy: BackoffPolicy) -> Self {
        self.backoff = policy;
        self
    }

    /// Seed for the backoff jitter (mixed with the session id so two
    /// clients sharing a config do not retry in lockstep).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Cap on wire attempts per packet (≥ 1). When exhausted,
    /// [`ResilientClient::send`] fails with `TimedOut`.
    pub fn max_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n.max(1);
        self
    }
}

/// Exact accounting of everything a [`ResilientClient`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientReport {
    /// Packets whose outcome was counted ([`AckCode::is_counted`]).
    pub counted: u64,
    /// Of `counted`: packets confirmed via a `Duplicate` ack — the retry
    /// raced an ack that was lost, and dedup resolved it.
    pub duplicates: u64,
    /// Packets given up with a terminal rejection code.
    pub rejected: u64,
    /// Wire attempts (`attempts − packets sent == retries`, exactly).
    pub attempts: u64,
    /// Attempts beyond the first, per packet.
    pub retries: u64,
    /// Connections dialed.
    pub connects: u64,
    /// Connections beyond the first — each one paid for a fault.
    pub reconnects: u64,
    /// I/O failures absorbed (includes damaged acks and failed dials).
    pub io_errors: u64,
    /// Retryable acks absorbed (`Busy`, `Corrupt`, `RateLimited`).
    pub retryable_acks: u64,
}

/// How one [`ResilientClient::send`] concluded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendOutcome {
    /// The packet is absorbed into the tenant's evidence exactly once.
    Counted {
        /// `Accepted`, or `Duplicate` when a retry confirmed an earlier
        /// absorption.
        code: AckCode,
        /// Wire attempts spent.
        attempts: u32,
        /// Trace id the send travelled under (0 when the client has no
        /// tracer attached). Minted once per logical send — every retry
        /// reuses it, so a packet is one trace no matter how the wire
        /// behaved.
        trace: u64,
    },
    /// The server answered with a terminal rejection; the packet is not
    /// (and will never be) counted.
    Rejected {
        /// The terminal code (`Malformed`, `Drained`, `UnknownTenant`).
        code: AckCode,
        /// Wire attempts spent.
        attempts: u32,
        /// Trace id the send travelled under (0 without a tracer).
        trace: u64,
    },
}

impl SendOutcome {
    /// Whether the packet ended up counted.
    pub fn is_counted(&self) -> bool {
        matches!(self, SendOutcome::Counted { .. })
    }

    /// The trace id the send travelled under (0 without a tracer).
    pub fn trace(&self) -> u64 {
        match *self {
            SendOutcome::Counted { trace, .. } | SendOutcome::Rejected { trace, .. } => trace,
        }
    }
}

struct Metrics {
    registry: Registry,
    label: String,
}

impl Metrics {
    fn inc(&self, name: &str) {
        self.registry
            .counter(name, &[("client", &self.label)])
            .inc();
    }

    fn ack(&self, code: AckCode) {
        self.registry
            .counter(
                "pnm_client_acks_total",
                &[("client", &self.label), ("code", code.reason())],
            )
            .inc();
    }
}

/// A reconnecting, retrying gateway client with exactly-once sequenced
/// ingest (see the module docs).
pub struct ResilientClient {
    connector: Connector,
    schedule: BackoffSchedule,
    max_attempts: u32,
    session: u64,
    next_seq: u64,
    client: Option<GatewayClient>,
    report: ClientReport,
    metrics: Option<Metrics>,
    tracer: Option<Tracer>,
}

impl ResilientClient {
    /// A client with the given session identity. The session id is the
    /// client's durable name in the server's dedup window: reuse it
    /// across process restarts only together with a persisted `next_seq`,
    /// otherwise pick a fresh one (sequence numbers restart at 0).
    pub fn new(connector: Connector, session: u64, config: ResilientConfig) -> Self {
        ResilientClient {
            schedule: config.backoff.schedule(config.seed ^ session),
            max_attempts: config.max_attempts,
            connector,
            session,
            next_seq: 0,
            client: None,
            report: ClientReport::default(),
            metrics: None,
            tracer: None,
        }
    }

    /// Attaches a tracer: every [`send`](Self::send) opens a root
    /// `client.send` span, mints a trace id under it, and ships the
    /// packet as an [`crate::OpCode::IngestTraced`] frame — the client
    /// end of end-to-end causal tracing. Retries stay inside the same
    /// span and resend the same trace id, and the server's ack must echo
    /// it back. Without a tracer, sends stay plain `IngestSeq` frames.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Mirrors the report counters into `registry` as
    /// `pnm_client_*_total{client="<label>"}` series.
    pub fn with_metrics(mut self, registry: &Registry, label: &str) -> Self {
        self.metrics = Some(Metrics {
            registry: registry.clone(),
            label: label.to_string(),
        });
        self
    }

    /// This client's session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The accounting so far.
    pub fn report(&self) -> ClientReport {
        self.report
    }

    /// The shared chaos fault tally (zero when no chaos is configured).
    pub fn chaos_counters(&self) -> Arc<ChaosCounters> {
        self.connector.chaos_counters()
    }

    fn mark(&self, name: &str) {
        if let Some(m) = &self.metrics {
            m.inc(name);
        }
    }

    fn client_mut(&mut self) -> io::Result<&mut GatewayClient> {
        if self.client.is_none() {
            let c = self.connector.connect()?;
            self.report.connects += 1;
            if self.report.connects > 1 {
                self.report.reconnects += 1;
                self.mark("pnm_client_reconnects_total");
            }
            self.client = Some(c);
        }
        Ok(self.client.as_mut().expect("just ensured"))
    }

    /// Sends one packet under the next sequence number and drives it to a
    /// definite outcome: counted exactly once, terminally rejected, or —
    /// only after `max_attempts` wire attempts — a `TimedOut` error. The
    /// sequence number is assigned once; every retry resends it, so a
    /// lost ack resolves to `Duplicate` instead of a double count.
    ///
    /// # Errors
    ///
    /// `TimedOut` when the attempt budget is exhausted without a
    /// trustworthy ack; the packet *may or may not* be counted server-side
    /// in that case (re-sending the same packet bytes under a **new**
    /// sequence number could double-count — persist and reuse the
    /// session/seq if you need to resume).
    pub fn send(&mut self, tenant: &[u8], packet_bytes: &[u8]) -> io::Result<SendOutcome> {
        let seq = self.next_seq;
        self.next_seq += 1;
        // One root span per logical send: the trace id is minted here,
        // once, and every retry below resends the same (trace, parent) —
        // so reconnects and resends stay inside one trace.
        let span = self
            .tracer
            .as_ref()
            .filter(|t| t.enabled())
            .map(|t| t.span_root("client.send"));
        let ctx = span.as_ref().and_then(|s| s.context());
        let trace = ctx.map(|c| c.trace).unwrap_or(0);
        let mut hint = Duration::ZERO;
        for attempt in 0..self.max_attempts {
            if attempt > 0 {
                std::thread::sleep(self.schedule.delay(attempt - 1).max(hint));
                hint = Duration::ZERO;
                self.report.retries += 1;
                self.mark("pnm_client_retries_total");
            }
            self.report.attempts += 1;
            self.mark("pnm_client_attempts_total");
            let session = self.session;
            let ack: io::Result<IngestAck> = self.client_mut().and_then(|c| match ctx {
                Some(ctx) => {
                    c.ingest_traced(tenant, ctx.trace, ctx.parent, session, seq, packet_bytes)
                }
                None => c.ingest_seq(tenant, session, seq, packet_bytes),
            });
            let ack = match ack {
                Ok(ack) => ack,
                Err(_) => {
                    // Dial failure, connection death, timeout, damaged
                    // ack — all retryable through a fresh connection. The
                    // server may or may not have counted the frame; the
                    // retry's dedup lookup settles it either way.
                    self.report.io_errors += 1;
                    self.mark("pnm_client_io_errors_total");
                    self.client = None;
                    continue;
                }
            };
            if let Some(m) = &self.metrics {
                m.ack(ack.code);
            }
            if ack.code.is_counted() {
                self.report.counted += 1;
                if ack.code == AckCode::Duplicate {
                    self.report.duplicates += 1;
                }
                return Ok(SendOutcome::Counted {
                    code: ack.code,
                    attempts: attempt + 1,
                    trace,
                });
            }
            if ack.code.is_retryable() {
                self.report.retryable_acks += 1;
                hint = Duration::from_millis(u64::from(ack.retry_after_ms));
                continue;
            }
            self.report.rejected += 1;
            return Ok(SendOutcome::Rejected {
                code: ack.code,
                attempts: attempt + 1,
                trace,
            });
        }
        Err(io::Error::new(
            io::ErrorKind::TimedOut,
            format!(
                "no trustworthy ack for seq {seq} after {} attempts",
                self.max_attempts
            ),
        ))
    }

    /// Runs a request with reconnect-and-retry on transport failure.
    /// Application-level rejections (`ErrorKind::Other`) are returned
    /// immediately — retrying cannot change the server's answer.
    fn with_retry<T>(
        &mut self,
        mut op: impl FnMut(&mut GatewayClient) -> io::Result<T>,
    ) -> io::Result<T> {
        let mut last = None;
        for attempt in 0..self.max_attempts {
            if attempt > 0 {
                std::thread::sleep(self.schedule.delay(attempt - 1));
            }
            match self.client_mut().and_then(&mut op) {
                Ok(v) => return Ok(v),
                Err(e) if e.kind() == io::ErrorKind::Other => return Err(e),
                Err(e) => {
                    self.report.io_errors += 1;
                    self.mark("pnm_client_io_errors_total");
                    self.client = None;
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "retries exhausted")))
    }

    /// Drains the tenant (idempotent server-side, so retrying over a
    /// fresh connection is safe) and returns its final verdict.
    ///
    /// # Errors
    ///
    /// The gateway's rejection, or the last transport error once the
    /// attempt budget is spent.
    pub fn drain(&mut self, tenant: &[u8]) -> io::Result<DrainVerdict> {
        self.with_retry(|c| c.drain(tenant))
    }

    /// Readiness probe with reconnect (`Ok(false)` = draining).
    ///
    /// # Errors
    ///
    /// The last transport error once the attempt budget is spent.
    pub fn ready(&mut self) -> io::Result<bool> {
        self.with_retry(|c| c.ready())
    }

    /// Liveness probe with reconnect.
    ///
    /// # Errors
    ///
    /// The last transport error once the attempt budget is spent.
    pub fn health(&mut self) -> io::Result<()> {
        self.with_retry(|c| c.health())
    }

    /// Whole-gateway metrics scrape with reconnect.
    ///
    /// # Errors
    ///
    /// The last transport error once the attempt budget is spent.
    pub fn metrics_text(&mut self) -> io::Result<String> {
        self.with_retry(|c| c.metrics_text())
    }

    /// Live ops snapshot (health/SLO JSON) with reconnect; tenant `*`
    /// returns every tenant keyed by name.
    ///
    /// # Errors
    ///
    /// The gateway's rejection, or the last transport error once the
    /// attempt budget is spent.
    pub fn ops_snapshot(&mut self, tenant: &[u8]) -> io::Result<String> {
        self.with_retry(|c| c.ops_snapshot(tenant))
    }
}
